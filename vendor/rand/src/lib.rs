//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the handful of `rand` APIs the workspace actually uses are
//! re-implemented here: the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits,
//! uniform range sampling, and `gen::<f64>()`/`gen::<bool>()`. Streams
//! are deterministic per seed but do **not** bit-match upstream `rand`;
//! nothing in the workspace relies on upstream streams.

/// The minimal generator core: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift uniform mapping (slight modulo bias is
                // irrelevant for test-data generation).
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start as u64 == u64::MIN && end as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64) + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: seed expander (and a serviceable PRNG in its own right).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — the default generator backing this stand-in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut c = Xoshiro256PlusPlus::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_covers_the_domain() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all ranks hit: {seen:?}");
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let _ = draw(&mut rng);
    }
}
