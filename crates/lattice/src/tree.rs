//! The FD prefix tree.

use dynfd_common::{AttrId, AttrSet, Fd};
use std::collections::BTreeMap;

/// A prefix tree over attribute sets with RHS annotations — the storage
/// format DynFD uses for both the positive cover (minimal FDs) and the
/// negative cover (maximal non-FDs), following [6] and paper Section 3.2.
///
/// A path from the root along strictly increasing attribute indices
/// spells out an LHS; the [`AttrSet`] annotation at the final node lists
/// the right-hand sides for which `lhs -> rhs` is stored. The tree
/// supports the lookups the maintenance algorithms hammer on:
/// generalizations (`lhs' ⊆ lhs`, same RHS), specializations
/// (`lhs' ⊇ lhs`, same RHS), and per-level enumeration.
///
/// Children are kept in a `BTreeMap` so every traversal — and therefore
/// every experiment output — is deterministic.
#[derive(Clone, Debug, Default)]
pub struct FdTree {
    root: Node,
    len: usize,
}

#[derive(Clone, Debug, Default)]
struct Node {
    /// RHS attributes annotated at this node: for the path `X` leading
    /// here, the FDs `X -> r` for every `r` in this set.
    rhs: AttrSet,
    /// Children keyed by attribute index; keys are strictly greater than
    /// every attribute on the path to this node.
    children: BTreeMap<AttrId, Node>,
}

impl Node {
    fn is_empty(&self) -> bool {
        self.rhs.is_empty() && self.children.is_empty()
    }
}

impl FdTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        FdTree::default()
    }

    /// Number of stored `(lhs, rhs)` annotations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores no FD.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `lhs -> rhs`. Returns `false` if it was already present.
    pub fn add(&mut self, lhs: AttrSet, rhs: AttrId) -> bool {
        debug_assert!(!lhs.contains(rhs), "trivial FD");
        let mut node = &mut self.root;
        for a in lhs.iter() {
            node = node.children.entry(a).or_default();
        }
        if node.rhs.contains(rhs) {
            return false;
        }
        node.rhs.insert(rhs);
        self.len += 1;
        true
    }

    /// Removes `lhs -> rhs`, pruning nodes left empty. Returns `false`
    /// if it was not present.
    pub fn remove(&mut self, lhs: AttrSet, rhs: AttrId) -> bool {
        fn rec(node: &mut Node, attrs: &[AttrId], rhs: AttrId) -> bool {
            match attrs.split_first() {
                None => {
                    if node.rhs.contains(rhs) {
                        node.rhs.remove(rhs);
                        true
                    } else {
                        false
                    }
                }
                Some((&a, rest)) => {
                    let Some(child) = node.children.get_mut(&a) else {
                        return false;
                    };
                    let removed = rec(child, rest, rhs);
                    if removed && child.is_empty() {
                        node.children.remove(&a);
                    }
                    removed
                }
            }
        }
        let attrs = lhs.to_vec();
        let removed = rec(&mut self.root, &attrs, rhs);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Whether exactly `lhs -> rhs` is stored.
    pub fn contains(&self, lhs: AttrSet, rhs: AttrId) -> bool {
        let mut node = &self.root;
        for a in lhs.iter() {
            match node.children.get(&a) {
                Some(child) => node = child,
                None => return false,
            }
        }
        node.rhs.contains(rhs)
    }

    /// Whether some stored FD `lhs' -> rhs` has `lhs' ⊆ lhs` (equality
    /// included).
    pub fn contains_generalization(&self, lhs: AttrSet, rhs: AttrId) -> bool {
        fn rec(node: &Node, lhs: &AttrSet, rhs: AttrId) -> bool {
            if node.rhs.contains(rhs) {
                return true;
            }
            // Only descend along attributes of `lhs`; child keys are
            // strictly increasing along any path, so passing the whole
            // set down never revisits an attribute.
            node.children
                .iter()
                .any(|(&a, child)| lhs.contains(a) && rec(child, lhs, rhs))
        }
        rec(&self.root, &lhs, rhs)
    }

    /// All stored `lhs' ⊆ lhs` with the given RHS (equality included),
    /// in deterministic order.
    pub fn get_generalizations(&self, lhs: AttrSet, rhs: AttrId) -> Vec<AttrSet> {
        fn rec(node: &Node, lhs: &AttrSet, rhs: AttrId, path: AttrSet, out: &mut Vec<AttrSet>) {
            if node.rhs.contains(rhs) {
                out.push(path);
            }
            for (&a, child) in &node.children {
                if lhs.contains(a) {
                    rec(child, lhs, rhs, path.with(a), out);
                }
            }
        }
        let mut out = Vec::new();
        rec(&self.root, &lhs, rhs, AttrSet::empty(), &mut out);
        out
    }

    /// Whether some stored FD `lhs' -> rhs` has `lhs' ⊇ lhs` (equality
    /// included).
    pub fn contains_specialization(&self, lhs: AttrSet, rhs: AttrId) -> bool {
        // `needed` tracks the lhs attributes the path still has to cover.
        fn rec(node: &Node, needed: AttrSet, rhs: AttrId) -> bool {
            if needed.is_empty() {
                if node.rhs.contains(rhs) {
                    return true;
                }
                return node.children.values().any(|c| rec(c, needed, rhs));
            }
            let next_needed = needed.first().expect("non-empty");
            // Paths are ascending: a child key beyond the smallest still-
            // needed attribute can never cover it.
            node.children
                .range(..=next_needed)
                .any(|(&a, child)| rec(child, needed.without(a), rhs))
        }
        rec(&self.root, lhs, rhs)
    }

    /// Some stored `lhs' ⊇ lhs` with the given RHS (equality included),
    /// if one exists. Cheaper than [`FdTree::get_specializations`] when
    /// only a witness is needed.
    pub fn find_specialization(&self, lhs: AttrSet, rhs: AttrId) -> Option<AttrSet> {
        fn rec(node: &Node, needed: AttrSet, rhs: AttrId, path: AttrSet) -> Option<AttrSet> {
            if needed.is_empty() {
                if node.rhs.contains(rhs) {
                    return Some(path);
                }
                return node
                    .children
                    .iter()
                    .find_map(|(&a, c)| rec(c, needed, rhs, path.with(a)));
            }
            let next_needed = needed.first().expect("non-empty");
            node.children
                .range(..=next_needed)
                .find_map(|(&a, c)| rec(c, needed.without(a), rhs, path.with(a)))
        }
        rec(&self.root, lhs, rhs, AttrSet::empty())
    }

    /// All stored `lhs' ⊇ lhs` with the given RHS (equality included).
    pub fn get_specializations(&self, lhs: AttrSet, rhs: AttrId) -> Vec<AttrSet> {
        fn rec(node: &Node, needed: AttrSet, rhs: AttrId, path: AttrSet, out: &mut Vec<AttrSet>) {
            if needed.is_empty() {
                if node.rhs.contains(rhs) {
                    out.push(path);
                }
                for (&a, child) in &node.children {
                    rec(child, needed, rhs, path.with(a), out);
                }
                return;
            }
            let next_needed = needed.first().expect("non-empty");
            for (&a, child) in node.children.range(..=next_needed) {
                rec(child, needed.without(a), rhs, path.with(a), out);
            }
        }
        let mut out = Vec::new();
        rec(&self.root, lhs, rhs, AttrSet::empty(), &mut out);
        out
    }

    /// Removes every stored `lhs' ⊇ lhs` with the given RHS (equality
    /// included) and returns the removed LHSs.
    pub fn remove_specializations(&mut self, lhs: AttrSet, rhs: AttrId) -> Vec<AttrSet> {
        let specs = self.get_specializations(lhs, rhs);
        for &s in &specs {
            let removed = self.remove(s, rhs);
            debug_assert!(removed);
        }
        specs
    }

    /// Removes every stored `lhs' ⊆ lhs` with the given RHS (equality
    /// included) and returns the removed LHSs.
    pub fn remove_generalizations(&mut self, lhs: AttrSet, rhs: AttrId) -> Vec<AttrSet> {
        let gens = self.get_generalizations(lhs, rhs);
        for &g in &gens {
            let removed = self.remove(g, rhs);
            debug_assert!(removed);
        }
        gens
    }

    /// All FDs whose LHS has exactly `level` attributes, in deterministic
    /// order. The lattice-traversal algorithms (paper Algorithms 2 and 4)
    /// walk the covers level by level through this.
    pub fn get_level(&self, level: usize) -> Vec<Fd> {
        fn rec(node: &Node, remaining: usize, path: AttrSet, out: &mut Vec<Fd>) {
            if remaining == 0 {
                out.extend(node.rhs.iter().map(|r| Fd::new(path, r)));
                return;
            }
            for (&a, child) in &node.children {
                rec(child, remaining - 1, path.with(a), out);
            }
        }
        let mut out = Vec::new();
        rec(&self.root, level, AttrSet::empty(), &mut out);
        out
    }

    /// The deepest level holding any FD, or `None` if empty.
    pub fn max_level(&self) -> Option<usize> {
        fn rec(node: &Node, depth: usize) -> Option<usize> {
            let mut best = if node.rhs.is_empty() {
                None
            } else {
                Some(depth)
            };
            for child in node.children.values() {
                best = best.max(rec(child, depth + 1));
            }
            best
        }
        rec(&self.root, 0)
    }

    /// All stored FDs in deterministic (path) order.
    pub fn all_fds(&self) -> Vec<Fd> {
        fn rec(node: &Node, path: AttrSet, out: &mut Vec<Fd>) {
            out.extend(node.rhs.iter().map(|r| Fd::new(path, r)));
            for (&a, child) in &node.children {
                rec(child, path.with(a), out);
            }
        }
        let mut out = Vec::with_capacity(self.len);
        rec(&self.root, AttrSet::empty(), &mut out);
        out
    }

    /// Positive-cover insertion: adds `lhs -> rhs` only if no
    /// generalization (or the FD itself) is already stored — the
    /// *minimality pruning* used whenever a specialization is generated
    /// (paper Algorithm 2 lines 14–15, Algorithm 3 lines 8–9).
    ///
    /// Returns `true` if the FD was added.
    pub fn add_minimal(&mut self, lhs: AttrSet, rhs: AttrId) -> bool {
        if self.contains_generalization(lhs, rhs) {
            return false;
        }
        self.add(lhs, rhs)
    }

    /// Negative-cover insertion of an observed non-FD: if no
    /// specialization is stored (the non-FD is maximal w.r.t. the cover),
    /// removes all generalizations — they are no longer maximal — and
    /// adds it. This is the two-step update of paper Section 4 ("first
    /// remove all generalizations of the new non-FD from the cover, then
    /// add it"), with the maximality guard Algorithm 3 applies to
    /// sampling-discovered non-FDs.
    ///
    /// Returns `true` if the non-FD entered the cover.
    pub fn add_maximal_evicting(&mut self, lhs: AttrSet, rhs: AttrId) -> bool {
        if self.contains_specialization(lhs, rhs) {
            return false;
        }
        self.remove_generalizations(lhs, rhs);
        let added = self.add(lhs, rhs);
        debug_assert!(added);
        true
    }

    /// Negative-cover insertion with maximality check: adds `lhs -> rhs`
    /// only if no specialization (or the FD itself) is stored (paper
    /// Algorithm 1 lines 12–13, Algorithm 3 lines 13–14).
    ///
    /// Returns `true` if the FD was added.
    pub fn add_maximal(&mut self, lhs: AttrSet, rhs: AttrId) -> bool {
        if self.contains_specialization(lhs, rhs) {
            return false;
        }
        self.add(lhs, rhs)
    }

    /// Debug check: no stored FD is a proper generalization of another —
    /// both covers must be antichains per RHS. O(n·lookup); tests only.
    pub fn is_antichain(&self) -> bool {
        let fds = self.all_fds();
        fds.iter()
            .all(|fd| self.get_generalizations(fd.lhs, fd.rhs).len() == 1)
    }
}

impl FromIterator<Fd> for FdTree {
    fn from_iter<T: IntoIterator<Item = Fd>>(iter: T) -> Self {
        let mut tree = FdTree::new();
        for fd in iter {
            tree.add(fd.lhs, fd.rhs);
        }
        tree
    }
}

impl PartialEq for FdTree {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.all_fds() == other.all_fds()
    }
}

impl Eq for FdTree {}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(attrs: &[usize]) -> AttrSet {
        attrs.iter().copied().collect()
    }

    fn tree(fds: &[(&[usize], usize)]) -> FdTree {
        fds.iter().map(|&(l, r)| Fd::new(s(l), r)).collect()
    }

    #[test]
    fn add_remove_contains() {
        let mut t = FdTree::new();
        assert!(t.add(s(&[1, 3]), 0));
        assert!(!t.add(s(&[1, 3]), 0), "duplicate add");
        assert!(t.contains(s(&[1, 3]), 0));
        assert!(!t.contains(s(&[1]), 0));
        assert!(!t.contains(s(&[1, 3]), 2));
        assert_eq!(t.len(), 1);
        assert!(t.remove(s(&[1, 3]), 0));
        assert!(!t.remove(s(&[1, 3]), 0), "double remove");
        assert!(t.is_empty());
    }

    #[test]
    fn empty_lhs_annotations_live_at_root() {
        let mut t = FdTree::new();
        t.add(AttrSet::empty(), 2);
        assert!(t.contains(AttrSet::empty(), 2));
        assert_eq!(t.get_level(0), vec![Fd::new(AttrSet::empty(), 2)]);
        assert!(t.contains_generalization(s(&[0, 1]), 2));
        assert!(t.contains_specialization(AttrSet::empty(), 2));
    }

    #[test]
    fn generalization_queries() {
        let t = tree(&[(&[1], 0), (&[2, 3], 0), (&[1], 4)]);
        // {1,2,3} ⊇ {1} and ⊇ {2,3}
        assert!(t.contains_generalization(s(&[1, 2, 3]), 0));
        assert_eq!(
            t.get_generalizations(s(&[1, 2, 3]), 0),
            vec![s(&[1]), s(&[2, 3])]
        );
        // rhs must match
        assert!(!t.contains_generalization(s(&[1, 2, 3]), 5));
        // {2} alone covers neither lhs
        assert!(!t.contains_generalization(s(&[2]), 0));
        // equality counts as generalization
        assert!(t.contains_generalization(s(&[1]), 0));
    }

    #[test]
    fn specialization_queries() {
        let t = tree(&[(&[1, 2, 3], 0), (&[2, 4], 0), (&[1], 5)]);
        assert!(t.contains_specialization(s(&[2]), 0));
        assert_eq!(
            t.get_specializations(s(&[2]), 0),
            vec![s(&[1, 2, 3]), s(&[2, 4])]
        );
        assert_eq!(t.get_specializations(s(&[1, 3]), 0), vec![s(&[1, 2, 3])]);
        assert!(!t.contains_specialization(s(&[5]), 0));
        // equality counts as specialization
        assert!(t.contains_specialization(s(&[2, 4]), 0));
        // empty lhs matches everything with the right rhs
        assert_eq!(t.get_specializations(AttrSet::empty(), 0).len(), 2);
    }

    #[test]
    fn find_specialization_returns_a_witness() {
        let t = tree(&[(&[1, 2, 3], 0), (&[2, 4], 0)]);
        let w = t.find_specialization(s(&[2]), 0).unwrap();
        assert!(s(&[2]).is_subset_of(&w));
        assert!(t.contains(w, 0));
        assert_eq!(t.find_specialization(s(&[5]), 0), None);
        assert_eq!(t.find_specialization(s(&[2]), 7), None);
    }

    #[test]
    fn specialization_pruning_respects_ascending_paths() {
        // Regression guard: a specialization of {3} must not be missed
        // when the path visits smaller attributes first.
        let t = tree(&[(&[0, 3], 1)]);
        assert!(t.contains_specialization(s(&[3]), 1));
        assert!(t.contains_specialization(s(&[0]), 1));
        assert!(!t.contains_specialization(s(&[2]), 1));
    }

    #[test]
    fn remove_specializations_returns_removed() {
        let mut t = tree(&[(&[1, 2], 0), (&[1, 2, 3], 0), (&[2], 0), (&[1, 2], 4)]);
        let removed = t.remove_specializations(s(&[1, 2]), 0);
        assert_eq!(removed, vec![s(&[1, 2]), s(&[1, 2, 3])]);
        assert_eq!(t.len(), 2);
        assert!(t.contains(s(&[2]), 0));
        assert!(t.contains(s(&[1, 2]), 4), "other rhs untouched");
    }

    #[test]
    fn remove_generalizations_returns_removed() {
        let mut t = tree(&[(&[1], 0), (&[1, 2], 0), (&[1, 2, 3], 0), (&[3], 0)]);
        let removed = t.remove_generalizations(s(&[1, 2]), 0);
        assert_eq!(removed, vec![s(&[1]), s(&[1, 2])]);
        assert!(t.contains(s(&[1, 2, 3]), 0));
        assert!(t.contains(s(&[3]), 0));
    }

    #[test]
    fn level_enumeration() {
        let t = tree(&[
            (&[], 0),
            (&[1], 0),
            (&[2], 3),
            (&[1, 2], 4),
            (&[0, 1, 3], 2),
        ]);
        assert_eq!(t.get_level(0), vec![Fd::new(s(&[]), 0)]);
        assert_eq!(t.get_level(1).len(), 2);
        assert_eq!(t.get_level(2), vec![Fd::new(s(&[1, 2]), 4)]);
        assert_eq!(t.get_level(3), vec![Fd::new(s(&[0, 1, 3]), 2)]);
        assert!(t.get_level(4).is_empty());
        assert_eq!(t.max_level(), Some(3));
        assert_eq!(FdTree::new().max_level(), None);
    }

    #[test]
    fn all_fds_roundtrip() {
        let fds = vec![
            Fd::new(s(&[]), 1),
            Fd::new(s(&[0]), 2),
            Fd::new(s(&[0, 2]), 1),
            Fd::new(s(&[1, 3]), 0),
        ];
        let t: FdTree = fds.iter().copied().collect();
        assert_eq!(t.len(), 4);
        let mut got = t.all_fds();
        got.sort();
        let mut want = fds;
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn add_minimal_enforces_minimality() {
        let mut t = tree(&[(&[1], 0)]);
        assert!(!t.add_minimal(s(&[1, 2]), 0), "specialization of stored fd");
        assert!(!t.add_minimal(s(&[1]), 0), "exact duplicate");
        assert!(t.add_minimal(s(&[2]), 0), "incomparable lhs");
        assert!(t.add_minimal(s(&[1, 2]), 3), "different rhs");
        assert!(t.is_antichain());
    }

    #[test]
    fn add_maximal_enforces_maximality() {
        let mut t = tree(&[(&[1, 2], 0)]);
        assert!(
            !t.add_maximal(s(&[1]), 0),
            "generalization of stored non-fd"
        );
        assert!(!t.add_maximal(s(&[1, 2]), 0), "exact duplicate");
        assert!(t.add_maximal(s(&[1, 3]), 0), "incomparable lhs");
    }

    #[test]
    fn add_maximal_evicting_evicts_generalizations() {
        let mut t = tree(&[(&[1], 0), (&[2], 0), (&[3], 1)]);
        assert!(t.add_maximal_evicting(s(&[1, 2]), 0));
        assert!(t.contains(s(&[1, 2]), 0));
        assert!(!t.contains(s(&[1]), 0));
        assert!(!t.contains(s(&[2]), 0));
        assert!(t.contains(s(&[3]), 1));
        assert!(t.is_antichain());
    }

    #[test]
    fn add_maximal_evicting_refuses_non_maximal() {
        let mut t = tree(&[(&[1, 2, 3], 0)]);
        assert!(!t.add_maximal_evicting(s(&[1, 2]), 0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn tree_equality_ignores_insertion_order() {
        let a = tree(&[(&[1], 0), (&[2, 3], 4)]);
        let b = tree(&[(&[2, 3], 4), (&[1], 0)]);
        assert_eq!(a, b);
        assert_ne!(a, tree(&[(&[1], 0)]));
    }
}
