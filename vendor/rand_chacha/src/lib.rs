//! Offline stand-in for the `rand_chacha` crate.
//!
//! Exposes [`ChaCha8Rng`] with the construction/trait surface the
//! workspace uses (`SeedableRng::seed_from_u64` + `RngCore`). The
//! underlying stream is xoshiro256++, not actual ChaCha8 — every
//! consumer in this workspace needs *deterministic*, well-mixed streams,
//! not upstream-bit-identical ones.

use rand::{RngCore, SeedableRng, Xoshiro256PlusPlus};

macro_rules! chacha_alias {
    ($($name:ident),*) => {$(
        /// Deterministic seeded generator (xoshiro256++ under the hood).
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct $name(Xoshiro256PlusPlus);

        impl SeedableRng for $name {
            fn seed_from_u64(state: u64) -> Self {
                $name(Xoshiro256PlusPlus::seed_from_u64(state))
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
    )*};
}

chacha_alias!(ChaCha8Rng, ChaCha12Rng, ChaCha20Rng);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn usable_via_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x = rng.gen_range(0usize..100);
        assert!(x < 100);
    }
}
