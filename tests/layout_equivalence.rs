//! The columnar arena must be invisible in the results: replaying any
//! change trace through the columnar [`DynamicRelation`] and through the
//! retained row-oriented reference store
//! ([`RowStoreRelation`](dynfd::relation::RowStoreRelation)) must yield
//! bit-identical records, validation verdicts, *and violation
//! witnesses* — and the full engine on top of the columnar layout must
//! stay thread-count invariant (covers, §5.2 annotations, and the
//! per-batch validation job counts) at 1, 2, and 8 threads.
//!
//! This is the gate for the columnar-store PR: slot reuse, free-list
//! order, and dense-PLI iteration order may differ internally, but
//! nothing observable may move.

use dynfd::common::{AttrSet, Fd, RecordId, Schema};
use dynfd::core::{BatchResult, DynFd, DynFdConfig};
use dynfd::relation::{
    validate, validate_rowstore, Batch, ChangeOp, DynamicRelation, RowStoreRelation,
    ValidationOptions,
};
use dynfd_testkit::Trace;
use proptest::prelude::*;

const COLS: usize = 4;

/// Both stores replayed batch by batch; verdicts and witnesses compared
/// after every batch under the full and (where applicable) delta-pruned
/// validation options.
fn assert_layouts_agree(initial: &[Vec<String>], batches: &[Batch], schema: Schema, label: &str) {
    let mut reference = RowStoreRelation::from_rows(schema.clone(), initial)
        .expect("reference store accepts the trace");
    let mut columnar =
        DynamicRelation::from_rows(schema, initial).expect("columnar store accepts the trace");
    let arity = columnar.arity();

    // Every 1-ary LHS with all remaining attributes as simultaneous
    // RHS (exercises the multi-RHS group tables), plus every 2-ary LHS.
    let mut candidates: Vec<(AttrSet, AttrSet)> = Vec::new();
    for a in 0..arity {
        let lhs = AttrSet::single(a);
        let rhs: AttrSet = (0..arity).filter(|&r| r != a).collect();
        candidates.push((lhs, rhs));
        for b in (a + 1)..arity {
            let lhs: AttrSet = [a, b].into_iter().collect();
            let rhs: AttrSet = (0..arity).filter(|&r| r != a && r != b).collect();
            if !rhs.is_empty() {
                candidates.push((lhs, rhs));
            }
        }
    }

    for (i, batch) in batches.iter().enumerate() {
        let (ins, del, first_new) = reference
            .apply_batch(batch)
            .expect("reference batch application");
        let applied = columnar
            .apply_batch(batch)
            .expect("columnar batch application");
        assert_eq!(ins, applied.inserted, "{label}: batch {i} inserted set");
        assert_eq!(del, applied.deleted, "{label}: batch {i} deleted set");
        assert_eq!(
            first_new, applied.first_new_id,
            "{label}: batch {i} id watermark"
        );
        assert_eq!(
            applied.inserted.len(),
            applied.inserted_slots.len(),
            "{label}: batch {i} slot list not aligned with inserts"
        );
        for (rid, &slot) in applied.inserted.iter().zip(&applied.inserted_slots) {
            assert_eq!(
                columnar.slot_of(*rid),
                Some(slot),
                "{label}: batch {i} reported a stale slot for {rid}"
            );
        }

        // Record-level equality, id by id.
        assert_eq!(reference.len(), columnar.len(), "{label}: batch {i} len");
        for rid in columnar.record_ids() {
            assert_eq!(
                reference.compressed(rid),
                columnar.compressed(rid).map(|r| r.to_vec()).as_deref(),
                "{label}: batch {i}: record {rid} diverged"
            );
        }

        // Verdict + witness equality under both pruning regimes.
        let mut option_sets = vec![ValidationOptions::full()];
        if let Some(first) = first_new {
            option_sets.push(ValidationOptions::delta(first));
        }
        for opts in &option_sets {
            for &(lhs, rhs) in &candidates {
                let old = validate_rowstore(&reference, lhs, rhs, opts);
                let new = validate(&columnar, lhs, rhs, opts);
                assert_eq!(
                    old.outcomes, new.outcomes,
                    "{label}: batch {i}: layouts diverged on {lhs:?} -> {rhs:?} ({opts:?})"
                );
            }
        }
        columnar
            .check_arena_invariants()
            .unwrap_or_else(|e| panic!("{label}: batch {i}: arena invariants: {e}"));
    }
}

/// The §5.2 annotation dump plus per-batch results of one engine replay.
type Replay = (Vec<BatchResult>, Vec<(Fd, (RecordId, RecordId))>, DynFd);

fn replay_engine(trace: &Trace, threads: usize) -> Replay {
    let config = DynFdConfig {
        parallelism: threads,
        ..DynFdConfig::default()
    };
    let mut dynfd = DynFd::new(trace.to_relation(), config);
    let results: Vec<BatchResult> = trace
        .to_batches()
        .iter()
        .map(|b| dynfd.apply_batch(b).expect("trace batches apply cleanly"))
        .collect();
    let annotations = dynfd.violation_annotations();
    (results, annotations, dynfd)
}

#[test]
fn testkit_traces_replay_identically_across_layouts() {
    for case in 0..6 {
        let trace = Trace::for_case(23, case);
        let label = format!("case {case} ({})", trace.profile);
        assert_layouts_agree(
            &trace.initial_rows,
            &trace.to_batches(),
            trace.schema.clone(),
            &label,
        );
    }
}

#[test]
fn engine_on_columnar_store_is_thread_count_invariant() {
    // Covers, annotations, and the dispatched job counts must not
    // depend on the worker count — the columnar validator feeding the
    // parallel fan-out is deterministic per job.
    for case in 0..4 {
        let trace = Trace::for_case(29, case);
        let seq = replay_engine(&trace, 1);
        seq.2
            .verify_consistency()
            .expect("sequential replay consistent");
        for threads in [2usize, 8] {
            let par = replay_engine(&trace, threads);
            let label = format!("case {case} ({}), {threads} threads", trace.profile);
            assert_eq!(seq.1, par.1, "{label}: annotations diverged");
            assert_eq!(
                seq.2.positive_cover(),
                par.2.positive_cover(),
                "{label}: positive covers diverged"
            );
            assert_eq!(
                seq.2.negative_cover(),
                par.2.negative_cover(),
                "{label}: negative covers diverged"
            );
            assert_eq!(seq.0.len(), par.0.len());
            for (i, (s, p)) in seq.0.iter().zip(&par.0).enumerate() {
                assert_eq!(s.added, p.added, "{label}: added FDs, batch {i}");
                assert_eq!(s.removed, p.removed, "{label}: removed FDs, batch {i}");
                assert_eq!(
                    s.metrics.validation_jobs(),
                    p.metrics.validation_jobs(),
                    "{label}: validation job count diverged at batch {i}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Property-based variant: random churn scripts, random batch sizes.
// ---------------------------------------------------------------------------

fn arb_row() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec((0u8..3).prop_map(|v| format!("v{v}")), COLS)
}

#[derive(Clone, Debug)]
enum ScriptOp {
    Insert(Vec<String>),
    DeleteNth(usize),
    UpdateNth(usize, Vec<String>),
}

fn arb_script() -> impl Strategy<Value = Vec<ScriptOp>> {
    proptest::collection::vec(
        prop_oneof![
            2 => arb_row().prop_map(ScriptOp::Insert),
            // Deletes weighted up relative to the determinism suite:
            // slot reuse is the hazard this gate exists for.
            2 => (0usize..32).prop_map(ScriptOp::DeleteNth),
            1 => ((0usize..32), arb_row()).prop_map(|(i, r)| ScriptOp::UpdateNth(i, r)),
        ],
        1..30,
    )
}

fn to_batches(script: &[ScriptOp], initial: usize, batch_size: usize) -> Vec<Batch> {
    let mut live: Vec<RecordId> = (0..initial as u64).map(RecordId).collect();
    let mut next_id = initial as u64;
    let mut ops = Vec::new();
    for op in script {
        match op {
            ScriptOp::Insert(row) => {
                ops.push(ChangeOp::Insert(row.clone()));
                live.push(RecordId(next_id));
                next_id += 1;
            }
            ScriptOp::DeleteNth(i) => {
                if live.is_empty() {
                    continue;
                }
                let rid = live.remove(i % live.len());
                ops.push(ChangeOp::Delete(rid));
            }
            ScriptOp::UpdateNth(i, row) => {
                if live.is_empty() {
                    continue;
                }
                let rid = live.remove(i % live.len());
                ops.push(ChangeOp::Update(rid, row.clone()));
                live.push(RecordId(next_id));
                next_id += 1;
            }
        }
    }
    Batch::chunk(ops, batch_size)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_churn_replays_identically_across_layouts(
        initial in proptest::collection::vec(arb_row(), 0..12),
        script in arb_script(),
        batch_size in 1usize..8,
    ) {
        let batches = to_batches(&script, initial.len(), batch_size);
        assert_layouts_agree(
            &initial,
            &batches,
            Schema::anonymous("p", COLS),
            "random script",
        );
    }
}
