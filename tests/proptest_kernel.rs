//! Property tests for the vectorized intersection kernel: every
//! available kernel (scalar merge, SSE2, AVX2) computes the identical
//! payload sequence for the identical key lists, across all lengths,
//! alignments, densities, and tail shapes — and the cluster-level entry
//! point `intersect_clusters` is invariant under the global SIMD
//! toggle, including the u64-record-id overflow fallback.

use dynfd::common::RecordId;
use dynfd::relation::intersect_clusters;
use dynfd::relation::kernel::{
    self, intersect_keyed, intersect_keyed_with, KernelKind, GALLOP_RATIO, SIMD_MIN_LEN,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that flip the process-global SIMD toggle.
static TOGGLE: Mutex<()> = Mutex::new(());

/// Every kernel the host CPU can run, weakest first.
fn available_kinds() -> Vec<KernelKind> {
    [KernelKind::Scalar, KernelKind::Sse, KernelKind::Avx2]
        .into_iter()
        .filter(|&k| k <= kernel::detected_kernel())
        .collect()
}

/// Reference intersection: double loop over the key lists.
fn reference(a_keys: &[u32], a_vals: &[u32], b_keys: &[u32]) -> Vec<u32> {
    a_keys
        .iter()
        .zip(a_vals)
        .filter(|(k, _)| b_keys.contains(k))
        .map(|(_, v)| *v)
        .collect()
}

/// Strictly increasing key list drawn from a tunable universe, so the
/// densities range from disjoint to near-identical.
fn arb_keys(max_len: usize, universe: u32) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..universe, 0..=max_len).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// All kernels agree with the reference on arbitrary key lists —
    /// covering empty/singleton lists, sub-block tails, dense overlaps,
    /// and disjoint inputs.
    #[test]
    fn kernels_agree_with_reference(
        a in arb_keys(64, 96),
        b in arb_keys(64, 96),
    ) {
        // Distinct payloads with the high bit set catch any key/payload
        // mix-up inside the compaction step.
        let vals: Vec<u32> = (0..a.len() as u32).map(|i| i ^ 0x8000_0000).collect();
        let want = reference(&a, &vals, &b);
        for kind in available_kinds() {
            let mut got = Vec::new();
            intersect_keyed_with(kind, &a, &vals, &b, &mut got);
            prop_assert_eq!(&got, &want, "kernel {} diverged", kind.name());
        }
        let mut via_dispatch = Vec::new();
        intersect_keyed(&a, &vals, &b, &mut via_dispatch);
        prop_assert_eq!(&via_dispatch, &want, "dispatched kernel diverged");
    }

    /// Alignment sweep: the same logical input presented at every
    /// possible offset from a block boundary produces the same output.
    #[test]
    fn kernels_are_alignment_invariant(
        base in arb_keys(48, 512),
        b in arb_keys(48, 512),
        skip in 0usize..9,
    ) {
        let a: Vec<u32> = base.iter().copied().skip(skip).collect();
        let vals: Vec<u32> = (0..a.len() as u32).collect();
        let want = reference(&a, &vals, &b);
        for kind in available_kinds() {
            let mut got = Vec::new();
            intersect_keyed_with(kind, &a, &vals, &b, &mut got);
            prop_assert_eq!(&got, &want, "kernel {} diverged at skip {}", kind.name(), skip);
        }
    }

    /// Cluster-level equivalence: `intersect_clusters` emits the same
    /// rid-ordered slots with the SIMD kernel enabled and disabled, on
    /// slot lists long enough to take the vectorized path and unbalanced
    /// enough to take the galloping path.
    #[test]
    fn cluster_intersection_is_toggle_invariant(
        a in arb_keys(3 * SIMD_MIN_LEN, 256),
        b in arb_keys(3 * SIMD_MIN_LEN * GALLOP_RATIO, 256),
    ) {
        let _guard = TOGGLE.lock().unwrap();
        let slot_rids: Vec<RecordId> = (0..256).map(|s| RecordId(s as u64 * 3 + 1)).collect();
        let mut scalar = Vec::new();
        let mut simd = Vec::new();
        kernel::set_simd_enabled(false);
        intersect_clusters(&a, &b, &slot_rids, &mut scalar);
        kernel::set_simd_enabled(true);
        intersect_clusters(&a, &b, &slot_rids, &mut simd);
        kernel::set_simd_enabled(true);
        prop_assert_eq!(scalar, simd);
    }

    /// Record ids beyond u32 cannot be narrowed for the vectorized
    /// kernel; the fallback must keep the output identical rather than
    /// truncate.
    #[test]
    fn oversized_rids_stay_exact(
        a in arb_keys(2 * SIMD_MIN_LEN, 128),
        b in arb_keys(2 * SIMD_MIN_LEN, 128),
    ) {
        let _guard = TOGGLE.lock().unwrap();
        let base = u32::MAX as u64 - 40;
        let slot_rids: Vec<RecordId> = (0..128).map(|s| RecordId(base + s as u64)).collect();
        let mut scalar = Vec::new();
        let mut simd = Vec::new();
        kernel::set_simd_enabled(false);
        intersect_clusters(&a, &b, &slot_rids, &mut scalar);
        kernel::set_simd_enabled(true);
        intersect_clusters(&a, &b, &slot_rids, &mut simd);
        kernel::set_simd_enabled(true);
        prop_assert_eq!(scalar, simd);
    }
}
