//! Sampling-guided validation ordering is *pure scheduling*: with
//! `sample_ordering` on versus off, and across every worker count, the
//! engine must produce bit-identical positive covers, negative covers,
//! FD deltas, §5.2 violation annotations (the exact witness pairs, not
//! just sound ones), and PLI-cache state (hit/miss/eviction counters
//! and resident bytes). Only the validation schedule — and the
//! `sampling_*` work counters — may differ.

use dynfd::common::{RecordId, Schema};
use dynfd::core::{DynFd, DynFdConfig};
use dynfd::relation::{Batch, ChangeOp, DynamicRelation};
use proptest::prelude::*;

const COLS: usize = 6;
const DOMAIN: u8 = 3;

fn arb_row() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec((0..DOMAIN).prop_map(|v| format!("v{v}")), COLS)
}

fn config(ordering: bool, threads: usize) -> DynFdConfig {
    DynFdConfig {
        sample_ordering: ordering,
        parallelism: threads,
        // Let small levels fan out / probe too, so the worker-count and
        // ordering axes are exercised on every level.
        parallel_min_jobs: 1,
        ..DynFdConfig::default()
    }
}

/// Interleaves inserts with deletes of every fourth inserted record so
/// both phases run, with enough inserts per batch to trip violations.
fn script(initial: usize, inserts: &[Vec<String>], batch_size: usize) -> Vec<Batch> {
    let mut ops = Vec::new();
    for (i, row) in inserts.iter().enumerate() {
        ops.push(ChangeOp::Insert(row.clone()));
        if i % 4 == 3 {
            ops.push(ChangeOp::Delete(RecordId(initial as u64 + i as u64)));
        }
    }
    Batch::chunk(ops, batch_size)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariance: every observable output is bit-identical
    /// with ordering on vs off, at 1, 2, and 8 worker threads.
    #[test]
    fn ordering_is_observationally_invisible(
        initial in proptest::collection::vec(arb_row(), 0..12),
        inserts in proptest::collection::vec(arb_row(), 4..24),
        batch_size in 2usize..8,
    ) {
        let rel = DynamicRelation::from_rows(Schema::anonymous("o", COLS), &initial).unwrap();
        let mut reference = DynFd::new(rel.clone(), config(false, 1));
        let mut variants: Vec<DynFd> = [
            config(true, 1),
            config(true, 2),
            config(true, 8),
            config(false, 2),
        ]
        .into_iter()
        .map(|c| DynFd::new(rel.clone(), c))
        .collect();

        for batch in script(initial.len(), &inserts, batch_size) {
            let want = reference.apply_batch(&batch).unwrap();
            for (v, engine) in variants.iter_mut().enumerate() {
                let got = engine.apply_batch(&batch).unwrap();
                prop_assert_eq!(
                    engine.positive_cover(),
                    reference.positive_cover(),
                    "variant {} positive cover diverged",
                    v
                );
                prop_assert_eq!(
                    engine.negative_cover(),
                    reference.negative_cover(),
                    "variant {} negative cover diverged",
                    v
                );
                prop_assert_eq!(&got.added, &want.added, "variant {} added diverged", v);
                prop_assert_eq!(&got.removed, &want.removed, "variant {} removed diverged", v);
                // Witness pairs must be the *same pairs*, not merely
                // sound ones: the ordered fold applies the identical
                // entry sequence.
                prop_assert_eq!(
                    engine.violation_annotations(),
                    reference.violation_annotations(),
                    "variant {} witness annotations diverged",
                    v
                );
                // Cache state is bit-identical: one snapshot per level,
                // effects merged in original job order, probe-only
                // effects for skipped jobs.
                prop_assert_eq!(
                    got.metrics.cache_hits,
                    want.metrics.cache_hits,
                    "variant {} cache hits diverged",
                    v
                );
                prop_assert_eq!(
                    got.metrics.cache_misses,
                    want.metrics.cache_misses,
                    "variant {} cache misses diverged",
                    v
                );
                prop_assert_eq!(
                    got.metrics.cache_evictions,
                    want.metrics.cache_evictions,
                    "variant {} cache evictions diverged",
                    v
                );
                prop_assert_eq!(
                    got.metrics.cache_bytes,
                    want.metrics.cache_bytes,
                    "variant {} cache bytes diverged",
                    v
                );
                // The candidate stream itself is unchanged — skipping
                // saves execution, not job accounting.
                prop_assert_eq!(
                    got.metrics.fd_validations,
                    want.metrics.fd_validations,
                    "variant {} job stream diverged",
                    v
                );
                prop_assert!(
                    engine.state_eq(&reference),
                    "variant {} engine state diverged",
                    v
                );
            }
        }
        reference.verify_consistency().expect("reference consistency");
        for engine in &variants {
            engine.verify_consistency().expect("variant consistency");
        }
    }

    /// Same invariance with the cache off entirely: the scheduler's
    /// uncached path (no effects bookkeeping) is equivalent too.
    #[test]
    fn ordering_invariance_without_cache(
        initial in proptest::collection::vec(arb_row(), 0..10),
        inserts in proptest::collection::vec(arb_row(), 4..16),
    ) {
        let rel = DynamicRelation::from_rows(Schema::anonymous("u", COLS), &initial).unwrap();
        let uncached = |ordering: bool| DynFdConfig {
            pli_cache: false,
            ..config(ordering, 2)
        };
        let mut on = DynFd::new(rel.clone(), uncached(true));
        let mut off = DynFd::new(rel, uncached(false));
        for batch in script(initial.len(), &inserts, 6) {
            let r_on = on.apply_batch(&batch).unwrap();
            let r_off = off.apply_batch(&batch).unwrap();
            prop_assert_eq!(&r_on.added, &r_off.added);
            prop_assert_eq!(&r_on.removed, &r_off.removed);
            prop_assert!(on.state_eq(&off), "engine state diverged");
        }
    }
}

/// Deterministic effectiveness smoke: on a violation-heavy batch the
/// scheduler must actually probe, flag, and skip work — otherwise the
/// invariance above is vacuously testing the fallback path.
#[test]
fn sampling_skips_work_on_violation_heavy_batches() {
    // 80 rows where most columns are keys or near-keys: many FDs, so
    // the first wide batch of near-duplicate rows violates en masse.
    let rows: Vec<Vec<String>> = (0..80)
        .map(|i| (0..COLS).map(|c| format!("v{}", i * (c + 1))).collect())
        .collect();
    let rel = DynamicRelation::from_rows(Schema::anonymous("h", COLS), &rows).unwrap();
    let mut engine = DynFd::new(rel, config(true, 1));

    let mut batch = Batch::new();
    for i in 0..30u64 {
        // Near-duplicates of row 0: agree on a prefix of the columns,
        // differ on the rest — violating every FD whose LHS lies in the
        // agreeing prefix.
        batch.insert(
            (0..COLS)
                .map(|c| {
                    if c < 1 + (i as usize % 4) {
                        format!("v{}", 0)
                    } else {
                        format!("x{i}-{c}")
                    }
                })
                .collect::<Vec<_>>(),
        );
    }
    let result = engine.apply_batch(&batch).unwrap();
    let m = result.metrics;
    assert!(m.sampling_probes > 0, "no level was probed: {m:?}");
    assert!(m.sampling_flagged > 0, "no job was flagged: {m:?}");
    assert!(
        m.sampling_flagged <= m.sampling_probes,
        "flagged exceeds probed: {m:?}"
    );
    assert!(m.kernel_lanes >= 1, "kernel lane width missing: {m:?}");

    // The invariance still holds on this adversarial batch.
    let rel2 = DynamicRelation::from_rows(
        Schema::anonymous("h", COLS),
        &(0..80)
            .map(|i| {
                (0..COLS)
                    .map(|c| format!("v{}", i * (c + 1)))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let mut plain = DynFd::new(rel2, config(false, 1));
    plain.apply_batch(&batch).unwrap();
    assert!(engine.state_eq(&plain), "ordered engine diverged");
}

/// Deterministic *skip* coverage: a construction where the scheduler
/// provably skips four of the five level-1 jobs, so the skip path —
/// probe, wave 1, resolved-prefix refutation, reproduced cache effects,
/// early level termination — runs for real, not vacuously, and is then
/// checked bit-identical against the unordered run.
///
/// Four blocks of `M` rows (block `a` shares one value `B{a}` in column
/// `a` and one value `Z{a}` in column 5, everything else unique) make
/// the bootstrap cover's level 1 exactly `{0} -> {1,2,3,4,5}` plus
/// `{a} -> {5}` for `a ∈ 1..=4`. The batch inserts six pairs agreeing
/// exactly on `{0,1,2,3,4}` (fresh shared col-0 value per pair, the
/// blocks' `B` values in cols 1-4, fresh col 5 per row), then a trailing
/// run of noise rows sharing the `B` values and one fresh col-5 value
/// `Z` (fresh singleton col 0 each):
///
/// * every batch slot lands in cluster `B_a` for each `a`, whose
///   32-record tail is all-`Z` noise — jobs `{a} -> {5}` probe to score
///   zero with certainty;
/// * job `{0}`'s probe lands on a pair's two-record col-0 cluster (the
///   batch fits inside the probe scan cap, so the seeded slot window
///   covers every insert) and flags it with certainty.
///
/// Wave 1 validates `{0}`, its witness's agree set `{0,1,2,3,4}`
/// refutes every `{a} -> {5}`, and the level terminates early with four
/// skips — while the unordered arm pays four `O(M)` cluster scans for
/// the same verdicts.
#[test]
fn scheduler_skips_refuted_jobs_deterministically() {
    const M: usize = 50;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for a in 1..=4usize {
        for i in 0..M {
            rows.push(
                (0..COLS)
                    .map(|c| {
                        if c == a {
                            format!("B{a}")
                        } else if c == 5 {
                            format!("Z{a}")
                        } else {
                            format!("b{a}i{i}c{c}")
                        }
                    })
                    .collect(),
            );
        }
    }
    let rel = DynamicRelation::from_rows(Schema::anonymous("s", COLS), &rows).unwrap();

    let mut burst = Batch::new();
    for k in 0..6u32 {
        for j in 0..2u32 {
            burst.insert(
                (0..COLS)
                    .map(|c| match c {
                        0 => format!("P{k}"),
                        5 => format!("q{k}{j}"),
                        c => format!("B{c}"),
                    })
                    .collect::<Vec<_>>(),
            );
        }
    }
    for n in 0..40u32 {
        burst.insert(
            (0..COLS)
                .map(|c| match c {
                    0 => format!("n{n}"),
                    5 => "Z".to_string(),
                    c => format!("B{c}"),
                })
                .collect::<Vec<_>>(),
        );
    }

    let mut ordered = DynFd::new(rel.clone(), config(true, 1));
    let m = ordered.apply_batch(&burst).unwrap().metrics;
    assert!(
        m.sampling_probes >= 5,
        "five level-1 jobs must probe: {m:?}"
    );
    assert!(m.sampling_flagged >= 1, "job {{0}} must be flagged: {m:?}");
    assert!(
        m.sampling_skipped >= 4,
        "jobs {{1}}..{{4}} must be skipped, not validated: {m:?}"
    );

    let mut plain = DynFd::new(rel, config(false, 1));
    let p = plain.apply_batch(&burst).unwrap().metrics;
    assert_eq!(p.sampling_skipped, 0, "unordered arm must not skip");
    assert!(
        ordered.state_eq(&plain),
        "skip path diverged from the unordered run"
    );
    ordered.verify_consistency().expect("ordered consistency");
    plain.verify_consistency().expect("plain consistency");
}
