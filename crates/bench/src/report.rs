//! Table printing and CSV output.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory the harness writes CSV series into.
pub const RESULTS_DIR: &str = "EXPERIMENTS-results";

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", cell, w = widths[i] + 2);
                let _ = i; // widths index kept in lockstep
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().min(120))
        );
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        let _ = ncols;
        out
    }

    /// The table serialized as RFC-4180 CSV.
    pub fn to_csv_string(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut text = String::new();
        let _ = writeln!(
            text,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                text,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        text
    }

    /// Writes the table as CSV into [`RESULTS_DIR`]; returns the path.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = Path::new(RESULTS_DIR);
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, self.to_csv_string())?;
        Ok(path)
    }
}

/// Formats a millisecond value compactly.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a ratio/speedup compactly.
pub fn ratio(v: f64) -> String {
    if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn ragged_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["x"]);
        t.row(vec!["a,b \"q\"".into()]);
        let text = t.to_csv_string();
        assert_eq!(text, "x\n\"a,b \"\"q\"\"\"\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(250.4), "250");
        assert_eq!(ms(5.25), "5.2");
        assert_eq!(ms(0.1234), "0.123");
        assert_eq!(ratio(12.34), "12.3");
        assert_eq!(ratio(1.234), "1.23");
    }
}
