//! DynFD configuration.

use dynfd_common::AttrSet;

/// How the insert-phase violation search compares record pairs
/// (Section 4.3 / the §6.5 ablation baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchMode {
    /// The paper's optimized strategy: progressively growing windows
    /// over similarity-sorted PLI clusters, stopping when fewer than the
    /// efficiency threshold of comparisons reveal new violations.
    Progressive,
    /// The §6.5 baseline: changed records are compared only to their
    /// direct neighbors (window 1) under the same sorting. The paper
    /// keeps this minimal form even in the no-pruning baseline because
    /// performance collapses without *any* violation search.
    Naive,
}

/// How much post-batch self-checking [`DynFd`](crate::DynFd) performs
/// before reporting a batch as applied.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConsistencyLevel {
    /// No checking (default): trust the incremental maintenance. This is
    /// the paper's configuration and the right choice on hot paths.
    #[default]
    Off,
    /// Cheap structural checks after every batch: both covers are
    /// antichains and the negative cover equals the inversion of the
    /// positive cover. O(cover size) — catches lost/duplicated cover
    /// entries without validating any FD against the data.
    Cheap,
    /// Full semantic verification after every batch
    /// ([`DynFd::verify_consistency`](crate::DynFd::verify_consistency)).
    /// Exponential in arity; test harnesses only.
    Full,
}

/// Tuning and ablation knobs for [`DynFd`](crate::DynFd).
///
/// The defaults enable all four pruning strategies with the paper's
/// hard-coded 10 % thresholds. The §6.5 experiments toggle each strategy
/// independently; [`DynFdConfig::baseline`] reproduces the paper's "-"
/// row (no strategy beyond naive sampling).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DynFdConfig {
    /// §4.2 cluster pruning: insert-phase validations skip PLI clusters
    /// that contain no newly inserted record.
    pub cluster_pruning: bool,
    /// §4.3 violation search mode: progressive windows (strategy on) or
    /// the naive direct-neighbor sampling (strategy off / baseline).
    pub violation_search: SearchMode,
    /// §5.2 validation pruning: cache a violating record pair per
    /// maximal non-FD and revalidate only when one of the two records
    /// was deleted.
    pub validation_pruning: bool,
    /// §5.3 optimistic depth-first searches when a delete batch
    /// validates many non-FDs.
    pub depth_first_search: bool,
    /// Fraction of invalid (resp. valid) outcomes per lattice level
    /// beyond which the traversal is considered inefficient and the
    /// violation search (resp. depth-first search) starts. 0.1 in the
    /// paper (hard-coded there, citing [13] for why it is a good value).
    pub inefficiency_threshold: f64,
    /// Fraction of newly valid FDs used to seed depth-first searches
    /// (0.1 in the paper).
    pub dfs_seed_fraction: f64,
    /// **Extension** (paper Section 8, item 2): attributes the user
    /// declares to be keys *for the lifetime of the relation*. An FD
    /// whose LHS contains a declared key can never be invalidated, so
    /// the insert phase skips its validation entirely. Declaring a
    /// column that can stop being unique is unsound — this encodes a
    /// database `UNIQUE` constraint, not an observation.
    pub known_keys: AttrSet,
    /// **Extension** (paper Section 8, item 3): exploit that updates
    /// usually change only a few attribute values. For a batch that
    /// consists purely of updates, an FD or non-FD none of whose
    /// attributes were touched by any update cannot change status and
    /// is skipped in both phases. Off by default (the paper's evaluated
    /// configuration).
    pub update_pruning: bool,
    /// Worker-thread budget for level-wise candidate validation and the
    /// violation search. `0` means *auto* (one worker per available
    /// core), `1` forces the sequential code path, `n > 1` caps the
    /// worker count at `n`. The produced covers, deltas, and violation
    /// annotations are bit-identical for every setting; only wall-clock
    /// time changes.
    pub parallelism: usize,
    /// Post-batch self-check level. When a check detects cover
    /// corruption, the engine enters degraded mode for that batch:
    /// both covers are rebuilt from scratch via a static HyFD run, the
    /// rebuild is counted in
    /// [`BatchMetrics::cover_rebuilds`](crate::BatchMetrics), and the
    /// batch still reports success.
    pub consistency: ConsistencyLevel,
    /// **Extension**: memoize two-attribute PLI intersections across
    /// candidates and batches (the EAIFD-lineage partition reuse; see
    /// `dynfd_relation::pli_cache`). Covers and deltas are identical
    /// either way; only violation witness pairs and wall-clock time may
    /// differ.
    pub pli_cache: bool,
    /// Byte budget of the PLI-intersection cache; least-recently-used
    /// entries are evicted beyond it. Ignored when
    /// [`DynFdConfig::pli_cache`] is off.
    pub pli_cache_bytes: usize,
    /// Lattice levels with fewer validation jobs than this run
    /// sequentially even when [`DynFdConfig::parallelism`] asks for
    /// workers — thread spawn costs more than a whole small level (the
    /// BENCH_pr1.json arity-1 anomaly). `0` disables the fallback.
    pub parallel_min_jobs: usize,
    /// Snapshot cadence of the durable engine (`dynfd-persist`): after
    /// every `snapshot_every` applied batches, full engine state is
    /// written to a snapshot file and the write-ahead batch log is
    /// truncated. `0` disables periodic snapshots (the WAL then grows
    /// until an explicit snapshot). Ignored by the purely in-memory
    /// [`DynFd`](crate::DynFd); covers and deltas never depend on it.
    pub snapshot_every: usize,
    /// **Extension**: use the explicitly vectorized PLI-intersection
    /// kernel (`dynfd_relation::kernel`) where the CPU supports it.
    /// Output-identical to the scalar merge by construction — this knob
    /// exists for ablation benchmarks and as an escape hatch, not
    /// because the paths can disagree.
    pub simd: bool,
    /// **Extension** (EAIFD lineage): sampling-guided validation
    /// *ordering* in the insert phase. Each level's candidate jobs are
    /// probed against a small deterministic sample of dirty clusters;
    /// jobs the probe proves invalid are validated first so their
    /// witnesses specialize away sibling candidates before those are
    /// validated, and candidates the induced witnesses refute are
    /// skipped outright. Covers, verdicts, violation annotations, and
    /// cache state are bit-identical to the unordered run; only the
    /// validation schedule (and therefore wall-clock time) changes.
    pub sample_ordering: bool,
    /// Dirty clusters each sampling probe may inspect per job (the
    /// probe's work budget). Higher values flag more invalid jobs at
    /// higher probe cost. Ignored when
    /// [`DynFdConfig::sample_ordering`] is off.
    pub sample_budget: usize,
}

impl Default for DynFdConfig {
    fn default() -> Self {
        DynFdConfig {
            cluster_pruning: true,
            violation_search: SearchMode::Progressive,
            validation_pruning: true,
            depth_first_search: true,
            inefficiency_threshold: 0.1,
            dfs_seed_fraction: 0.1,
            known_keys: AttrSet::empty(),
            update_pruning: false,
            parallelism: 0,
            consistency: ConsistencyLevel::Off,
            pli_cache: true,
            pli_cache_bytes: 16 << 20,
            parallel_min_jobs: 16,
            snapshot_every: 64,
            simd: true,
            sample_ordering: true,
            sample_budget: 4,
        }
    }
}

impl DynFdConfig {
    /// The §6.5 baseline: all four strategies disabled. (The violation
    /// search degrades to its naive direct-neighbor form rather than
    /// vanishing entirely, exactly as the paper's baseline does.)
    pub fn baseline() -> Self {
        DynFdConfig {
            cluster_pruning: false,
            violation_search: SearchMode::Naive,
            validation_pruning: false,
            depth_first_search: false,
            ..DynFdConfig::default()
        }
    }

    /// Every combination of the four §6.5 ablation toggles crossed with
    /// the PLI-cache, SIMD-kernel, and sampling-ordering axes (128
    /// configs), in a fixed deterministic order from
    /// [`DynFdConfig::baseline`]-without-everything to the cached,
    /// vectorized, sampling-ordered default. The cross-validation tests
    /// and the testkit's differential runner iterate this matrix so that
    /// each pruning strategy — and each acceleration layer — is
    /// exercised both alone and in combination. The three acceleration
    /// axes must never change covers or deltas, so every row of this
    /// matrix is required to produce the identical result.
    pub fn ablation_matrix() -> Vec<DynFdConfig> {
        let mut configs = Vec::with_capacity(128);
        for ordering in [false, true] {
            for simd in [false, true] {
                for cache in [false, true] {
                    for cluster in [false, true] {
                        for search in [SearchMode::Naive, SearchMode::Progressive] {
                            for validation in [false, true] {
                                for dfs in [false, true] {
                                    configs.push(DynFdConfig {
                                        cluster_pruning: cluster,
                                        violation_search: search,
                                        validation_pruning: validation,
                                        depth_first_search: dfs,
                                        pli_cache: cache,
                                        simd,
                                        sample_ordering: ordering,
                                        ..DynFdConfig::default()
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        configs
    }

    /// The concrete worker count for this machine: resolves the `0 =
    /// auto` convention of [`DynFdConfig::parallelism`].
    pub fn effective_parallelism(&self) -> usize {
        dynfd_relation::resolve_parallelism(self.parallelism)
    }

    /// Short human-readable label of the enabled strategy set, matching
    /// the row labels of Figures 8/9 ("4.3+5.3+4.2+5.2" etc.).
    pub fn strategy_label(&self) -> String {
        let mut parts = Vec::new();
        if self.violation_search == SearchMode::Progressive {
            parts.push("4.3");
        }
        if self.depth_first_search {
            parts.push("5.3");
        }
        if self.cluster_pruning {
            parts.push("4.2");
        }
        if self.validation_pruning {
            parts.push("5.2");
        }
        let mut label = if parts.is_empty() {
            "-".to_string()
        } else {
            parts.join("+")
        };
        // The acceleration layers are on by default, so only their
        // absence is marked — the paper-figure labels
        // ("4.3+5.3+4.2+5.2", "-") stay intact.
        if !self.pli_cache {
            label.push_str(" (no-cache)");
        }
        if !self.simd {
            label.push_str(" (no-simd)");
        }
        if !self.sample_ordering {
            label.push_str(" (no-order)");
        }
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let c = DynFdConfig::default();
        assert!(c.cluster_pruning && c.validation_pruning && c.depth_first_search);
        assert_eq!(c.violation_search, SearchMode::Progressive);
        assert_eq!(c.strategy_label(), "4.3+5.3+4.2+5.2");
    }

    #[test]
    fn baseline_disables_everything() {
        let c = DynFdConfig::baseline();
        assert!(!c.cluster_pruning && !c.validation_pruning && !c.depth_first_search);
        assert_eq!(c.violation_search, SearchMode::Naive);
        assert_eq!(c.strategy_label(), "-");
    }

    #[test]
    fn parallelism_resolution() {
        let mut c = DynFdConfig::default();
        assert_eq!(c.parallelism, 0, "default is auto");
        assert!(c.effective_parallelism() >= 1);
        c.parallelism = 1;
        assert_eq!(c.effective_parallelism(), 1);
        c.parallelism = 4;
        assert_eq!(c.effective_parallelism(), 4);
    }

    #[test]
    fn ablation_matrix_covers_all_toggle_combinations() {
        let matrix = DynFdConfig::ablation_matrix();
        assert_eq!(matrix.len(), 128);
        let labels: std::collections::BTreeSet<String> =
            matrix.iter().map(|c| c.strategy_label()).collect();
        assert_eq!(labels.len(), 128, "labels are distinct");
        assert!(labels.contains("-"));
        assert!(labels.contains("- (no-cache)"));
        assert!(labels.contains("4.3+5.3+4.2+5.2"));
        assert!(labels.contains("4.3+5.3+4.2+5.2 (no-cache)"));
        assert!(labels.contains("4.3+5.3+4.2+5.2 (no-simd) (no-order)"));
        assert!(labels.contains("- (no-cache) (no-simd) (no-order)"));
        // Every acceleration axis appears in both settings for every
        // toggle combination.
        assert_eq!(matrix.iter().filter(|c| c.pli_cache).count(), 64);
        assert_eq!(matrix.iter().filter(|c| c.simd).count(), 64);
        assert_eq!(matrix.iter().filter(|c| c.sample_ordering).count(), 64);
    }

    #[test]
    fn cache_defaults() {
        let c = DynFdConfig::default();
        assert!(c.pli_cache, "cache is on by default");
        assert_eq!(c.pli_cache_bytes, 16 << 20);
        assert_eq!(c.parallel_min_jobs, 16);
        assert_eq!(c.snapshot_every, 64, "periodic snapshots on by default");
        assert!(c.simd, "vectorized kernel on by default");
        assert!(c.sample_ordering, "sampling-guided ordering on by default");
        assert_eq!(c.sample_budget, 4);
        // The default label is unchanged by the acceleration layers
        // being on.
        assert_eq!(c.strategy_label(), "4.3+5.3+4.2+5.2");
    }

    #[test]
    fn labels_match_figure_8_rows() {
        let mut c = DynFdConfig::baseline();
        c.violation_search = SearchMode::Progressive;
        assert_eq!(c.strategy_label(), "4.3");
        c.depth_first_search = true;
        assert_eq!(c.strategy_label(), "4.3+5.3");
        c.cluster_pruning = true;
        assert_eq!(c.strategy_label(), "4.3+5.3+4.2");
    }
}
