//! Property tests for the relation substrate: incremental PLI /
//! compressed-record maintenance must agree with a from-scratch rebuild
//! after arbitrary change sequences, batch application must be atomic,
//! and the validator must agree with a brute-force pairwise check.

use dynfd::common::{AttrSet, Fd, RecordId, Schema};
use dynfd::relation::{
    agree_set, validate_fd, Batch, ChangeOp, DynamicRelation, ValidationOptions,
};
use proptest::prelude::*;

const COLS: usize = 4;
const DOMAIN: u8 = 3;

fn arb_row() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec((0..DOMAIN).prop_map(|v| format!("v{v}")), COLS)
}

/// A change script: inserts and deletes/updates by *index into the live
/// set* (so scripts are always applicable regardless of prior ops).
#[derive(Clone, Debug)]
enum ScriptOp {
    Insert(Vec<String>),
    DeleteNth(usize),
    UpdateNth(usize, Vec<String>),
}

fn arb_script() -> impl Strategy<Value = Vec<ScriptOp>> {
    proptest::collection::vec(
        prop_oneof![
            arb_row().prop_map(ScriptOp::Insert),
            (0usize..32).prop_map(ScriptOp::DeleteNth),
            ((0usize..32), arb_row()).prop_map(|(i, r)| ScriptOp::UpdateNth(i, r)),
        ],
        0..40,
    )
}

/// Materializes a script into concrete batches against a live-id mirror.
fn to_batches(script: &[ScriptOp], initial: usize, batch_size: usize) -> Vec<Batch> {
    let mut live: Vec<RecordId> = (0..initial as u64).map(RecordId).collect();
    let mut next_id = initial as u64;
    let mut ops = Vec::new();
    for op in script {
        match op {
            ScriptOp::Insert(row) => {
                ops.push(ChangeOp::Insert(row.clone()));
                live.push(RecordId(next_id));
                next_id += 1;
            }
            ScriptOp::DeleteNth(i) => {
                if live.is_empty() {
                    continue;
                }
                let rid = live.remove(i % live.len());
                ops.push(ChangeOp::Delete(rid));
            }
            ScriptOp::UpdateNth(i, row) => {
                if live.is_empty() {
                    continue;
                }
                let rid = live.remove(i % live.len());
                ops.push(ChangeOp::Update(rid, row.clone()));
                live.push(RecordId(next_id));
                next_id += 1;
            }
        }
    }
    Batch::chunk(ops, batch_size)
}

/// Brute-force FD check straight from Definition 1.1.
fn brute_force_valid(rel: &DynamicRelation, fd: &Fd) -> bool {
    let ids: Vec<RecordId> = rel.record_ids().collect();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            let ra = rel.compressed(a).unwrap();
            let rb = rel.compressed(b).unwrap();
            if fd.lhs.iter().all(|x| ra[x] == rb[x]) && ra[fd.rhs] != rb[fd.rhs] {
                return false;
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn incremental_structures_equal_rebuilt(
        initial in proptest::collection::vec(arb_row(), 0..12),
        script in arb_script(),
        batch_size in 1usize..8,
    ) {
        let schema = Schema::anonymous("p", COLS);
        let mut rel = DynamicRelation::from_rows(schema, &initial).unwrap();
        for batch in to_batches(&script, initial.len(), batch_size) {
            rel.apply_batch(&batch).unwrap();
            let rebuilt = rel.rebuild_from_scratch();
            prop_assert_eq!(rel.len(), rebuilt.len());
            // Clusters hold arena slots, and the incremental relation's
            // slot layout legitimately differs from the rebuilt one's —
            // compare the rid-level partitions instead.
            let rid_clusters = |r: &DynamicRelation, attr: usize| -> Vec<Vec<RecordId>> {
                r.pli(attr)
                    .iter()
                    .map(|(_, c)| c.iter().map(|&s| r.rid_at_slot(s)).collect())
                    .collect()
            };
            for attr in 0..COLS {
                let mut a = rid_clusters(&rel, attr);
                let mut b = rid_clusters(&rebuilt, attr);
                a.sort();
                b.sort();
                prop_assert_eq!(a, b, "partition of column {} diverged", attr);
                prop_assert_eq!(
                    rel.pli(attr).entry_count(),
                    rel.len(),
                    "PLI entry count out of sync"
                );
            }
        }
    }

    #[test]
    fn validator_agrees_with_brute_force(
        rows in proptest::collection::vec(arb_row(), 0..14),
        lhs_mask in 0u32..(1 << COLS),
        rhs in 0usize..COLS,
    ) {
        let lhs: AttrSet = (0..COLS).filter(|&a| a != rhs && lhs_mask >> a & 1 == 1).collect();
        let schema = Schema::anonymous("p", COLS);
        let rel = DynamicRelation::from_rows(schema, &rows).unwrap();
        let fd = Fd::new(lhs, rhs);
        let fast = validate_fd(&rel, &fd, &ValidationOptions::full()).is_valid();
        prop_assert_eq!(fast, brute_force_valid(&rel, &fd));
    }

    #[test]
    fn violating_pairs_are_genuine(
        rows in proptest::collection::vec(arb_row(), 2..14),
        lhs_mask in 0u32..(1 << COLS),
        rhs in 0usize..COLS,
    ) {
        let lhs: AttrSet = (0..COLS).filter(|&a| a != rhs && lhs_mask >> a & 1 == 1).collect();
        let schema = Schema::anonymous("p", COLS);
        let rel = DynamicRelation::from_rows(schema, &rows).unwrap();
        let fd = Fd::new(lhs, rhs);
        if let dynfd::relation::RhsOutcome::Violated(a, b) =
            validate_fd(&rel, &fd, &ValidationOptions::full())
        {
            let ra = rel.compressed(a).unwrap();
            let rb = rel.compressed(b).unwrap();
            prop_assert!(lhs.iter().all(|x| ra[x] == rb[x]), "pair must agree on lhs");
            prop_assert!(ra[rhs] != rb[rhs], "pair must differ on rhs");
        }
    }

    #[test]
    fn agree_set_properties(
        rows in proptest::collection::vec(arb_row(), 2..10),
    ) {
        let schema = Schema::anonymous("p", COLS);
        let rel = DynamicRelation::from_rows(schema, &rows).unwrap();
        let ids: Vec<RecordId> = {
            let mut v: Vec<RecordId> = rel.record_ids().collect();
            v.sort_unstable();
            v
        };
        for &a in &ids {
            // Reflexive: full agreement with itself.
            prop_assert_eq!(agree_set(&rel, a, a).unwrap().len(), COLS);
            for &b in &ids {
                // Symmetric.
                prop_assert_eq!(agree_set(&rel, a, b), agree_set(&rel, b, a));
                // Consistent with the compressed records.
                let x = agree_set(&rel, a, b).unwrap();
                let ra = rel.compressed(a).unwrap();
                let rb = rel.compressed(b).unwrap();
                for attr in 0..COLS {
                    prop_assert_eq!(x.contains(attr), ra[attr] == rb[attr]);
                }
            }
        }
    }

    #[test]
    fn batch_application_is_atomic_on_error(
        initial in proptest::collection::vec(arb_row(), 1..8),
        row in arb_row(),
    ) {
        let schema = Schema::anonymous("p", COLS);
        let mut rel = DynamicRelation::from_rows(schema, &initial).unwrap();
        let before_len = rel.len();
        let before_next = rel.next_id();
        // A batch whose last op references a bogus record must leave the
        // relation untouched even though its first ops are fine.
        let mut batch = Batch::new();
        batch.insert(row).delete(RecordId(9_999));
        prop_assert!(rel.apply_batch(&batch).is_err());
        prop_assert_eq!(rel.len(), before_len);
        prop_assert_eq!(rel.next_id(), before_next);
    }

    #[test]
    fn cluster_pruning_never_changes_verdicts_for_revalidated_fds(
        rows in proptest::collection::vec(arb_row(), 2..12),
        new_rows in proptest::collection::vec(arb_row(), 1..6),
        rhs in 0usize..COLS,
        lhs_mask in 1u32..(1 << COLS),
    ) {
        // Soundness contract of §4.2: for an FD valid over the old
        // records, validating with cluster pruning after inserts gives
        // the same verdict as validating in full.
        let lhs: AttrSet = (0..COLS).filter(|&a| a != rhs && lhs_mask >> a & 1 == 1).collect();
        if lhs.is_empty() { return Ok(()); }
        let schema = Schema::anonymous("p", COLS);
        let mut rel = DynamicRelation::from_rows(schema, &rows).unwrap();
        let fd = Fd::new(lhs, rhs);
        // Only FDs valid on the old data qualify for pruning.
        if !validate_fd(&rel, &fd, &ValidationOptions::full()).is_valid() {
            return Ok(());
        }
        let first_new = rel.next_id();
        for r in &new_rows {
            rel.insert_row(r).unwrap();
        }
        let pruned = validate_fd(&rel, &fd, &ValidationOptions::delta(first_new)).is_valid();
        let full = validate_fd(&rel, &fd, &ValidationOptions::full()).is_valid();
        prop_assert_eq!(pruned, full, "cluster pruning changed a verdict");
    }
}
