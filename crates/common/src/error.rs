//! Error type shared by the DynFD crate family.

use crate::RecordId;
use std::fmt;

/// Convenience alias for results with [`DynError`].
pub type Result<T> = std::result::Result<T, DynError>;

/// Errors surfaced by the DynFD crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynError {
    /// A change operation referenced a record id that is not (or no
    /// longer) present in the relation.
    UnknownRecord(RecordId),
    /// A batch referenced the same record id twice in a way that cannot
    /// be satisfied (e.g. two deletes of one record).
    DuplicateRecord(RecordId),
    /// A row's value count does not match the schema arity.
    ArityMismatch {
        /// Number of columns the schema defines.
        expected: usize,
        /// Number of values the offending row carried.
        actual: usize,
    },
    /// Encoding a batch's values would push a column dictionary past its
    /// configured capacity.
    DictionaryOverflow {
        /// The column whose dictionary would overflow.
        attr: usize,
        /// The configured distinct-value capacity.
        capacity: usize,
    },
    /// A row carried a null (empty-string) value in a relation whose
    /// null policy rejects them.
    NullValue {
        /// The column holding the offending null.
        attr: usize,
    },
    /// Input data could not be parsed (CSV reader, change-log reader).
    Parse(String),
    /// An I/O error, stringified (keeps the error type `Clone + Eq`).
    Io(String),
}

impl fmt::Display for DynError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynError::UnknownRecord(id) => {
                write!(f, "record {id} does not exist in the relation")
            }
            DynError::DuplicateRecord(id) => {
                write!(f, "record {id} is referenced twice in one batch")
            }
            DynError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "row has {actual} values but the schema has {expected} columns"
                )
            }
            DynError::DictionaryOverflow { attr, capacity } => {
                write!(
                    f,
                    "column {attr} dictionary would exceed its capacity of {capacity} distinct values"
                )
            }
            DynError::NullValue { attr } => {
                write!(
                    f,
                    "column {attr} holds a null value but the null policy rejects nulls"
                )
            }
            DynError::Parse(msg) => write!(f, "parse error: {msg}"),
            DynError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for DynError {}

impl From<std::io::Error> for DynError {
    fn from(e: std::io::Error) -> Self {
        DynError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert_eq!(
            DynError::UnknownRecord(RecordId(5)).to_string(),
            "record r5 does not exist in the relation"
        );
        assert_eq!(
            DynError::ArityMismatch {
                expected: 3,
                actual: 2
            }
            .to_string(),
            "row has 2 values but the schema has 3 columns"
        );
        assert!(DynError::Parse("bad quote".into())
            .to_string()
            .contains("bad quote"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DynError = io.into();
        assert!(matches!(e, DynError::Io(_)));
    }
}
