//! `dynfd-serve`: a multi-tenant concurrent serve layer over the DynFD
//! engine.
//!
//! Every tenant is one independent relation with its own WAL directory
//! and [`dynfd_persist::FdEngine`]; a sharded worker pool applies
//! interleaved batch streams with per-tenant FIFO order, bounded
//! admission (backpressure or load-shedding), and typed wire errors
//! drawn from the [`dynfd_core::DynFdError`] taxonomy. The wire format
//! is a length-prefixed binary framing over any byte stream
//! (stdin/stdout, unix socket); see [`wire`] and DESIGN.md §6g.
//!
//! The load-bearing properties — per-tenant determinism at any worker
//! count, cross-tenant isolation under faults, exactly-once response
//! discipline under wire damage, and drain-then-sync shutdown — are
//! each pinned by a dedicated test suite (`tests/serve_determinism.rs`,
//! `tests/tenant_isolation.rs`, the `wire-*` fuzz injections, and the
//! `serve-drain` crash-harness case).

#![warn(missing_docs)]

mod metrics;
mod queue;
mod server;
mod session;
mod tenant;
pub mod wire;

pub use metrics::MetricsSnapshot;
pub use server::{
    AdmissionPolicy, ApplySummary, BatchReply, OpenReport, ServeConfig, ServeEngine, ShutdownReport,
};
pub use session::{serve_connection, ConnectionReport};
pub use tenant::valid_tenant_name;

use dynfd_core::DynFdError;
use std::fmt;

/// Wire error code for a full tenant queue under the shed policy.
pub const CODE_OVERLOADED: u32 = 13;
/// Wire error code for a batch addressed to an unregistered tenant.
pub const CODE_UNKNOWN_TENANT: u32 = 14;
/// Wire error code for opening a tenant name that is already live.
pub const CODE_TENANT_EXISTS: u32 = 15;
/// Wire error code for submissions after shutdown began.
pub const CODE_SHUTTING_DOWN: u32 = 16;

/// A typed serve-layer failure. Engine failures pass through with their
/// PR 3 exit codes; the serve layer adds admission/lifecycle codes in
/// the 13–16 range (engine codes stop at 12).
#[derive(Debug)]
pub enum ServeError {
    /// The tenant's engine rejected or failed the batch.
    Engine(DynFdError),
    /// Admission refused: the tenant's queue is at capacity (shed
    /// policy only — the block policy waits instead).
    Overloaded {
        /// The tenant whose queue is full.
        tenant: String,
        /// In-flight batches at refusal time.
        depth: usize,
        /// The configured per-tenant bound.
        capacity: usize,
    },
    /// The named tenant is not registered.
    UnknownTenant(String),
    /// An `Open` named a tenant that is already live.
    TenantExists(String),
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// The request was syntactically invalid (bad frame payload or
    /// tenant name).
    Malformed(String),
}

impl ServeError {
    /// The stable wire error code (also the CLI exit code for fatal
    /// serve errors): engine errors keep their exit codes (3–12),
    /// serve-layer conditions use 13–16, malformed input maps to the
    /// parse code 4.
    pub fn wire_code(&self) -> u32 {
        match self {
            ServeError::Engine(e) => u32::from(e.exit_code()),
            ServeError::Overloaded { .. } => CODE_OVERLOADED,
            ServeError::UnknownTenant(_) => CODE_UNKNOWN_TENANT,
            ServeError::TenantExists(_) => CODE_TENANT_EXISTS,
            ServeError::ShuttingDown => CODE_SHUTTING_DOWN,
            ServeError::Malformed(_) => 4,
        }
    }

    /// Whether this is an orderly per-request rejection (the tenant and
    /// server remain healthy) rather than an internal fault.
    pub fn is_rejection(&self) -> bool {
        match self {
            ServeError::Engine(e) => e.is_rejection(),
            _ => true,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::Overloaded {
                tenant,
                depth,
                capacity,
            } => write!(
                f,
                "tenant {tenant:?} overloaded: {depth} in flight (capacity {capacity})"
            ),
            ServeError::UnknownTenant(name) => write!(f, "unknown tenant {name:?}"),
            ServeError::TenantExists(name) => write!(f, "tenant {name:?} already exists"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Malformed(detail) => write!(f, "malformed request: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_codes_extend_the_engine_taxonomy_without_collision() {
        // Engine exit codes end at 12 (SnapshotCorrupt); serve-layer
        // codes must stay clear of them so a wire code is unambiguous.
        let serve_codes = [
            CODE_OVERLOADED,
            CODE_UNKNOWN_TENANT,
            CODE_TENANT_EXISTS,
            CODE_SHUTTING_DOWN,
        ];
        assert_eq!(serve_codes, [13, 14, 15, 16]);
        assert_eq!(
            ServeError::Overloaded {
                tenant: "t".into(),
                depth: 4,
                capacity: 4
            }
            .wire_code(),
            13
        );
        assert_eq!(ServeError::UnknownTenant("t".into()).wire_code(), 14);
        assert_eq!(ServeError::TenantExists("t".into()).wire_code(), 15);
        assert_eq!(ServeError::ShuttingDown.wire_code(), 16);
        assert_eq!(ServeError::Malformed("x".into()).wire_code(), 4);
        assert_eq!(
            ServeError::Engine(DynFdError::ArityMismatch {
                expected: 3,
                actual: 2
            })
            .wire_code(),
            7
        );
        assert!(ServeError::ShuttingDown.is_rejection());
    }
}
