//! Resource governance must be deterministic and rollback-clean under
//! chaos: a hog tripping its byte quota is degraded then refused while
//! bystander covers stay bit-identical to a no-hog run; zero-deadline
//! submissions are rejected *before* apply at any worker count; and a
//! tenant evicted mid-backlog drains, persists, and re-opens to its
//! exact durable prefix.
//!
//! The oracles live in `dynfd_testkit::check_chaos` (see
//! `crates/testkit/src/chaos.rs` for the per-mode contracts). These
//! tests pin the same worker grid as `serve_determinism.rs` — 1
//! (sequential), 2 (smallest real interleaving), 8 (more workers than
//! shards) — so every scheduling hazard the pool can produce runs
//! under every governance mode.

use dynfd_testkit::{check_chaos, ChaosFault};
use std::path::PathBuf;

const SEED: u64 = 4211;

/// A scratch directory under the system temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("dynfd-gov-chaos-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn quota_storm_sheds_hog_and_preserves_bystanders() {
    for workers in [1usize, 2, 8] {
        let scratch = Scratch::new(&format!("quota-{workers}"));
        let stats = check_chaos(ChaosFault::QuotaStorm, SEED, workers, &scratch.0)
            .unwrap_or_else(|e| panic!("quota-storm at {workers} workers: {e}"));
        assert!(
            stats.quota_rejections > 0,
            "{workers} workers: hog never refused"
        );
        assert!(stats.degrades > 0, "{workers} workers: hog never degraded");
    }
}

#[test]
fn deadline_storm_rejects_before_apply() {
    for workers in [1usize, 2, 8] {
        let scratch = Scratch::new(&format!("deadline-{workers}"));
        let stats = check_chaos(ChaosFault::DeadlineStorm, SEED, workers, &scratch.0)
            .unwrap_or_else(|e| panic!("deadline-storm at {workers} workers: {e}"));
        assert!(
            stats.deadline_rejections > 0,
            "{workers} workers: no doomed submission was refused"
        );
        assert!(stats.applied > 0, "{workers} workers: real work starved");
    }
}

#[test]
fn evict_during_apply_recovers_exact_prefix() {
    for workers in [1usize, 2, 8] {
        let scratch = Scratch::new(&format!("evict-{workers}"));
        let stats = check_chaos(ChaosFault::EvictDuringApply, SEED, workers, &scratch.0)
            .unwrap_or_else(|e| panic!("evict-during-apply at {workers} workers: {e}"));
        assert_eq!(
            stats.evictions, 1,
            "{workers} workers: exactly one eviction"
        );
        assert!(
            stats.evict_rejections > 0,
            "{workers} workers: the eviction window was never observed"
        );
    }
}

#[test]
fn chaos_modes_hold_across_seeds() {
    // A small seed sweep at the interesting worker count: governance
    // determinism is a property of the protocol, not of one trace.
    for seed in [7u64, 1999, 77777] {
        for fault in ChaosFault::ALL {
            let scratch = Scratch::new(&format!("sweep-{seed}-{}", fault.name()));
            check_chaos(fault, seed, 2, &scratch.0)
                .unwrap_or_else(|e| panic!("{} at seed {seed}: {e}", fault.name()));
        }
    }
}
