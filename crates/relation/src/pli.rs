//! Position list indexes (PLIs), a.k.a. stripped partitions.

use crate::dictionary::ValueId;
use dynfd_common::RecordId;
use std::collections::BTreeMap;

/// A position list index for one column (paper Section 3.1; also known
/// as a *stripped partition* in TANE).
///
/// For every value code, the PLI holds the *cluster* of record ids whose
/// records carry that value in this column. Clusters are kept sorted
/// ascending; because record ids are assigned monotonically, an insert is
/// an O(1) push and the sortedness enables the O(1) *cluster pruning*
/// test of Section 4.2 (`cluster.last() < first id of the batch` ⇒ the
/// cluster contains no new record).
///
/// Unlike a *stripped* partition, singleton clusters are retained: the
/// map from value code to cluster is exactly the paper's inverted index,
/// which must know about currently-unique values so that a later insert
/// of the same value lands in the right cluster. Consumers that want the
/// stripped view use [`Pli::iter_non_singleton`].
///
/// Clusters are keyed in a `BTreeMap` so iteration order — and with it
/// the harness output — is deterministic across runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Pli {
    clusters: BTreeMap<ValueId, Vec<RecordId>>,
    /// Number of record ids across all clusters.
    entries: usize,
    /// Size of the largest cluster, maintained exactly (recomputed when
    /// a removal shrinks a maximal cluster). The validator's pivot
    /// heuristic reads this in O(1): the partition with the smallest
    /// maximal cluster is the most refined one and gives the cheapest
    /// group maps.
    max_len: usize,
}

impl Pli {
    /// Creates an empty PLI.
    pub fn new() -> Self {
        Pli::default()
    }

    /// Adds `rid` to the cluster of `value`, creating the cluster if the
    /// value is new to this column.
    ///
    /// Record ids must be inserted in increasing order (they are surrogate
    /// keys assigned monotonically); this is debug-asserted.
    pub fn insert(&mut self, value: ValueId, rid: RecordId) {
        let cluster = self.clusters.entry(value).or_default();
        debug_assert!(
            cluster.last().is_none_or(|&last| last < rid),
            "record ids must arrive in increasing order per cluster"
        );
        cluster.push(rid);
        self.max_len = self.max_len.max(cluster.len());
        self.entries += 1;
    }

    /// Re-adds `rid` to the cluster of `value` at its sorted position.
    ///
    /// Unlike [`Pli::insert`], this accepts ids below the cluster's
    /// current maximum: rollback of a failed batch restores records
    /// whose ids are older than surviving cluster members.
    pub fn restore(&mut self, value: ValueId, rid: RecordId) {
        let cluster = self.clusters.entry(value).or_default();
        if let Err(pos) = cluster.binary_search(&rid) {
            cluster.insert(pos, rid);
            self.max_len = self.max_len.max(cluster.len());
            self.entries += 1;
        }
    }

    /// Removes `rid` from the cluster of `value`. Empty clusters are
    /// dropped from the index entirely (paper Section 3.1).
    ///
    /// Returns `true` if the id was present.
    pub fn remove(&mut self, value: ValueId, rid: RecordId) -> bool {
        let Some(cluster) = self.clusters.get_mut(&value) else {
            return false;
        };
        let Ok(pos) = cluster.binary_search(&rid) else {
            return false;
        };
        let was_max = cluster.len() == self.max_len;
        cluster.remove(pos);
        self.entries -= 1;
        if cluster.is_empty() {
            self.clusters.remove(&value);
        }
        if was_max {
            // The shrunk cluster may no longer be maximal; recompute so
            // the field stays exact (and `PartialEq` between a rebuilt
            // and an incrementally maintained PLI stays meaningful).
            self.max_len = self.clusters.values().map(Vec::len).max().unwrap_or(0);
        }
        true
    }

    /// The cluster for `value`, if any record currently holds it.
    pub fn cluster(&self, value: ValueId) -> Option<&[RecordId]> {
        self.clusters.get(&value).map(|c| c.as_slice())
    }

    /// Number of clusters (distinct live values).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Size of the largest cluster (0 when empty). O(1): the value is
    /// maintained under inserts and removals.
    pub fn max_cluster_len(&self) -> usize {
        self.max_len
    }

    /// Total number of record ids indexed (= number of live records).
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Iterates `(value, cluster)` pairs in ascending value-code order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &[RecordId])> {
        self.clusters.iter().map(|(&v, c)| (v, c.as_slice()))
    }

    /// Iterates only clusters with two or more records — the *stripped*
    /// view relevant for FD validation (a singleton cluster can never
    /// participate in a violation).
    pub fn iter_non_singleton(&self) -> impl Iterator<Item = (ValueId, &[RecordId])> {
        self.iter().filter(|(_, c)| c.len() > 1)
    }

    /// Number of non-singleton clusters.
    pub fn non_singleton_count(&self) -> usize {
        self.clusters.values().filter(|c| c.len() > 1).count()
    }

    /// Whether the PLI indexes no records.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u64) -> RecordId {
        RecordId(i)
    }

    #[test]
    fn insert_groups_by_value() {
        let mut p = Pli::new();
        p.insert(0, rid(1));
        p.insert(0, rid(2));
        p.insert(1, rid(3));
        assert_eq!(p.cluster(0), Some(&[rid(1), rid(2)][..]));
        assert_eq!(p.cluster(1), Some(&[rid(3)][..]));
        assert_eq!(p.cluster(2), None);
        assert_eq!(p.cluster_count(), 2);
        assert_eq!(p.entry_count(), 3);
    }

    #[test]
    fn remove_drops_empty_clusters() {
        let mut p = Pli::new();
        p.insert(5, rid(1));
        p.insert(5, rid(2));
        assert!(p.remove(5, rid(1)));
        assert_eq!(p.cluster(5), Some(&[rid(2)][..]));
        assert!(p.remove(5, rid(2)));
        assert_eq!(p.cluster(5), None);
        assert_eq!(p.cluster_count(), 0);
        assert!(p.is_empty());
    }

    #[test]
    fn remove_missing_is_false() {
        let mut p = Pli::new();
        p.insert(1, rid(1));
        assert!(!p.remove(1, rid(9)));
        assert!(!p.remove(7, rid(1)));
        assert_eq!(p.entry_count(), 1);
    }

    #[test]
    fn clusters_stay_sorted_under_monotonic_inserts() {
        let mut p = Pli::new();
        for i in 0..100 {
            p.insert((i % 3) as ValueId, rid(i));
        }
        for (_, c) in p.iter() {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn non_singleton_view() {
        let mut p = Pli::new();
        p.insert(0, rid(0));
        p.insert(1, rid(1));
        p.insert(1, rid(2));
        assert_eq!(p.non_singleton_count(), 1);
        let stripped: Vec<_> = p.iter_non_singleton().collect();
        assert_eq!(stripped.len(), 1);
        assert_eq!(stripped[0].0, 1);
    }

    #[test]
    fn max_cluster_len_is_exact_under_churn() {
        let mut p = Pli::new();
        assert_eq!(p.max_cluster_len(), 0);
        p.insert(0, rid(0));
        p.insert(0, rid(1));
        p.insert(0, rid(2));
        p.insert(1, rid(3));
        p.insert(1, rid(4));
        assert_eq!(p.max_cluster_len(), 3);
        // Shrinking the maximal cluster recomputes the maximum.
        assert!(p.remove(0, rid(1)));
        assert_eq!(p.max_cluster_len(), 2);
        assert!(p.remove(0, rid(0)));
        assert!(p.remove(0, rid(2)));
        assert_eq!(p.max_cluster_len(), 2);
        assert!(p.remove(1, rid(3)));
        assert_eq!(p.max_cluster_len(), 1);
        // Restore grows it back.
        p.restore(1, rid(3));
        assert_eq!(p.max_cluster_len(), 2);
        assert!(p.remove(1, rid(3)));
        assert!(p.remove(1, rid(4)));
        assert_eq!(p.max_cluster_len(), 0);
    }

    #[test]
    fn iteration_is_value_ordered() {
        let mut p = Pli::new();
        p.insert(2, rid(0));
        p.insert(0, rid(1));
        p.insert(1, rid(2));
        let values: Vec<ValueId> = p.iter().map(|(v, _)| v).collect();
        assert_eq!(values, vec![0, 1, 2]);
    }
}
