//! End-to-end workflows over the full stack: generated paper-shaped
//! datasets streamed through DynFD with monitoring, cover persistence
//! across process "restarts", and the extension prunings running on
//! realistic change mixes.

use dynfd::common::Fd;
use dynfd::core::{DynFd, DynFdConfig, FdMonitor};
use dynfd::datagen::{DatasetProfile, GeneratedDataset, PAPER_PROFILES};
use dynfd::lattice::io::{read_cover, write_cover};

fn small_profile(name: &'static str, cols: usize, mix: (f64, f64, f64)) -> DatasetProfile {
    DatasetProfile {
        name,
        columns: cols,
        initial_rows: 60,
        changes: 400,
        insert_pct: mix.0,
        delete_pct: mix.1,
        update_pct: mix.2,
        update_columns: 2,
        seed: 0xE2E,
        bursts: 0,
        burst_len: 0,
    }
}

/// Replays a generated dataset through DynFD, asserting oracle equality
/// after every batch and returning the final instance.
fn replay(data: &GeneratedDataset, config: DynFdConfig, batch: usize) -> DynFd {
    let mut dynfd = DynFd::new(data.to_relation(), config);
    for b in data.batches(batch, None) {
        dynfd.apply_batch(&b).unwrap();
        if dynfd.relation().len() <= 120 && dynfd.relation().arity() <= 8 {
            let oracle = dynfd::staticfd::tane::discover(dynfd.relation());
            assert_eq!(dynfd.positive_cover(), &oracle, "{}", data.profile.name);
        }
    }
    dynfd
}

#[test]
fn insert_heavy_stream_like_claims() {
    let data = GeneratedDataset::generate(&small_profile("mini-claims", 6, (100.0, 0.0, 0.0)));
    let dynfd = replay(&data, DynFdConfig::default(), 40);
    assert_eq!(dynfd.relation().len(), 60 + 400);
}

#[test]
fn update_heavy_stream_like_cpu() {
    let data = GeneratedDataset::generate(&small_profile("mini-cpu", 7, (4.0, 1.0, 95.0)));
    let dynfd = replay(&data, DynFdConfig::default(), 50);
    dynfd.verify_consistency().unwrap();
}

#[test]
fn mixed_stream_with_update_pruning_extension() {
    let data = GeneratedDataset::generate(&small_profile("mini-mixed", 6, (30.0, 10.0, 60.0)));
    let with_ext = replay(
        &data,
        DynFdConfig {
            update_pruning: true,
            ..DynFdConfig::default()
        },
        25,
    );
    let without = replay(&data, DynFdConfig::default(), 25);
    assert_eq!(with_ext.positive_cover(), without.positive_cover());
    assert_eq!(with_ext.negative_cover(), without.negative_cover());
}

#[test]
fn monitor_over_a_generated_stream() {
    let data = GeneratedDataset::generate(&small_profile("mini-monitor", 6, (20.0, 20.0, 60.0)));
    let mut dynfd = DynFd::new(data.to_relation(), DynFdConfig::default());
    let mut monitor = FdMonitor::new(&dynfd.minimal_fds());
    let batches = data.batches(25, None);
    let n_batches = batches.len() as u64;
    for b in &batches {
        let result = dynfd.apply_batch(b).unwrap();
        let report = monitor.observe(&result);
        // Report contents mirror the batch delta exactly.
        assert_eq!(report.broken.len(), result.removed.len());
        assert_eq!(report.appeared.len(), result.added.len());
    }
    assert_eq!(monitor.batches_observed(), n_batches);
    // Every currently-held FD must be visible to the age query, and the
    // robust set must be a subset of the current cover.
    let current: Vec<Fd> = dynfd.minimal_fds();
    for fd in &current {
        assert!(monitor.age(fd).is_some(), "{fd:?} held but not tracked");
        assert!((0.0..=1.0).contains(&monitor.stability(fd)));
    }
    for fd in monitor.robust_fds(n_batches) {
        assert!(
            current.contains(&fd),
            "robust FD {fd:?} must currently hold"
        );
    }
}

#[test]
fn cover_persistence_roundtrip_across_restart() {
    // Process A: profile statically, persist the cover.
    let data = GeneratedDataset::generate(&small_profile("mini-persist", 6, (50.0, 10.0, 40.0)));
    let rel_a = data.to_relation();
    let fds = dynfd::staticfd::hyfd::discover(&rel_a);
    let persisted = write_cover(&fds, &data.schema);

    // Process B: bootstrap DynFD from the persisted cover (no
    // re-profiling) and maintain.
    let restored = read_cover(&persisted, &data.schema).unwrap();
    assert_eq!(restored, fds);
    let mut dynfd = DynFd::with_cover(data.to_relation(), restored, DynFdConfig::default());
    for b in data.batches(50, Some(200)) {
        dynfd.apply_batch(&b).unwrap();
    }
    dynfd.verify_consistency().unwrap();
    let oracle = dynfd::staticfd::tane::discover(dynfd.relation());
    assert_eq!(dynfd.positive_cover(), &oracle);
}

#[test]
fn paper_profiles_smoke_end_to_end() {
    // Every Table 3 profile, heavily scaled down, streamed end to end
    // with internal invariants checked at the end.
    for p in PAPER_PROFILES {
        let mut small = p.scaled(0.01);
        small.initial_rows = small.initial_rows.min(150);
        small.changes = small.changes.min(300);
        let data = GeneratedDataset::generate(&small);
        let mut dynfd = DynFd::new(data.to_relation(), DynFdConfig::default());
        let mut total_changes = 0usize;
        for b in data.batches(60, None) {
            total_changes += b.len();
            dynfd
                .apply_batch(&b)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
        assert_eq!(total_changes, small.changes, "{}", p.name);
        // Invariant check is exponential in arity; skip the 83-column actor.
        if small.columns <= 20 {
            dynfd
                .verify_consistency()
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }
}

#[test]
fn throughput_metrics_accumulate_sensibly() {
    let data = GeneratedDataset::generate(&small_profile("mini-metrics", 6, (40.0, 20.0, 40.0)));
    let mut dynfd = DynFd::new(data.to_relation(), DynFdConfig::default());
    let mut inserts = 0usize;
    let mut deletes = 0usize;
    for b in data.batches(40, None) {
        let r = dynfd.apply_batch(&b).unwrap();
        inserts += r.metrics.inserts;
        deletes += r.metrics.deletes;
    }
    let (ins_pct, del_pct, upd_pct) = data.change_mix();
    let n = data.changes.len() as f64;
    // Updates count once as insert and once as delete; rows inserted and
    // then deleted/updated *within the same batch* net out of both
    // counters, so the mix only bounds them from above.
    let max_inserts = (ins_pct + upd_pct) / 100.0 * n + 1.0;
    let max_deletes = (del_pct + upd_pct) / 100.0 * n + 1.0;
    assert!(inserts as f64 <= max_inserts, "{inserts} > {max_inserts}");
    assert!(deletes as f64 <= max_deletes, "{deletes} > {max_deletes}");
    assert!(inserts > 0 && deletes > 0);
    // The exact identity: net insertions equal the relation's growth.
    assert_eq!(
        inserts as i64 - deletes as i64,
        dynfd.relation().len() as i64 - data.initial_rows.len() as i64
    );
}
