//! Property tests for the FD prefix tree: `FdTree` must behave exactly
//! like the obviously-correct flat-scan `NaiveCover` under arbitrary
//! operation sequences, and the cover algebra (inversion / induction)
//! must satisfy its round-trip laws.

use dynfd::common::{AttrSet, Fd};
use dynfd::lattice::{induce_from_negative_cover, invert_positive_cover, FdTree, NaiveCover};
use proptest::prelude::*;

const ARITY: usize = 6;

/// A random non-trivial FD over `ARITY` attributes.
fn arb_fd() -> impl Strategy<Value = Fd> {
    (0usize..ARITY, 0u32..(1 << ARITY)).prop_map(|(rhs, mask)| {
        let lhs: AttrSet = (0..ARITY)
            .filter(|&a| a != rhs && mask >> a & 1 == 1)
            .collect();
        Fd::new(lhs, rhs)
    })
}

#[derive(Clone, Debug)]
enum Op {
    Add(Fd),
    Remove(Fd),
    AddMinimal(Fd),
    AddMaximal(Fd),
    AddMaximalEvicting(Fd),
    RemoveSpecializations(Fd),
    RemoveGeneralizations(Fd),
}

fn arb_op() -> impl Strategy<Value = Op> {
    arb_fd().prop_flat_map(|fd| {
        (0u8..7).prop_map(move |k| match k {
            0 => Op::Add(fd),
            1 => Op::Remove(fd),
            2 => Op::AddMinimal(fd),
            3 => Op::AddMaximal(fd),
            4 => Op::AddMaximalEvicting(fd),
            5 => Op::RemoveSpecializations(fd),
            _ => Op::RemoveGeneralizations(fd),
        })
    })
}

/// Naive mirror of `add_minimal`.
fn naive_add_minimal(c: &mut NaiveCover, fd: Fd) -> bool {
    if c.contains_generalization(fd.lhs, fd.rhs) {
        return false;
    }
    c.add(fd.lhs, fd.rhs)
}

/// Naive mirror of `add_maximal`.
fn naive_add_maximal(c: &mut NaiveCover, fd: Fd) -> bool {
    if c.contains_specialization(fd.lhs, fd.rhs) {
        return false;
    }
    c.add(fd.lhs, fd.rhs)
}

/// Naive mirror of `add_maximal_evicting`.
fn naive_add_maximal_evicting(c: &mut NaiveCover, fd: Fd) -> bool {
    if c.contains_specialization(fd.lhs, fd.rhs) {
        return false;
    }
    c.remove_generalizations(fd.lhs, fd.rhs);
    c.add(fd.lhs, fd.rhs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fdtree_equals_naive_model(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let mut tree = FdTree::new();
        let mut naive = NaiveCover::new();
        for op in ops {
            match op {
                Op::Add(fd) => {
                    prop_assert_eq!(tree.add(fd.lhs, fd.rhs), naive.add(fd.lhs, fd.rhs));
                }
                Op::Remove(fd) => {
                    prop_assert_eq!(tree.remove(fd.lhs, fd.rhs), naive.remove(fd.lhs, fd.rhs));
                }
                Op::AddMinimal(fd) => {
                    prop_assert_eq!(
                        tree.add_minimal(fd.lhs, fd.rhs),
                        naive_add_minimal(&mut naive, fd)
                    );
                }
                Op::AddMaximal(fd) => {
                    prop_assert_eq!(
                        tree.add_maximal(fd.lhs, fd.rhs),
                        naive_add_maximal(&mut naive, fd)
                    );
                }
                Op::AddMaximalEvicting(fd) => {
                    prop_assert_eq!(
                        tree.add_maximal_evicting(fd.lhs, fd.rhs),
                        naive_add_maximal_evicting(&mut naive, fd)
                    );
                }
                Op::RemoveSpecializations(fd) => {
                    let mut a = tree.remove_specializations(fd.lhs, fd.rhs);
                    let mut b = naive.remove_specializations(fd.lhs, fd.rhs);
                    a.sort();
                    b.sort();
                    prop_assert_eq!(a, b);
                }
                Op::RemoveGeneralizations(fd) => {
                    let mut a = tree.remove_generalizations(fd.lhs, fd.rhs);
                    let mut b = naive.remove_generalizations(fd.lhs, fd.rhs);
                    a.sort();
                    b.sort();
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(tree.len(), naive.len());
        }
        // Final state identical (FdTree enumerates in path order,
        // NaiveCover in bitset order — compare as sets).
        let mut a = tree.all_fds();
        let mut b = naive.all_fds();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        // Level views agree.
        for level in 0..=ARITY {
            let mut a = tree.get_level(level);
            let mut b = naive.get_level(level);
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn queries_agree_with_naive_model(
        fds in proptest::collection::vec(arb_fd(), 0..40),
        probes in proptest::collection::vec(arb_fd(), 1..20),
    ) {
        let tree: FdTree = fds.iter().copied().collect();
        let naive: NaiveCover = fds.iter().copied().collect();
        for p in probes {
            prop_assert_eq!(
                tree.contains(p.lhs, p.rhs),
                naive.contains(p.lhs, p.rhs)
            );
            prop_assert_eq!(
                tree.contains_generalization(p.lhs, p.rhs),
                naive.contains_generalization(p.lhs, p.rhs)
            );
            prop_assert_eq!(
                tree.contains_specialization(p.lhs, p.rhs),
                naive.contains_specialization(p.lhs, p.rhs)
            );
            let mut a = tree.get_generalizations(p.lhs, p.rhs);
            let mut b = naive.get_generalizations(p.lhs, p.rhs);
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
            let mut a = tree.get_specializations(p.lhs, p.rhs);
            let mut b = naive.get_specializations(p.lhs, p.rhs);
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
            // find_specialization returns a member of get_specializations.
            match tree.find_specialization(p.lhs, p.rhs) {
                Some(w) => prop_assert!(naive.get_specializations(p.lhs, p.rhs).contains(&w)),
                None => prop_assert!(!naive.contains_specialization(p.lhs, p.rhs)),
            }
        }
    }

    #[test]
    fn inversion_induction_roundtrip(fds in proptest::collection::vec(arb_fd(), 0..12)) {
        // Build an antichain positive cover (the minimal-FD insertion
        // discipline DynFD uses: skip if implied, evict specializations).
        let mut pos = FdTree::new();
        for fd in fds {
            if !pos.contains_generalization(fd.lhs, fd.rhs) {
                pos.remove_specializations(fd.lhs, fd.rhs);
                pos.add(fd.lhs, fd.rhs);
            }
        }
        prop_assert!(pos.is_antichain());
        let neg = invert_positive_cover(&pos, ARITY);
        prop_assert!(neg.is_antichain());
        let back = induce_from_negative_cover(&neg, ARITY);
        prop_assert_eq!(&back, &pos, "induce(invert(pos)) must equal pos");

        // Semantics: a candidate is implied by pos iff it has no
        // specialization in neg.
        for rhs in 0..ARITY {
            for mask in 0..(1u32 << ARITY) {
                let lhs: AttrSet =
                    (0..ARITY).filter(|&a| a != rhs && mask >> a & 1 == 1).collect();
                if lhs.contains(rhs) { continue; }
                let implied = pos.contains_generalization(lhs, rhs);
                let refuted = neg.contains_specialization(lhs, rhs);
                prop_assert_eq!(implied, !refuted, "lhs {:?} rhs {}", lhs, rhs);
            }
        }
    }
}

#[test]
fn add_minimal_never_breaks_antichain_regression() {
    // Deterministic companion to the roundtrip property: interleaved
    // add_minimal calls always leave an antichain when specializations
    // are cleaned, mirroring how DynFD maintains the positive cover.
    let mut pos = FdTree::new();
    let fd1 = Fd::new([1usize, 2].into_iter().collect::<AttrSet>(), 0);
    let fd2 = Fd::new(AttrSet::single(1), 0);
    assert!(pos.add_minimal(fd1.lhs, fd1.rhs));
    // Adding the generalization afterwards: DynFD always removes
    // specializations first (Algorithm 6 lines 10-12).
    pos.remove_specializations(fd2.lhs, fd2.rhs);
    assert!(pos.add_minimal(fd2.lhs, fd2.rhs));
    assert!(pos.is_antichain());
    assert_eq!(pos.len(), 1);
}
