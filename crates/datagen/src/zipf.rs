//! A small Zipf sampler.
//!
//! Real categorical columns (city names, disease categories, label
//! names) are heavily skewed; uniform sampling would produce PLIs with
//! unrealistically even cluster sizes and understate the value of
//! cluster pruning. A precomputed-CDF Zipf keeps sampling O(log k).

use rand::Rng;

/// Zipf distribution over `{0, 1, ..., k-1}` with exponent `s`
/// (probability of rank `r` proportional to `1 / (r+1)^s`).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `k` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `s < 0`.
    pub fn new(k: usize, s: f64) -> Self {
        assert!(k > 0, "zipf needs at least one rank");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(k);
        let mut acc = 0.0;
        for r in 0..k {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over a single rank.
    pub fn is_empty(&self) -> bool {
        false // k > 0 is guaranteed by the constructor
    }

    /// Samples a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn samples_are_in_range_and_skewed() {
        let z = Zipf::new(10, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate rank 9 heavily under s = 1.
        assert!(counts[0] > counts[9] * 3, "counts: {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn zero_exponent_is_uniformish() {
        let z = Zipf::new(4, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (1600..2400).contains(&c),
                "uniform-ish expected: {counts:?}"
            );
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.5);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let z = Zipf::new(50, 1.2);
        let a: Vec<usize> = (0..20)
            .scan(ChaCha8Rng::seed_from_u64(3), |r, _| Some(z.sample(r)))
            .collect();
        let b: Vec<usize> = (0..20)
            .scan(ChaCha8Rng::seed_from_u64(3), |r, _| Some(z.sample(r)))
            .collect();
        assert_eq!(a, b);
    }
}
