//! Microbenchmarks for the PLI-based validator — the inner loop of both
//! maintenance phases — including the effect of cluster pruning (§4.2)
//! and the sequential-vs-parallel sweep of the PR 1 validation engine.
//!
//! The sweep crosses worker count (1/2/4/8) with LHS arity (1/2/3) and
//! cluster skew (uniform small clusters vs. one giant cluster) over the
//! same job list the insert phase would emit for a lattice level. The
//! results land in `BENCH_pr1.json` at the workspace root.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use dynfd_common::{AttrSet, Schema};
use dynfd_relation::{validate, validate_many, DynamicRelation, ValidationJob, ValidationOptions};

/// 5,000 rows, 6 columns; column 5 nearly mirrors column 0 so the
/// validated FD is *almost* valid — the worst case for early
/// termination.
fn build_relation() -> DynamicRelation {
    let rows: Vec<Vec<String>> = (0..5_000)
        .map(|i| {
            vec![
                format!("g{}", i % 50),
                format!("h{}", i % 97),
                format!("p{}", i % 11),
                format!("q{}", i % 7),
                format!("u{i}"),
                format!("m{}", if i == 4_999 { 999 } else { i % 50 }),
            ]
        })
        .collect();
    DynamicRelation::from_rows(Schema::anonymous("bench", 6), &rows).unwrap()
}

/// A relation with controllable cluster skew on the pivot column:
/// `skewed = false` gives ~50 evenly sized clusters, `skewed = true`
/// puts 60 % of all rows into one giant cluster (the load-balancing
/// stress case for the work-stealing shards).
fn build_skewed_relation(skewed: bool) -> DynamicRelation {
    let rows: Vec<Vec<String>> = (0..5_000)
        .map(|i| {
            let pivot = if skewed && i % 5 < 3 {
                "hot".to_string()
            } else {
                format!("g{}", i % 50)
            };
            vec![
                pivot,
                format!("h{}", i % 97),
                format!("p{}", i % 11),
                format!("q{}", i % 7),
                format!("r{}", i % 13),
                format!("m{}", i % 49),
            ]
        })
        .collect();
    DynamicRelation::from_rows(Schema::anonymous("skew", 6), &rows).unwrap()
}

/// All `lhs -> rhs` validation jobs of the given LHS arity over a
/// 6-attribute schema — the shape of one lattice level.
fn level_jobs(arity: usize) -> Vec<ValidationJob> {
    let n = 6usize;
    let mut jobs = Vec::new();
    let mut emit = |lhs: AttrSet| {
        let rhs: AttrSet = (0..n).filter(|r| !lhs.contains(*r)).collect();
        jobs.push((lhs, rhs));
    };
    match arity {
        1 => (0..n).for_each(|a| emit(AttrSet::single(a))),
        2 => {
            for a in 0..n {
                for b in (a + 1)..n {
                    emit([a, b].into_iter().collect());
                }
            }
        }
        _ => {
            for a in 0..n {
                for b in (a + 1)..n {
                    for c in (b + 1)..n {
                        emit([a, b, c].into_iter().collect());
                    }
                }
            }
        }
    }
    jobs
}

fn bench_validation(c: &mut Criterion) {
    c.sample_size(dynfd_bench::bench_samples(15));
    let rel = build_relation();
    let lhs: AttrSet = [0usize, 1].into_iter().collect();
    let rhs: AttrSet = [2usize, 3, 5].into_iter().collect();
    let full = ValidationOptions::full();

    c.bench_function("validate_3rhs_5k_rows_full", |b| {
        b.iter(|| {
            validate(&rel, black_box(lhs), black_box(rhs), &full)
                .outcomes
                .len()
        })
    });

    // Cluster pruning with a watermark near the end: almost everything
    // skipped — the common case in the insert phase.
    let delta = ValidationOptions::delta(dynfd_common::RecordId(4_990));
    c.bench_function("validate_3rhs_5k_rows_cluster_pruned", |b| {
        b.iter(|| {
            validate(&rel, black_box(lhs), black_box(rhs), &delta)
                .outcomes
                .len()
        })
    });

    // Single-column LHS: the delete-phase shape.
    let single_lhs = AttrSet::single(0);
    c.bench_function("validate_1lhs_5k_rows_full", |b| {
        b.iter(|| {
            validate(
                &rel,
                black_box(single_lhs),
                black_box(AttrSet::single(5)),
                &full,
            )
            .outcomes
            .len()
        })
    });
}

fn bench_parallel_sweep(c: &mut Criterion) {
    c.sample_size(dynfd_bench::bench_samples(15));
    let full = ValidationOptions::full();
    for skewed in [false, true] {
        let rel = build_skewed_relation(skewed);
        let skew_label = if skewed { "hot_cluster" } else { "uniform" };
        for arity in [1usize, 2, 3] {
            let jobs = level_jobs(arity);
            let mut group = c.benchmark_group(format!("validate_level/{skew_label}/arity{arity}"));
            for threads in [1usize, 2, 4, 8] {
                group.bench_with_input(
                    BenchmarkId::new("threads", threads),
                    &threads,
                    |b, &threads| {
                        b.iter(|| {
                            validate_many(&rel, black_box(&jobs), &full, threads)
                                .iter()
                                .map(|r| r.outcomes.len())
                                .sum::<usize>()
                        })
                    },
                );
            }
            group.finish();
        }
    }
}

criterion_group!(benches, bench_validation, bench_parallel_sweep);

fn main() {
    // Capture the machine width before any benchmark runs: the
    // `available_cores` context and the per-row `oversubscribed`
    // annotations must reflect the parallelism the samples actually
    // saw, not whatever the scheduler reports at report-write time
    // (cgroup quotas can shrink mid-run under CI contention).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    benches();
    criterion::write_json_report(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr1.json"),
        &[
            ("bench", "validator parallel sweep".into()),
            ("rows", 5_000usize.into()),
            ("available_cores", cores.into()),
        ],
        &|r| {
            // Rows of the thread sweep end in `threads/N`; when N
            // exceeds the machine's cores the timing measures contention,
            // not scaling, so mark it for downstream readers.
            match criterion::requested_threads(&r.id) {
                Some(n) if n > cores => vec![("oversubscribed".into(), true.into())],
                _ => Vec::new(),
            }
        },
    )
    .expect("write BENCH_pr1.json");
}
