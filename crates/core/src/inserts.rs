//! Insert handling — the lattice-based FD validation of Algorithm 2.
//!
//! Inserts can only *invalidate* FDs (Definition 1.1: violations are
//! introduced, never removed), so the positive cover is the right place
//! to look. The traversal starts at the most general minimal FDs and
//! descends: an invalidated FD moves to the negative cover and its
//! minimal specializations become the new candidates, automatically
//! validated on the next level. Two accelerations apply:
//!
//! * **cluster pruning** (§4.2): only PLI clusters containing at least
//!   one newly inserted record can hide a new violation — sound because
//!   every validated FD held over the pre-batch records;
//! * **violation search** (§4.3): when >10 % of a level invalidates,
//!   per-candidate validation is losing to the churn, and cheap record
//!   pair comparisons find the remaining violations faster.

use crate::{BatchMetrics, DynFd};
use dynfd_common::{AttrSet, Fd, RecordId};
use dynfd_relation::{validate, AppliedBatch, ValidationOptions};
use std::collections::BTreeMap;

impl DynFd {
    /// Processes the batch's inserts (Algorithm 2).
    pub(crate) fn process_inserts(&mut self, applied: &AppliedBatch, metrics: &mut BatchMetrics) {
        let arity = self.rel.arity();
        let first_new = applied
            .first_new_id
            .expect("insert phase only runs when the batch inserted records");
        let opts = if self.config.cluster_pruning {
            ValidationOptions::delta(first_new)
        } else {
            ValidationOptions::full()
        };

        let mut level = 0usize;
        while self.fds.max_level().is_some_and(|max| level <= max) {
            // Lines 2-5: validate the level, collecting invalid FDs.
            let snapshot = self.fds.get_level(level);
            let mut groups: BTreeMap<AttrSet, AttrSet> = BTreeMap::new();
            for fd in &snapshot {
                groups
                    .entry(fd.lhs)
                    .or_insert_with(AttrSet::empty)
                    .insert(fd.rhs);
            }
            let mut total = 0usize;
            let mut invalid: Vec<(Fd, (RecordId, RecordId))> = Vec::new();
            for (lhs, rhs_set) in groups {
                // §8 extension, key-constraint pruning: a declared key in
                // the LHS makes the FD unfalsifiable — skip it outright.
                if !lhs.is_disjoint(&self.config.known_keys) {
                    metrics.skipped_by_key_constraint += rhs_set.len();
                    continue;
                }
                // A violation search triggered at an earlier level may
                // have evicted parts of this snapshot already.
                let mut live: AttrSet = rhs_set
                    .iter()
                    .filter(|&r| self.fds.contains(lhs, r))
                    .collect();
                // §8 extension, update pruning: in a pure-update batch,
                // candidates none of whose attributes changed in any
                // update cannot change status.
                if self.config.update_pruning
                    && applied.update_only
                    && lhs.is_disjoint(&applied.touched_attrs)
                {
                    let affected = live.intersect(&applied.touched_attrs);
                    metrics.skipped_by_update_pruning += live.len() - affected.len();
                    live = affected;
                }
                if live.is_empty() {
                    continue;
                }
                metrics.fd_validations += 1;
                total += live.len();
                let result = validate(&self.rel, lhs, live, &opts);
                metrics.clusters_pruned += result.stats.clusters_pruned;
                metrics.clusters_visited += result.stats.clusters_visited;
                for (r, a, b) in result.violations() {
                    invalid.push((Fd::new(lhs, r), (a, b)));
                }
            }

            // Lines 6-15: demote invalid FDs and specialize them.
            let invalid_count = invalid.len();
            for (fd, pair) in invalid {
                self.fds.remove(fd.lhs, fd.rhs);
                // The FD was valid a moment ago, so as a non-FD it is
                // inevitably maximal; generalizations in the negative
                // cover stop being maximal and are evicted (lines 8-9).
                if self.non_fds.add_maximal_evicting(fd.lhs, fd.rhs)
                    && self.config.validation_pruning
                {
                    self.violations.attach(fd, pair);
                }
                // Lines 10-15: minimal direct specializations.
                for r in 0..arity {
                    if r != fd.rhs && !fd.lhs.contains(r) {
                        self.fds.add_minimal(fd.lhs.with(r), fd.rhs);
                    }
                }
            }

            // Lines 16-17: progressive violation search when the lattice
            // traversal became inefficient.
            if total > 0 && invalid_count as f64 / total as f64 > self.config.inefficiency_threshold
            {
                self.violation_search(&applied.inserted, metrics);
            }
            level += 1;
        }
    }
}
