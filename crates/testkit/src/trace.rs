//! Seeded trace generation.
//!
//! A [`Trace`] is a fully self-contained fuzzing input: a schema, the
//! initial rows, a script of change operations, and a batch size. The
//! script references records *positionally* ([`TraceOp::DeleteNth`] /
//! [`TraceOp::UpdateNth`] index into the list of live records modulo its
//! length), which keeps every subsequence of a trace replayable — the
//! property the delta-debugging shrinker relies on.
//!
//! Generation layers on `dynfd-datagen`: each [`TraceProfile`] builds a
//! [`TableSpec`] whose column models shape the FD landscape (Zipf-skewed
//! categoricals, derived hierarchy chains, nullable columns), and rows
//! for inserts and updates come from that spec. Everything is seeded
//! ChaCha8, so a `(seed, case)` pair always regenerates the identical
//! trace, bit for bit.

use dynfd_common::{RecordId, Schema};
use dynfd_datagen::{ColumnModel, DatasetProfile, TableSpec};
use dynfd_relation::{Batch, ChangeOp, DynamicRelation};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The adversarial data shapes the generator can produce. Each profile
/// targets a different stress point of the maintenance algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceProfile {
    /// Independent low-cardinality categoricals — many accidental FDs
    /// that appear and disappear under churn.
    Uniform,
    /// A datagen-style hierarchy table (key, Zipf root, derived chains,
    /// noisy correlated leaves) — the realistic FD landscape.
    ZipfSkewed,
    /// Tiny value domains, heavily skewed: most rows are duplicates of
    /// each other, PLI clusters are huge, and covers sit near the top of
    /// the lattice.
    AllDuplicates,
    /// Half the columns are unique keys — covers collapse to key FDs and
    /// the negative cover hugs the bottom of the lattice.
    KeyHeavy,
    /// Most values are the null placeholder (empty string) — one giant
    /// cluster per column, the worst case for cluster pruning and the
    /// violation search.
    NullHeavy,
    /// Heavy delete/reinsert interleaving over a modest relation: waves
    /// of deletes immediately followed by waves of inserts, so arena
    /// slots are freed and re-occupied constantly. Stresses the columnar
    /// store's free-list reuse, generation bookkeeping, and the
    /// rid-sorted cluster order under slot recycling.
    SlotChurn,
}

impl TraceProfile {
    /// All profiles, in the order the fuzz binary cycles through them.
    pub const ALL: [TraceProfile; 6] = [
        TraceProfile::Uniform,
        TraceProfile::ZipfSkewed,
        TraceProfile::AllDuplicates,
        TraceProfile::KeyHeavy,
        TraceProfile::NullHeavy,
        TraceProfile::SlotChurn,
    ];

    /// The profile's name as used in repro files and reports.
    pub fn name(self) -> &'static str {
        match self {
            TraceProfile::Uniform => "uniform",
            TraceProfile::ZipfSkewed => "zipf-skewed",
            TraceProfile::AllDuplicates => "all-duplicates",
            TraceProfile::KeyHeavy => "key-heavy",
            TraceProfile::NullHeavy => "null-heavy",
            TraceProfile::SlotChurn => "slot-churn",
        }
    }

    /// Looks a profile up by its [`TraceProfile::name`].
    pub fn by_name(name: &str) -> Option<TraceProfile> {
        TraceProfile::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Builds the datagen [`TableSpec`] for a `width`-column relation of
    /// this shape (deterministic in `seed`).
    pub fn table_spec(self, width: usize, seed: u64) -> TableSpec {
        assert!(width >= 1, "trace relations need at least one column");
        match self {
            TraceProfile::Uniform => {
                let cols = (0..width)
                    .map(|i| ColumnModel::Categorical {
                        cardinality: 2 + i % 3,
                        skew: 0.0,
                    })
                    .collect();
                TableSpec::new("uniform", cols)
            }
            TraceProfile::ZipfSkewed => {
                // Reuse datagen's hierarchy-chain machinery wholesale:
                // only the shape parameters matter here.
                DatasetProfile {
                    name: "zipf-skewed",
                    columns: width,
                    initial_rows: 32,
                    changes: 0,
                    insert_pct: 100.0,
                    delete_pct: 0.0,
                    update_pct: 0.0,
                    update_columns: 1,
                    seed,
                    bursts: 0,
                    burst_len: 0,
                }
                .table_spec()
            }
            TraceProfile::AllDuplicates => {
                let cols = (0..width)
                    .map(|i| {
                        if i % 3 == 2 {
                            // Constant columns: ∅ -> c holds structurally.
                            ColumnModel::Categorical {
                                cardinality: 1,
                                skew: 0.0,
                            }
                        } else {
                            ColumnModel::Categorical {
                                cardinality: 2,
                                skew: 1.5,
                            }
                        }
                    })
                    .collect();
                TableSpec::new("all-duplicates", cols)
            }
            TraceProfile::KeyHeavy => {
                let cols = (0..width)
                    .map(|i| {
                        if i % 2 == 0 {
                            ColumnModel::Key
                        } else {
                            ColumnModel::Categorical {
                                cardinality: 3,
                                skew: 1.0,
                            }
                        }
                    })
                    .collect();
                TableSpec::new("key-heavy", cols)
            }
            TraceProfile::NullHeavy => {
                let cols = (0..width)
                    .map(|i| {
                        if i == 0 {
                            // One denser column so the relation is not all
                            // nulls.
                            ColumnModel::Categorical {
                                cardinality: 4,
                                skew: 1.0,
                            }
                        } else {
                            ColumnModel::Nullable {
                                cardinality: 3,
                                skew: 1.0,
                                null_rate: 0.6,
                            }
                        }
                    })
                    .collect();
                TableSpec::new("null-heavy", cols)
            }
            TraceProfile::SlotChurn => {
                // One key column plus small-domain categoricals: deleted
                // and reinserted rows frequently land in the *same* PLI
                // clusters their predecessors vacated, so a stale slot
                // surviving anywhere shows up as a wrong verdict.
                let cols = (0..width)
                    .map(|i| match i % 4 {
                        0 => ColumnModel::Key,
                        1 => ColumnModel::Categorical {
                            cardinality: 2,
                            skew: 1.0,
                        },
                        2 => ColumnModel::Categorical {
                            cardinality: 4,
                            skew: 0.5,
                        },
                        _ => ColumnModel::Categorical {
                            cardinality: 3,
                            skew: 0.0,
                        },
                    })
                    .collect();
                TableSpec::new("slot-churn", cols)
            }
        }
    }
}

/// One scripted change operation. Delete/update targets are *positions*
/// into the live-record list (modulo its length), not record ids, so any
/// subsequence of a script remains replayable — see the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Insert a new row.
    Insert(Vec<String>),
    /// Delete the record at position `n % live.len()` of the live list.
    /// A no-op while the relation is empty.
    DeleteNth(usize),
    /// Update the record at position `n % live.len()` to the given row.
    /// A no-op while the relation is empty.
    UpdateNth(usize, Vec<String>),
}

/// A self-contained, deterministic fuzzing input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The seed the trace was generated from (0 for hand-built traces).
    pub seed: u64,
    /// Generator profile name (informational; hand-built traces use
    /// `"manual"`).
    pub profile: String,
    /// The relation schema.
    pub schema: Schema,
    /// Initial tuples (record ids `0..initial_rows.len()`).
    pub initial_rows: Vec<Vec<String>>,
    /// The change script, in order.
    pub ops: Vec<TraceOp>,
    /// Ops per batch when replaying (the last batch may be shorter).
    pub batch_size: usize,
}

impl Trace {
    /// Generates the trace for fuzz case `case` of stream `seed`: the
    /// profile cycles through [`TraceProfile::ALL`] and every size
    /// parameter (width 2–12, rows, ops, batch size) is drawn from a
    /// ChaCha8 stream keyed on `(seed, case)`.
    pub fn for_case(seed: u64, case: u64) -> Trace {
        let profile = TraceProfile::ALL[(case % TraceProfile::ALL.len() as u64) as usize];
        // SplitMix-style key mixing so nearby (seed, case) pairs land on
        // unrelated streams.
        let mut key = seed ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        key ^= key >> 30;
        key = key.wrapping_mul(0xBF58476D1CE4E5B9);
        Trace::generate(profile, key)
    }

    /// Generates a trace of the given profile (deterministic in `seed`).
    ///
    /// Wide relations (9–12 columns) get fewer rows and ops: the
    /// differential oracles re-discover from scratch after every batch,
    /// and their lattices grow exponentially with width.
    pub fn generate(profile: TraceProfile, seed: u64) -> Trace {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let wide = rng.gen_bool(0.2);
        let width = if wide {
            rng.gen_range(9usize..=12)
        } else {
            rng.gen_range(2usize..=8)
        };
        let initial = if wide {
            rng.gen_range(5usize..=10)
        } else {
            rng.gen_range(8usize..=24)
        };
        let op_count = if wide {
            rng.gen_range(6usize..=10)
        } else {
            rng.gen_range(10usize..=28)
        };
        let batch_size = rng.gen_range(1usize..=5);

        let spec = profile.table_spec(width, seed);
        let mut key_counter = 0u64;
        let initial_rows: Vec<Vec<String>> = (0..initial)
            .map(|_| spec.generate_row(&mut rng, &mut key_counter))
            .collect();

        let mut ops = Vec::with_capacity(op_count);
        if profile == TraceProfile::SlotChurn {
            // Alternating delete and insert waves: every delete wave
            // pushes slots onto the free-list, the following insert wave
            // pops them back off (LIFO), so the same arena slots are
            // recycled across many generations within one trace.
            let mut deleting = true;
            while ops.len() < op_count {
                let wave = rng.gen_range(2usize..=4).min(op_count - ops.len());
                for _ in 0..wave {
                    if deleting {
                        ops.push(TraceOp::DeleteNth(rng.gen_range(0usize..64)));
                    } else if rng.gen_bool(0.15) {
                        // A few updates keep the delete+insert-in-one-op
                        // path (deferred deletes, slot handoff) hot too.
                        let row = spec.generate_row(&mut rng, &mut key_counter);
                        ops.push(TraceOp::UpdateNth(rng.gen_range(0usize..64), row));
                    } else {
                        let row = spec.generate_row(&mut rng, &mut key_counter);
                        ops.push(TraceOp::Insert(row));
                    }
                }
                deleting = !deleting;
            }
            return Trace {
                seed,
                profile: profile.name().to_string(),
                schema: spec.schema(),
                initial_rows,
                ops,
                batch_size: batch_size.max(1),
            };
        }
        for _ in 0..op_count {
            match rng.gen_range(0u32..10) {
                // 40 % inserts, and occasionally an exact duplicate of an
                // earlier insert — duplicates are where minimality bugs
                // hide.
                0..=3 => {
                    let dup = !ops.is_empty() && rng.gen_bool(0.15);
                    let row = if dup {
                        let prior: Vec<&Vec<String>> = ops
                            .iter()
                            .filter_map(|op| match op {
                                TraceOp::Insert(r) | TraceOp::UpdateNth(_, r) => Some(r),
                                TraceOp::DeleteNth(_) => None,
                            })
                            .collect();
                        if prior.is_empty() {
                            spec.generate_row(&mut rng, &mut key_counter)
                        } else {
                            prior[rng.gen_range(0..prior.len())].clone()
                        }
                    } else {
                        spec.generate_row(&mut rng, &mut key_counter)
                    };
                    ops.push(TraceOp::Insert(row));
                }
                // 30 % deletes.
                4..=6 => ops.push(TraceOp::DeleteNth(rng.gen_range(0usize..64))),
                // 30 % updates.
                _ => {
                    let row = spec.generate_row(&mut rng, &mut key_counter);
                    ops.push(TraceOp::UpdateNth(rng.gen_range(0usize..64), row));
                }
            }
        }

        Trace {
            seed,
            profile: profile.name().to_string(),
            schema: spec.schema(),
            initial_rows,
            ops,
            batch_size: batch_size.max(1),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Builds the initial [`DynamicRelation`].
    pub fn to_relation(&self) -> DynamicRelation {
        DynamicRelation::from_rows(self.schema.clone(), &self.initial_rows)
            .expect("trace rows match the trace schema")
    }

    /// Resolves the positional script into concrete [`ChangeOp`]s,
    /// mirroring the deterministic id assignment of
    /// [`DynamicRelation::apply_batch`]: initial rows get `0..n`, every
    /// insert (and every update's new version) the next id. Ops that
    /// target an empty relation are dropped.
    ///
    /// The resolution depends only on op order, never on batching, so
    /// re-chunking the returned stream yields byte-identical relations —
    /// the foundation of the batch-splitting metamorphic check.
    pub fn to_change_ops(&self) -> Vec<ChangeOp> {
        let mut live: Vec<RecordId> = (0..self.initial_rows.len() as u64).map(RecordId).collect();
        let mut next_id = self.initial_rows.len() as u64;
        let mut out = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            match op {
                TraceOp::Insert(row) => {
                    out.push(ChangeOp::Insert(row.clone()));
                    live.push(RecordId(next_id));
                    next_id += 1;
                }
                TraceOp::DeleteNth(n) => {
                    if live.is_empty() {
                        continue;
                    }
                    let rid = live.swap_remove(n % live.len());
                    out.push(ChangeOp::Delete(rid));
                }
                TraceOp::UpdateNth(n, row) => {
                    if live.is_empty() {
                        continue;
                    }
                    let rid = live.swap_remove(n % live.len());
                    out.push(ChangeOp::Update(rid, row.clone()));
                    live.push(RecordId(next_id));
                    next_id += 1;
                }
            }
        }
        out
    }

    /// The resolved change stream chunked into batches of
    /// [`Trace::batch_size`].
    pub fn to_batches(&self) -> Vec<Batch> {
        Batch::chunk(self.to_change_ops(), self.batch_size)
    }

    /// Deterministic rows for the insert-then-delete round-trip check:
    /// duplicates of existing trace rows (exact duplicates stress the
    /// minimality and dedup paths hardest), padded with a constant row
    /// when the trace has none.
    pub fn roundtrip_rows(&self, n: usize) -> Vec<Vec<String>> {
        let pool: Vec<&Vec<String>> = self
            .initial_rows
            .iter()
            .chain(self.ops.iter().filter_map(|op| match op {
                TraceOp::Insert(r) | TraceOp::UpdateNth(_, r) => Some(r),
                TraceOp::DeleteNth(_) => None,
            }))
            .collect();
        (0..n)
            .map(|i| {
                if pool.is_empty() {
                    vec!["w0".to_string(); self.arity()]
                } else {
                    pool[i % pool.len()].clone()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed_and_case() {
        for case in 0..5 {
            let a = Trace::for_case(7, case);
            let b = Trace::for_case(7, case);
            assert_eq!(a, b);
        }
        assert_ne!(Trace::for_case(7, 0), Trace::for_case(8, 0));
    }

    #[test]
    fn cases_cycle_all_profiles() {
        let names: Vec<String> = (0..TraceProfile::ALL.len() as u64)
            .map(|c| Trace::for_case(3, c).profile)
            .collect();
        for p in TraceProfile::ALL {
            assert!(names.contains(&p.name().to_string()), "{}", p.name());
        }
    }

    #[test]
    fn widths_stay_in_the_2_to_12_band() {
        for seed in 0..40 {
            for profile in TraceProfile::ALL {
                let t = Trace::generate(profile, seed);
                assert!((2..=12).contains(&t.arity()), "{}", t.arity());
                for row in &t.initial_rows {
                    assert_eq!(row.len(), t.arity());
                }
            }
        }
    }

    #[test]
    fn resolved_streams_replay_cleanly() {
        for seed in 0..20 {
            for profile in TraceProfile::ALL {
                let t = Trace::generate(profile, seed);
                let mut rel = t.to_relation();
                for batch in t.to_batches() {
                    rel.apply_batch(&batch).expect("trace must replay");
                }
            }
        }
    }

    #[test]
    fn resolution_is_batching_invariant() {
        let t = Trace::generate(TraceProfile::Uniform, 11);
        let ops = t.to_change_ops();
        // Replaying the same resolved stream at different chunkings must
        // land on the identical final relation.
        let final_rows = |size: usize| {
            let mut rel = t.to_relation();
            for batch in Batch::chunk(ops.clone(), size) {
                rel.apply_batch(&batch).unwrap();
            }
            let mut rows: Vec<Vec<String>> = rel
                .record_ids()
                .map(|rid| rel.materialize(rid).unwrap())
                .collect();
            rows.sort();
            rows
        };
        assert_eq!(final_rows(1), final_rows(4));
    }

    #[test]
    fn null_heavy_traces_contain_nulls() {
        let t = Trace::generate(TraceProfile::NullHeavy, 5);
        let nulls = t
            .initial_rows
            .iter()
            .flatten()
            .filter(|v| v.is_empty())
            .count();
        assert!(nulls > 0, "null-heavy profile must produce empty strings");
    }

    #[test]
    fn subsequences_of_ops_stay_replayable() {
        // The shrinker's core assumption: dropping arbitrary ops keeps
        // the trace valid.
        let t = Trace::generate(TraceProfile::KeyHeavy, 9);
        let mut odd = t.clone();
        odd.ops = t.ops.iter().step_by(2).cloned().collect();
        let mut rel = odd.to_relation();
        for batch in odd.to_batches() {
            rel.apply_batch(&batch).expect("subsequence must replay");
        }
    }
}
