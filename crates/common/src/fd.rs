//! Functional dependency values.

use crate::{AttrSet, Schema};
use std::fmt;

/// Index of an attribute (column) within a relation's schema.
pub type AttrId = usize;

/// A functional dependency `lhs -> rhs` (Definition 1.1 of the paper).
///
/// The right-hand side is a single attribute; an FD with a composite
/// right-hand side `X -> AB` is equivalent to the pair `X -> A`, `X -> B`,
/// so discovery algorithms only ever materialize single-RHS dependencies.
///
/// An `Fd` is *non-trivial* iff `rhs ∉ lhs`; all construction paths in
/// this workspace maintain that invariant, and [`Fd::new`] asserts it in
/// debug builds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd {
    /// Left-hand side: the determinant attribute set.
    pub lhs: AttrSet,
    /// Right-hand side: the (single) determined attribute.
    pub rhs: AttrId,
}

impl Fd {
    /// Creates the FD `lhs -> rhs`.
    ///
    /// Debug-asserts non-triviality (`rhs ∉ lhs`).
    #[inline]
    pub fn new(lhs: AttrSet, rhs: AttrId) -> Self {
        debug_assert!(!lhs.contains(rhs), "trivial FD: {rhs} ∈ {lhs:?}");
        Fd { lhs, rhs }
    }

    /// Number of attributes on the left-hand side; the FD's *level* in
    /// the powerset lattice.
    #[inline]
    pub fn level(&self) -> usize {
        self.lhs.len()
    }

    /// Whether `self` is a generalization of `other`, i.e. same RHS and
    /// `self.lhs ⊂ other.lhs`.
    #[inline]
    pub fn is_generalization_of(&self, other: &Fd) -> bool {
        self.rhs == other.rhs && self.lhs.is_proper_subset_of(&other.lhs)
    }

    /// Whether `self` is a specialization of `other`, i.e. same RHS and
    /// `self.lhs ⊃ other.lhs`.
    #[inline]
    pub fn is_specialization_of(&self, other: &Fd) -> bool {
        other.is_generalization_of(self)
    }

    /// All direct generalizations (LHS shrunk by one attribute).
    pub fn direct_generalizations(&self) -> impl Iterator<Item = Fd> + '_ {
        self.lhs
            .iter()
            .map(move |a| Fd::new(self.lhs.without(a), self.rhs))
    }

    /// All direct specializations within an `arity`-column relation (LHS
    /// grown by one attribute not already in LHS ∪ {RHS}).
    pub fn direct_specializations(&self, arity: usize) -> impl Iterator<Item = Fd> + '_ {
        let rhs = self.rhs;
        let lhs = self.lhs;
        (0..arity)
            .filter(move |&a| a != rhs && !lhs.contains(a))
            .map(move |a| Fd::new(lhs.with(a), rhs))
    }

    /// Renders the FD with column names, e.g. `zip,city -> state`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> FdDisplay<'a> {
        FdDisplay { fd: self, schema }
    }
}

impl fmt::Debug for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}->{}", self.lhs, self.rhs)
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Helper returned by [`Fd::display`]: formats an FD with column names.
pub struct FdDisplay<'a> {
    fd: &'a Fd,
    schema: &'a Schema,
}

impl fmt::Display for FdDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.fd.lhs.is_empty() {
            write!(f, "∅")?;
        }
        for (i, a) in self.fd.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.schema.column_name(a))?;
        }
        write!(f, " -> {}", self.schema.column_name(self.fd.rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(lhs: &[usize], rhs: usize) -> Fd {
        Fd::new(lhs.iter().copied().collect(), rhs)
    }

    #[test]
    fn level_is_lhs_cardinality() {
        assert_eq!(fd(&[], 0).level(), 0);
        assert_eq!(fd(&[1, 2, 3], 0).level(), 3);
    }

    #[test]
    fn generalization_specialization() {
        let general = fd(&[1], 0);
        let special = fd(&[1, 2], 0);
        assert!(general.is_generalization_of(&special));
        assert!(special.is_specialization_of(&general));
        assert!(!general.is_generalization_of(&general));
        // different RHS never related
        assert!(!fd(&[1], 0).is_generalization_of(&fd(&[1, 2], 3)));
    }

    #[test]
    fn direct_generalizations_shrink_by_one() {
        let f = fd(&[1, 2, 3], 0);
        let gens: Vec<Fd> = f.direct_generalizations().collect();
        assert_eq!(gens.len(), 3);
        for g in &gens {
            assert_eq!(g.level(), 2);
            assert!(g.is_generalization_of(&f));
        }
    }

    #[test]
    fn direct_specializations_skip_lhs_and_rhs() {
        let f = fd(&[1], 0);
        let specs: Vec<Fd> = f.direct_specializations(4).collect();
        // candidates: add 2 or 3 (not 0 = rhs, not 1 ∈ lhs)
        assert_eq!(specs, vec![fd(&[1, 2], 0), fd(&[1, 3], 0)]);
    }

    #[test]
    fn empty_lhs_has_no_generalizations() {
        assert_eq!(fd(&[], 2).direct_generalizations().count(), 0);
    }

    #[test]
    fn display_with_schema() {
        let schema = Schema::new("people", vec!["first".into(), "zip".into(), "city".into()]);
        assert_eq!(fd(&[1], 2).display(&schema).to_string(), "zip -> city");
        assert_eq!(fd(&[], 0).display(&schema).to_string(), "∅ -> first");
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn trivial_fd_panics_in_debug() {
        let _ = fd(&[0, 1], 0);
    }
}
