//! Per-tenant and aggregate serve metrics.
//!
//! All counters are relaxed atomics: they are operator telemetry, not
//! synchronization. The one consistency property tests rely on — after
//! a quiesce, `submitted` equals `applied + rejected + shed +
//! quota_rejected + closed_rejected` — holds because every submit path
//! increments exactly one of the outcome counters before the batch's
//! completion fires. (Deadline rejections happen on the worker, so they count in
//! `rejected` for the partition and in `deadline_rejected` as the
//! informational breakdown.)
//!
//! The same [`TenantMetrics`] struct backs the engine-wide aggregate:
//! every per-tenant increment also lands on the engine's aggregate
//! instance, so shed/quota/deadline rejections survive the eviction of
//! the tenant that suffered them — the property `serve_load`'s global
//! snapshot depends on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Live counters for one tenant (see the module docs).
#[derive(Debug, Default)]
pub struct TenantMetrics {
    submitted: AtomicU64,
    applied: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    quota_rejected: AtomicU64,
    deadline_rejected: AtomicU64,
    closed_rejected: AtomicU64,
    degrades: AtomicU64,
    degraded_batches: AtomicU64,
    session_replays: AtomicU64,
    session_dedups: AtomicU64,
    fds_added: AtomicU64,
    fds_removed: AtomicU64,
    max_depth: AtomicU64,
    latency_total_nanos: AtomicU64,
    latency_max_nanos: AtomicU64,
}

/// A point-in-time copy of a tenant's counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Batches offered to this tenant (every outcome).
    pub submitted: u64,
    /// Batches durably applied.
    pub applied: u64,
    /// Batches the engine rejected (typed `DynFdError` rejections,
    /// rolled-back internal faults, and pre-apply deadline misses).
    pub rejected: u64,
    /// Batches shed at admission (queue full under the shed policy).
    pub shed: u64,
    /// Batches refused at admission because the tenant was over a
    /// resource quota (wire code 17).
    pub quota_rejected: u64,
    /// Jobs rejected pre-apply because their deadline passed (wire code
    /// 18). Also counted in `rejected` — this is the breakdown, not a
    /// fourth outcome.
    pub deadline_rejected: u64,
    /// Submissions refused because they landed inside the tenant's
    /// eviction window (wire code 19).
    pub closed_rejected: u64,
    /// Governance degradation steps applied to this tenant (PLI-cache
    /// squeeze or disable under memory pressure).
    pub degrades: u64,
    /// Batches applied while the tenant's cache was degraded (the serve
    /// face of `BatchMetrics::degraded_batches`).
    pub degraded_batches: u64,
    /// Sessioned applies answered from the ack-replay window (a re-sent
    /// frame whose batch was already settled — nothing re-applied).
    /// Outside the `submitted` partition: a replay is not a submission.
    pub session_replays: u64,
    /// Duplicate sessioned applies absorbed while the original was
    /// still in flight. Also outside the `submitted` partition.
    pub session_dedups: u64,
    /// Minimal FDs added across all applied batches.
    pub fds_added: u64,
    /// Minimal FDs removed across all applied batches.
    pub fds_removed: u64,
    /// High-water mark of the tenant's in-flight queue depth.
    pub max_depth: u64,
    /// Sum of submit→completion latency over applied + rejected batches.
    pub latency_total: Duration,
    /// Worst single submit→completion latency.
    pub latency_max: Duration,
}

impl MetricsSnapshot {
    /// All rejections issued on behalf of resource governance (shed +
    /// quota + eviction-window; deadline misses are already inside
    /// `rejected`).
    pub fn governance_rejections(&self) -> u64 {
        self.shed + self.quota_rejected + self.closed_rejected
    }
}

impl TenantMetrics {
    /// Records an admission attempt reaching depth `depth`.
    pub fn note_submitted(&self, depth: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.max_depth.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Records a load-shed (admission refused).
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a quota rejection at admission (wire code 17).
    pub fn note_quota_rejected(&self) {
        self.quota_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a pre-apply deadline rejection (wire code 18). The
    /// completion path also calls [`TenantMetrics::note_completed`] with
    /// `applied = false`, which keeps the outcome partition intact.
    pub fn note_deadline_rejected(&self) {
        self.deadline_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a submission refused inside the eviction window (wire
    /// code 19).
    pub fn note_closed_rejected(&self) {
        self.closed_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one governance degradation step (cache squeeze/disable).
    pub fn note_degrade(&self) {
        self.degrades.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a sessioned apply answered from the replay window.
    pub fn note_session_replay(&self) {
        self.session_replays.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duplicate sessioned apply absorbed in flight.
    pub fn note_session_dedup(&self) {
        self.session_dedups.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed batch: applied or rejected, with its
    /// submit→completion latency and (when applied) the FD delta sizes.
    /// `degraded` marks a batch applied under cache pressure.
    pub fn note_completed(
        &self,
        applied: bool,
        added: u64,
        removed: u64,
        latency: Duration,
        degraded: bool,
    ) {
        if applied {
            self.applied.fetch_add(1, Ordering::Relaxed);
            self.fds_added.fetch_add(added, Ordering::Relaxed);
            self.fds_removed.fetch_add(removed, Ordering::Relaxed);
            if degraded {
                self.degraded_batches.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        }
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.latency_total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.latency_max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Copies the counters out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            applied: self.applied.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            quota_rejected: self.quota_rejected.load(Ordering::Relaxed),
            deadline_rejected: self.deadline_rejected.load(Ordering::Relaxed),
            closed_rejected: self.closed_rejected.load(Ordering::Relaxed),
            degrades: self.degrades.load(Ordering::Relaxed),
            degraded_batches: self.degraded_batches.load(Ordering::Relaxed),
            session_replays: self.session_replays.load(Ordering::Relaxed),
            session_dedups: self.session_dedups.load(Ordering::Relaxed),
            fds_added: self.fds_added.load(Ordering::Relaxed),
            fds_removed: self.fds_removed.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed),
            latency_total: Duration::from_nanos(self.latency_total_nanos.load(Ordering::Relaxed)),
            latency_max: Duration::from_nanos(self.latency_max_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// Engine-wide aggregate: the same counters as one tenant, summed over
/// every tenant that ever lived on the engine, plus lifecycle counts
/// that only make sense globally. Unlike per-tenant metrics, this
/// survives eviction — a rejected batch stays counted after its tenant
/// is released.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GlobalSnapshot {
    /// Summed per-tenant counters (see [`MetricsSnapshot`]).
    pub totals: MetricsSnapshot,
    /// Tenants evicted or closed over the engine's lifetime.
    pub evictions: u64,
    /// Tenants currently registered.
    pub live_tenants: u64,
    /// Sum of every live tenant's resident-byte estimate at snapshot
    /// time.
    pub resident_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_partition_submissions() {
        let m = TenantMetrics::default();
        m.note_submitted(1);
        m.note_completed(true, 2, 1, Duration::from_micros(5), false);
        m.note_submitted(2);
        m.note_completed(false, 0, 0, Duration::from_micros(9), false);
        m.note_submitted(3);
        m.note_shed();
        m.note_submitted(3);
        m.note_quota_rejected();
        m.note_submitted(3);
        m.note_closed_rejected();
        let s = m.snapshot();
        assert_eq!(s.submitted, 5);
        assert_eq!(
            s.applied + s.rejected + s.shed + s.quota_rejected + s.closed_rejected,
            5
        );
        assert_eq!(s.governance_rejections(), 3);
        assert_eq!((s.fds_added, s.fds_removed), (2, 1));
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.latency_max, Duration::from_micros(9));
        assert_eq!(s.latency_total, Duration::from_micros(14));
    }

    #[test]
    fn deadline_misses_break_down_rejected_without_double_counting() {
        let m = TenantMetrics::default();
        m.note_submitted(1);
        m.note_deadline_rejected();
        m.note_completed(false, 0, 0, Duration::from_micros(3), false);
        let s = m.snapshot();
        assert_eq!(s.submitted, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.deadline_rejected, 1);
        assert_eq!(
            s.applied + s.rejected + s.shed + s.quota_rejected + s.closed_rejected,
            1,
            "deadline misses live inside rejected, not beside it"
        );
    }

    #[test]
    fn degraded_batches_count_only_applied_work() {
        let m = TenantMetrics::default();
        m.note_submitted(1);
        m.note_completed(true, 0, 0, Duration::from_micros(1), true);
        m.note_submitted(1);
        m.note_completed(false, 0, 0, Duration::from_micros(1), true);
        let s = m.snapshot();
        assert_eq!(s.degraded_batches, 1);
    }
}
