//! The experiment harness binary: regenerates every table and figure of
//! the DynFD evaluation.
//!
//! ```text
//! cargo run --release -p dynfd-bench --bin experiments -- all
//! cargo run --release -p dynfd-bench --bin experiments -- table4 fig7 --scale 0.25
//! ```
//!
//! Options:
//! * `--scale <f>` — scale every dataset's rows and changes by `f`
//!   (default 1.0, i.e. the paper's shapes with `artist` at 120k rows).
//! * `--full-artist` — use the original 1,122,887-row `artist`.
//!
//! Tables are printed to stdout and written as CSV under
//! `EXPERIMENTS-results/`.

use dynfd_bench::experiments::{self, Ctx};
use dynfd_bench::report::Table;
use std::time::Instant;

const USAGE: &str =
    "usage: experiments [all|table3|table4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|ext]... \
                     [--scale <f>] [--full-artist]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut full_artist = false;
    let mut selected: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| die("--scale needs a value"));
                scale = v.parse().unwrap_or_else(|_| die("--scale needs a number"));
                if scale <= 0.0 {
                    die("--scale must be positive");
                }
            }
            "--full-artist" => full_artist = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            name => selected.push(name.to_string()),
        }
    }
    if selected.is_empty() {
        println!("{USAGE}");
        return;
    }
    if selected.iter().any(|s| s == "all") {
        selected = [
            "table3", "table4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "ext",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let ctx = Ctx::new(scale, full_artist);
    for name in &selected {
        let start = Instant::now();
        match name.as_str() {
            "table3" => emit(
                "Table 3: dataset characteristics",
                "table3",
                experiments::table3::run(&ctx),
            ),
            "table4" => emit(
                "Table 4: DynFD performance, batch size 100, ≤10,000 changes",
                "table4",
                experiments::table4::run(&ctx),
            ),
            "fig5" => {
                let (summary, series) = experiments::fig5::run(&ctx);
                emit(
                    "Figure 5: per-batch runtimes on 'single' (summary)",
                    "fig5_summary",
                    summary,
                );
                let path = series.write_csv("fig5_series").expect("write CSV");
                println!("[fig5] full per-batch series -> {}\n", path.display());
            }
            "fig6" => emit(
                "Figure 6: average batch runtime vs. batch size",
                "fig6",
                experiments::fig6::run(&ctx),
            ),
            "fig7" => emit(
                "Figure 7: speedup of DynFD over repeated HyFD (relative batch sizes)",
                "fig7",
                experiments::fig7::run(&ctx),
            ),
            "fig8" => emit(
                "Figure 8: runtime by pruning strategies, batch size 1,000",
                "fig8",
                experiments::figs8_9::run_fig8(&ctx),
            ),
            "fig9" => emit(
                "Figure 9: runtime by pruning strategies, batch size 10% of rows",
                "fig9",
                experiments::figs8_9::run_fig9(&ctx),
            ),
            "fig10" => emit(
                "Figure 10: strategies vs. batch size on 'cpu'",
                "fig10",
                experiments::figs10_11::run_fig10(&ctx),
            ),
            "ext" => emit(
                "Extensions ablation (Section 8 features, batch size 100)",
                "ext",
                experiments::ext::run(&ctx),
            ),
            "fig11" => emit(
                "Figure 11: strategies vs. batch size on 'single'",
                "fig11",
                experiments::figs10_11::run_fig11(&ctx),
            ),
            other => die(&format!("unknown experiment {other:?}\n{USAGE}")),
        }
        eprintln!("[{name}] finished in {:.1}s", start.elapsed().as_secs_f64());
    }
}

fn emit(title: &str, csv_name: &str, table: Table) {
    println!("== {title} ==");
    println!("{}", table.render());
    match table.write_csv(csv_name) {
        Ok(path) => println!("[csv] {}\n", path.display()),
        Err(e) => eprintln!("[csv] failed to write {csv_name}: {e}\n"),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
