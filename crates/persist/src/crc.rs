//! CRC-32 (IEEE 802.3) — the checksum guarding WAL frames and snapshot
//! payloads.
//!
//! Hand-rolled because the workspace is offline: the classic
//! table-driven implementation with the table computed at compile time.
//! The polynomial (reflected `0xEDB88320`) and the init/final XOR match
//! zlib's `crc32`, so external tooling can verify DynFD's files.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one shift-or-xor step per table index bit.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (zlib-compatible: init `!0`, final XOR `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = b"dynfd wal frame payload".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
