//! Wire-protocol fault injection for the serve layer.
//!
//! [`check_wire`] feeds a serve engine a framed request stream built
//! from a deterministic [`Trace`] with one seeded wire fault injected,
//! and holds the connection to the damage contract of
//! `dynfd_serve::session`:
//!
//! * every **readable well-formed frame** is answered **exactly once**
//!   with a typed response — success, or a documented rejection code
//!   (engine rejections 3–12, overload shedding 13);
//! * a frame whose payload is damaged but whose framing is intact
//!   ([`WireFault::GarbageFrame`]) is answered once with the parse code
//!   and the stream *stays in sync* — every later frame is still served;
//! * framing damage ([`WireFault::TruncatedFrame`],
//!   [`WireFault::OversizedFrame`]) is answered once with a typed error
//!   and ends the conversation — frames after the damage are
//!   unreachable by construction and must *not* be answered;
//! * the server never crashes, and the response stream itself stays
//!   frame-clean (every response decodes).
//!
//! Everything is seeded: the damage site and shape derive from the
//! trace seed, so a failing `(seed, case, fault)` triple reproduces
//! bit-identically.

use crate::runner::TraceFailure;
use crate::trace::Trace;
use dynfd_serve::wire::{self, Request, CODE_OK, CODE_PARSE};
use dynfd_serve::{AdmissionPolicy, ServeConfig, ServeEngine};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The wire damage modes `fuzz --inject` can apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFault {
    /// The stream ends mid-frame (inside the length prefix or payload):
    /// a torn frame, as a crashed client or cut connection produces.
    TruncatedFrame,
    /// One frame's length prefix is intact but its payload does not
    /// decode as a request.
    GarbageFrame,
    /// One frame claims an impossible payload length (above
    /// `wire::MAX_FRAME`), which must be refused without allocation.
    OversizedFrame,
}

impl WireFault {
    /// All wire faults, in the order the fuzz binary cycles them.
    pub const ALL: [WireFault; 3] = [
        WireFault::TruncatedFrame,
        WireFault::GarbageFrame,
        WireFault::OversizedFrame,
    ];

    /// The fault's `--inject` name.
    pub fn name(self) -> &'static str {
        match self {
            WireFault::TruncatedFrame => "truncated-frame",
            WireFault::GarbageFrame => "garbage-frame",
            WireFault::OversizedFrame => "oversized-frame",
        }
    }

    /// Looks a fault up by its [`WireFault::name`].
    pub fn by_name(name: &str) -> Option<WireFault> {
        WireFault::ALL.iter().copied().find(|f| f.name() == name)
    }
}

/// Counters from one [`check_wire`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct WireStats {
    /// Well-formed frames the server could read before any stream end.
    pub wellformed: u64,
    /// Damaged frames injected (always 1 per run).
    pub damaged: u64,
    /// Responses received, total.
    pub responses: u64,
    /// Responses carrying the overload-shed code 13.
    pub sheds: u64,
    /// Responses carrying non-OK engine/parse codes.
    pub errors: u64,
}

impl WireStats {
    /// Accumulates another run's counters.
    pub fn absorb(&mut self, other: &WireStats) {
        self.wellformed += other.wellformed;
        self.damaged += other.damaged;
        self.responses += other.responses;
        self.sheds += other.sheds;
        self.errors += other.errors;
    }
}

/// A `Write` the worker threads and the read loop can share; collects
/// the response byte stream for post-hoc decoding.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Wraps a wire-oracle violation in the shrinker/repro failure shape.
fn fail(fault: WireFault, detail: String) -> Box<TraceFailure> {
    Box::new(TraceFailure {
        check: format!("wire:{}", fault.name()),
        config: "serve-connection".into(),
        batch: None,
        expected: vec!["every readable frame answered exactly once with a typed code".into()],
        actual: vec![detail],
    })
}

fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Replays `trace` as a framed single-tenant request stream with one
/// seeded `fault` injected, and checks the exactly-once response oracle
/// (see the module docs). The whole run is in-memory and deterministic.
pub fn check_wire(
    trace: &Trace,
    fault: WireFault,
    seed: u64,
) -> Result<WireStats, Box<TraceFailure>> {
    let tenant = "t0";
    let open = Request::Open {
        request_id: 1,
        tenant: tenant.to_string(),
        columns: trace.schema.columns().to_vec(),
        rows: trace.initial_rows.clone(),
    };
    let applies: Vec<Request> = trace
        .to_batches()
        .into_iter()
        .enumerate()
        .map(|(i, batch)| Request::Apply {
            request_id: 2 + i as u64,
            tenant: tenant.to_string(),
            deadline_ms: 0,
            // Unsessioned: the legacy stdin path, no replay window.
            session_seq: 0,
            batch,
        })
        .collect();

    // Build the wire bytes: the open, then the applies with the damage
    // at a seeded position among them.
    let damage_at = (splitmix(seed ^ 0xD1CE) as usize) % applies.len().max(1);
    let mut stream: Vec<u8> = Vec::new();
    wire::write_frame(&mut stream, &wire::encode_request(&open))
        .map_err(|e| fail(fault, e.to_string()))?;
    // Ids the server can read and must answer exactly once each.
    let mut expected_ids: Vec<u64> = vec![open.request_id()];
    let mut truncated_stream = false;
    for (i, req) in applies.iter().enumerate() {
        if i == damage_at {
            match fault {
                WireFault::TruncatedFrame => {
                    // Write the frame, then tear the stream inside it:
                    // keep the 4-byte prefix plus a seeded strict prefix
                    // of the payload (possibly zero payload bytes).
                    let payload = wire::encode_request(req);
                    let mut frame = Vec::new();
                    wire::write_frame(&mut frame, &payload)
                        .map_err(|e| fail(fault, e.to_string()))?;
                    let keep = 4 + (splitmix(seed ^ i as u64) as usize) % payload.len();
                    stream.extend_from_slice(&frame[..keep]);
                    truncated_stream = true;
                }
                WireFault::GarbageFrame => {
                    // Intact framing, undecodable payload: either chop
                    // the tail off the request body or append junk the
                    // decoder must flag as trailing bytes.
                    let mut payload = wire::encode_request(req);
                    if splitmix(seed ^ 0xBEEF ^ i as u64).is_multiple_of(2) {
                        payload.truncate(payload.len() - payload.len() / 3 - 1);
                    } else {
                        payload.extend_from_slice(b"\xFF\xFE\xFD");
                    }
                    wire::write_frame(&mut stream, &payload)
                        .map_err(|e| fail(fault, e.to_string()))?;
                    // Its id still decodes (damage is past the header),
                    // so its one answer is a parse error carrying the id.
                    expected_ids.push(req.request_id());
                }
                WireFault::OversizedFrame => {
                    stream.extend_from_slice(
                        &(wire::MAX_FRAME + 1 + (splitmix(seed) as u32 % 1024)).to_le_bytes(),
                    );
                    stream.extend_from_slice(&[0x5A; 8]);
                    truncated_stream = true;
                }
            }
            if truncated_stream {
                break;
            }
            continue;
        }
        wire::write_frame(&mut stream, &wire::encode_request(req))
            .map_err(|e| fail(fault, e.to_string()))?;
        expected_ids.push(req.request_id());
    }

    // A modest queue under the shed policy: overload shedding (code 13)
    // is allowed to fire, and every shed must still be answered.
    let engine = Arc::new(ServeEngine::new(ServeConfig {
        workers: 2,
        queue_capacity: 4,
        policy: AdmissionPolicy::Shed,
        root: None,
        ..ServeConfig::default()
    }));
    let out = SharedBuf::default();
    let report =
        dynfd_serve::serve_connection(&engine, std::io::Cursor::new(stream), out.clone(), || false);

    // Decode the response stream; it must itself be frame-clean.
    let bytes = out
        .0
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let mut cursor = std::io::Cursor::new(bytes);
    let mut responses = Vec::new();
    while let Some(payload) =
        wire::read_frame(&mut cursor).map_err(|e| fail(fault, e.to_string()))?
    {
        responses.push(
            wire::decode_response(&payload)
                .map_err(|e| fail(fault, format!("bad response: {e}")))?,
        );
    }

    // Oracle 1: exactly-once per readable well-formed (or id-bearing
    // garbage) frame, plus exactly one id-0 framing error for stream
    // damage. No other responses.
    let mut by_id: HashMap<u64, u64> = HashMap::new();
    for resp in &responses {
        *by_id.entry(resp.request_id).or_insert(0) += 1;
    }
    for id in &expected_ids {
        match by_id.remove(id) {
            Some(1) => {}
            Some(n) => return Err(fail(fault, format!("request {id} answered {n} times"))),
            None => return Err(fail(fault, format!("request {id} never answered"))),
        }
    }
    if truncated_stream {
        match by_id.remove(&0) {
            Some(1) => {}
            other => {
                return Err(fail(
                    fault,
                    format!("framing damage must yield exactly one id-0 error, got {other:?}"),
                ))
            }
        }
    }
    if !by_id.is_empty() {
        return Err(fail(
            fault,
            format!("unsolicited responses for ids {:?}", by_id.keys()),
        ));
    }

    // Oracle 2: every code is a documented one, and framing/garbage
    // damage answers carry the parse code.
    let mut stats = WireStats {
        wellformed: expected_ids.len() as u64,
        damaged: 1,
        responses: responses.len() as u64,
        ..WireStats::default()
    };
    for resp in &responses {
        match resp.code {
            CODE_OK => {}
            13 => stats.sheds += 1,
            CODE_PARSE | 3 | 5..=12 | 14..=19 => stats.errors += 1,
            other => return Err(fail(fault, format!("undocumented response code {other}"))),
        }
        if resp.request_id == 0 && resp.code != CODE_PARSE {
            return Err(fail(
                fault,
                format!(
                    "framing-damage response must carry the parse code, got {}",
                    resp.code
                ),
            ));
        }
    }
    if report.frames == 0 {
        return Err(fail(fault, "server read no frames".into()));
    }
    Ok(stats)
}
