//! Table 4 — DynFD batch-processing performance on all datasets.
//!
//! Fixed batch size 100; up to 100 batches (10,000 changes) per dataset
//! — `cpu` and `actor` run their entire shorter histories, exactly as in
//! the paper. Reports accumulated runtime, throughput, average batch
//! time, and the 99th/95th/90th percentile batch times.
//!
//! Expected shape vs. the paper: the wide `actor` has markedly lower
//! throughput than `single` despite fewer rows; the huge `artist` is
//! slowest by far; percentiles are heavy-tailed everywhere.

use crate::experiments::{Ctx, CHANGE_CAP};
use crate::report::{ms, Table};
use crate::runner::run_dynfd;
use dynfd_core::DynFdConfig;

/// Runs the experiment and returns the rendered table.
pub fn run(ctx: &Ctx) -> Table {
    let mut table = Table::new(&[
        "Dataset",
        "runtime[s]",
        "throughput[changes/s]",
        "avg batch[ms]",
        "p99[ms]",
        "p95[ms]",
        "p90[ms]",
    ]);
    for name in ctx.names() {
        let data = ctx.dataset(name);
        let outcome = run_dynfd(&data, 100, Some(CHANGE_CAP), DynFdConfig::default());
        table.row(vec![
            name.to_string(),
            format!("{:.1}", outcome.total.as_secs_f64()),
            format!("{:.1}", outcome.throughput()),
            ms(outcome.avg_batch_ms()),
            ms(outcome.percentile_ms(0.99)),
            ms(outcome.percentile_ms(0.95)),
            ms(outcome.percentile_ms(0.90)),
        ]);
    }
    table
}
