//! Parallel fan-out over independent validation jobs.
//!
//! Both DynFD lattice phases validate the candidates of a level strictly
//! against a *frozen* relation: within one level no validation depends
//! on another's verdict, so the jobs are embarrassingly parallel. This
//! module shards a job list across `std::thread::scope` workers (std
//! only — no thread-pool dependency) with a shared atomic cursor for
//! load balancing, and reassembles results **by job index**, so the
//! output is bit-identical to running the jobs sequentially no matter
//! how the scheduler interleaves the workers.
//!
//! Each worker owns one [`ValidatorScratch`], so per-job working memory
//! is still allocation-free in the steady state.

use crate::pli_cache::{CacheEffects, PliCache, PliCacheSnapshot};
use crate::relation::DynamicRelation;
use crate::validate::{
    validate_cached, validate_with, ValidationOptions, ValidationResult, ValidatorScratch,
};
use dynfd_common::AttrSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One validation job: all candidates `lhs -> r` for `r ∈ rhs_set`.
pub type ValidationJob = (AttrSet, AttrSet);

/// Resolves a parallelism knob (`0` = auto) against the machine.
pub fn resolve_parallelism(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Caps the worker count for one level: levels with fewer than
/// `min_jobs` jobs run sequentially regardless of `requested`.
///
/// Spawning OS threads costs tens of microseconds each — more than a
/// whole small level's validation work, which is why BENCH_pr1.json
/// showed `threads/{2,4,8}` *slower* than `threads/1` on arity-1 levels
/// (6 jobs). `min_jobs = 0` disables the fallback.
pub fn adaptive_workers(requested: usize, job_count: usize, min_jobs: usize) -> usize {
    if job_count < min_jobs {
        1
    } else {
        requested
    }
}

/// Maps `f` over `items` with up to `threads` worker threads, returning
/// the results **in item order** regardless of scheduling.
///
/// The generic workhorse behind [`validate_many`] and the parallel
/// pieces of the violation search: a shared atomic cursor hands out
/// items for load balancing, each worker records `(index, result)`
/// pairs, and the coordinator reassembles them by index. With
/// `threads <= 1` or fewer than two items, `f` runs inline on the
/// calling thread.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(idx) else {
                            break;
                        };
                        produced.push((idx, f(item)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            // A panicking worker re-raises its payload on the calling
            // thread so the transactional boundary in `dynfd_core` can
            // catch it and roll the batch back.
            let produced = handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            for (idx, result) in produced {
                slots[idx] = Some(result);
            }
        }
    });

    // Invariant: the chunked index ranges partition 0..len, so every
    // slot was written exactly once before the scope joined.
    slots
        .into_iter()
        .map(|slot| slot.expect("every item produced a result"))
        .collect()
}

/// Validates every job in `jobs` against `rel` using up to `threads`
/// worker threads and returns the results in job order.
///
/// With `threads <= 1` (or fewer than two jobs) no thread is spawned and
/// the jobs run inline — this is the exact sequential code path. The
/// result vector is independent of the actual thread count.
pub fn validate_many(
    rel: &DynamicRelation,
    jobs: &[ValidationJob],
    opts: &ValidationOptions,
    threads: usize,
) -> Vec<ValidationResult> {
    let workers = threads.min(jobs.len());
    if workers <= 1 {
        let mut scratch = ValidatorScratch::new();
        return jobs
            .iter()
            .map(|&(lhs, rhs)| validate_with(rel, lhs, rhs, opts, &mut scratch))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<ValidationResult>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut scratch = ValidatorScratch::new();
                    let mut produced: Vec<(usize, ValidationResult)> = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(lhs, rhs)) = jobs.get(idx) else {
                            break;
                        };
                        produced.push((idx, validate_with(rel, lhs, rhs, opts, &mut scratch)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            // See `par_map`: re-raise worker panics with their payload.
            let produced = handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            for (idx, result) in produced {
                slots[idx] = Some(result);
            }
        }
    });

    slots
        .into_iter()
        // Invariant: as in `par_map`, the ranges partition the job list.
        .map(|slot| slot.expect("every job produced a result"))
        .collect()
}

/// [`validate_many`] through the PLI-intersection cache.
///
/// Workers validate against an immutable snapshot of `cache` taken at
/// the level start, recording per-job [`CacheEffects`]; the effects are
/// merged back **in job order** at the level barrier, so cache contents,
/// LRU order, and hit/miss counters are a pure function of the job list
/// — identical for every worker count, like the validation results
/// themselves. `min_jobs` applies the [`adaptive_workers`] sequential
/// fallback on top of `threads`.
pub fn validate_many_cached(
    rel: &DynamicRelation,
    jobs: &[ValidationJob],
    opts: &ValidationOptions,
    threads: usize,
    min_jobs: usize,
    cache: &mut PliCache,
) -> Vec<ValidationResult> {
    let snapshot = cache.snapshot();
    let (results, effects) =
        validate_jobs_on_snapshot(rel, jobs, opts, threads, min_jobs, &snapshot);
    cache.merge(&effects);
    results
}

/// The compute half of [`validate_many_cached`]: validates `jobs`
/// against a caller-held snapshot, returning results and *unmerged*
/// per-job effects, both in job order.
///
/// The sampling-guided scheduler needs this split: it validates a level
/// in several waves against **one** snapshot and merges all effects in
/// original job order at the level barrier, which is exactly what makes
/// the reordered run's cache state bit-identical to the unordered one.
pub fn validate_jobs_on_snapshot(
    rel: &DynamicRelation,
    jobs: &[ValidationJob],
    opts: &ValidationOptions,
    threads: usize,
    min_jobs: usize,
    snapshot: &PliCacheSnapshot,
) -> (Vec<ValidationResult>, Vec<CacheEffects>) {
    let workers = adaptive_workers(threads, jobs.len(), min_jobs).min(jobs.len());

    if workers <= 1 {
        let mut scratch = ValidatorScratch::new();
        let mut results = Vec::with_capacity(jobs.len());
        let mut effects = Vec::with_capacity(jobs.len());
        for &(lhs, rhs) in jobs {
            let (r, e) = validate_cached(rel, lhs, rhs, opts, &mut scratch, snapshot);
            results.push(r);
            effects.push(e);
        }
        (results, effects)
    } else {
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<(ValidationResult, CacheEffects)>> =
            Vec::with_capacity(jobs.len());
        slots.resize_with(jobs.len(), || None);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut scratch = ValidatorScratch::new();
                        let mut produced: Vec<(usize, (ValidationResult, CacheEffects))> =
                            Vec::new();
                        loop {
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&(lhs, rhs)) = jobs.get(idx) else {
                                break;
                            };
                            produced.push((
                                idx,
                                validate_cached(rel, lhs, rhs, opts, &mut scratch, snapshot),
                            ));
                        }
                        produced
                    })
                })
                .collect();
            for handle in handles {
                // See `par_map`: re-raise worker panics with their payload.
                let produced = handle
                    .join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
                for (idx, result) in produced {
                    slots[idx] = Some(result);
                }
            }
        });

        slots
            .into_iter()
            // Invariant: as in `par_map`, the ranges partition the job list.
            .map(|slot| slot.expect("every job produced a result"))
            .unzip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use dynfd_common::Schema;

    fn wide_relation(rows: usize) -> DynamicRelation {
        let rows: Vec<Vec<String>> = (0..rows)
            .map(|i| {
                vec![
                    format!("a{}", i % 7),
                    format!("b{}", i % 5),
                    format!("c{}", i % 3),
                    format!("d{}", i % 11),
                    format!("e{}", i % 2),
                ]
            })
            .collect();
        DynamicRelation::from_rows(Schema::anonymous("t", 5), &rows).unwrap()
    }

    fn all_jobs(arity: usize) -> Vec<ValidationJob> {
        // Every single-attribute LHS against all other attributes, plus
        // a few two-attribute LHS groups.
        let mut jobs = Vec::new();
        for a in 0..arity {
            let lhs = AttrSet::single(a);
            let rhs: AttrSet = (0..arity).filter(|&r| r != a).collect();
            jobs.push((lhs, rhs));
        }
        for a in 0..arity {
            for b in (a + 1)..arity {
                let lhs: AttrSet = [a, b].into_iter().collect();
                let rhs: AttrSet = (0..arity).filter(|&r| r != a && r != b).collect();
                jobs.push((lhs, rhs));
            }
        }
        jobs
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let rel = wide_relation(300);
        let jobs = all_jobs(5);
        let opts = ValidationOptions::full();
        let sequential = validate_many(&rel, &jobs, &opts, 1);
        for threads in [2, 3, 4, 8] {
            let parallel = validate_many(&rel, &jobs, &opts, threads);
            assert_eq!(sequential.len(), parallel.len());
            for (s, p) in sequential.iter().zip(&parallel) {
                assert_eq!(s.lhs, p.lhs);
                assert_eq!(
                    s.outcomes, p.outcomes,
                    "outcomes diverged at {threads} threads"
                );
                assert_eq!(s.stats, p.stats, "stats diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn matches_single_job_validate() {
        let rel = wide_relation(100);
        let jobs = all_jobs(5);
        let opts = ValidationOptions::full();
        let batched = validate_many(&rel, &jobs, &opts, 4);
        for (job, got) in jobs.iter().zip(&batched) {
            let lone = validate(&rel, job.0, job.1, &opts);
            assert_eq!(lone.outcomes, got.outcomes);
            assert_eq!(lone.stats, got.stats);
        }
    }

    #[test]
    fn empty_and_single_job_lists() {
        let rel = wide_relation(10);
        let opts = ValidationOptions::full();
        assert!(validate_many(&rel, &[], &opts, 4).is_empty());
        let jobs = vec![(AttrSet::single(0), AttrSet::single(1))];
        let got = validate_many(&rel, &jobs, &opts, 4);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 5, 16] {
            assert_eq!(par_map(&items, threads, |&x| x * x), expect);
        }
        assert!(par_map::<usize, usize, _>(&[], 4, |&x| x).is_empty());
    }

    #[test]
    fn resolve_parallelism_contract() {
        assert!(resolve_parallelism(0) >= 1);
        assert_eq!(resolve_parallelism(1), 1);
        assert_eq!(resolve_parallelism(6), 6);
    }

    #[test]
    fn adaptive_workers_contract() {
        // Below the threshold → sequential.
        assert_eq!(adaptive_workers(8, 6, 16), 1);
        assert_eq!(adaptive_workers(8, 15, 16), 1);
        // At or above → the requested width.
        assert_eq!(adaptive_workers(8, 16, 16), 8);
        assert_eq!(adaptive_workers(8, 20, 16), 8);
        // 0 disables the fallback entirely.
        assert_eq!(adaptive_workers(8, 1, 0), 8);
    }

    /// Cached fan-out: results, cache contents, and counters are
    /// identical for every worker count (the determinism contract of
    /// the snapshot + job-order merge).
    #[test]
    fn cached_parallel_matches_sequential_bit_for_bit() {
        let rel = wide_relation(300);
        let jobs = all_jobs(5);
        let opts = ValidationOptions::full();

        let run = |threads: usize| {
            let mut cache = PliCache::new(usize::MAX);
            // Two passes: the first populates, the second hits.
            let _ = validate_many_cached(&rel, &jobs, &opts, threads, 0, &mut cache);
            let results = validate_many_cached(&rel, &jobs, &opts, threads, 0, &mut cache);
            (results, cache)
        };

        let (seq_results, seq_cache) = run(1);
        assert!(seq_cache.stats().hits > 0, "warm pass must hit");
        for threads in [2, 3, 4, 8] {
            let (par_results, par_cache) = run(threads);
            assert_eq!(seq_results.len(), par_results.len());
            for (s, p) in seq_results.iter().zip(&par_results) {
                assert_eq!(s.lhs, p.lhs);
                assert_eq!(
                    s.outcomes, p.outcomes,
                    "outcomes diverged at {threads} threads"
                );
                assert_eq!(s.stats, p.stats, "stats diverged at {threads} threads");
            }
            assert_eq!(
                seq_cache.stats(),
                par_cache.stats(),
                "cache counters diverged at {threads} threads"
            );
            assert_eq!(seq_cache.len(), par_cache.len());
            assert_eq!(seq_cache.bytes(), par_cache.bytes());
        }
    }

    /// Cached and plain engines agree on verdicts for every job.
    #[test]
    fn cached_fanout_matches_plain_verdicts() {
        let rel = wide_relation(200);
        let jobs = all_jobs(5);
        let opts = ValidationOptions::full();
        let plain = validate_many(&rel, &jobs, &opts, 1);
        let mut cache = PliCache::new(usize::MAX);
        for _ in 0..2 {
            let cached = validate_many_cached(&rel, &jobs, &opts, 2, 0, &mut cache);
            for (s, p) in plain.iter().zip(&cached) {
                assert_eq!(s.lhs, p.lhs);
                for (attr, out) in &s.outcomes {
                    assert_eq!(
                        p.outcome(*attr).is_valid(),
                        out.is_valid(),
                        "{:?} -> {attr} verdict diverged",
                        s.lhs
                    );
                }
            }
        }
    }
}
