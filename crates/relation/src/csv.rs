//! Minimal CSV ingestion (RFC 4180 subset).
//!
//! The evaluation datasets are tabular dumps; a hand-rolled reader keeps
//! the workspace free of an extra dependency. Supported: quoted fields,
//! escaped quotes (`""`), embedded commas/newlines in quoted fields,
//! `\r\n` and `\n` line endings. Not supported (not needed): custom
//! delimiters, comments.

use dynfd_common::{DynError, Result, Schema};
use std::path::Path;

/// A parsed CSV: header + rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsvTable {
    /// Column names from the header line.
    pub header: Vec<String>,
    /// Data rows; every row has `header.len()` fields.
    pub rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Builds a [`Schema`] named `name` from the header.
    pub fn schema(&self, name: &str) -> Schema {
        Schema::new(name, self.header.clone())
    }
}

/// Parses CSV text with a header line.
pub fn parse_csv(text: &str) -> Result<CsvTable> {
    let mut records = parse_records(text)?;
    if records.is_empty() {
        return Err(DynError::Parse("empty CSV input: missing header".into()));
    }
    let header = records.remove(0);
    let arity = header.len();
    for (i, row) in records.iter().enumerate() {
        if row.len() != arity {
            return Err(DynError::Parse(format!(
                "row {} has {} fields, header has {arity}",
                i + 2, // 1-based, counting the header line
                row.len()
            )));
        }
    }
    Ok(CsvTable {
        header,
        rows: records,
    })
}

/// Reads and parses a CSV file.
pub fn read_csv_file(path: impl AsRef<Path>) -> Result<CsvTable> {
    let text = std::fs::read_to_string(path)?;
    parse_csv(&text)
}

fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any_char_in_row = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err(DynError::Parse("quote inside unquoted field".into()));
                }
                in_quotes = true;
                any_char_in_row = true;
            }
            ',' => {
                row.push(std::mem::take(&mut field));
                any_char_in_row = true;
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                end_row(&mut records, &mut row, &mut field, &mut any_char_in_row);
            }
            '\n' => end_row(&mut records, &mut row, &mut field, &mut any_char_in_row),
            _ => {
                field.push(c);
                any_char_in_row = true;
            }
        }
    }
    if in_quotes {
        return Err(DynError::Parse("unterminated quoted field".into()));
    }
    if any_char_in_row || !row.is_empty() {
        row.push(field);
        records.push(row);
    }
    Ok(records)
}

fn end_row(
    records: &mut Vec<Vec<String>>,
    row: &mut Vec<String>,
    field: &mut String,
    any_char_in_row: &mut bool,
) {
    // A bare newline with no content is skipped (trailing newline etc.).
    if *any_char_in_row || !row.is_empty() {
        row.push(std::mem::take(field));
        records.push(std::mem::take(row));
    }
    *any_char_in_row = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_table() {
        let t = parse_csv("a,b,c\n1,2,3\n4,5,6\n").unwrap();
        assert_eq!(t.header, vec!["a", "b", "c"]);
        assert_eq!(t.rows, vec![vec!["1", "2", "3"], vec!["4", "5", "6"]]);
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let t = parse_csv("a,b\n\"x,y\",\"line1\nline2\"\n").unwrap();
        assert_eq!(t.rows, vec![vec!["x,y", "line1\nline2"]]);
    }

    #[test]
    fn escaped_quotes() {
        let t = parse_csv("a\n\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.rows, vec![vec!["say \"hi\""]]);
    }

    #[test]
    fn crlf_line_endings() {
        let t = parse_csv("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.rows, vec![vec!["1", "2"]]);
    }

    #[test]
    fn empty_fields_preserved() {
        let t = parse_csv("a,b,c\n,,\nx,,z\n").unwrap();
        assert_eq!(t.rows, vec![vec!["", "", ""], vec!["x", "", "z"]]);
    }

    #[test]
    fn no_trailing_newline() {
        let t = parse_csv("a,b\n1,2").unwrap();
        assert_eq!(t.rows, vec![vec!["1", "2"]]);
    }

    #[test]
    fn ragged_row_rejected() {
        let err = parse_csv("a,b\n1,2,3\n").unwrap_err();
        assert!(matches!(err, DynError::Parse(_)));
        assert!(err.to_string().contains("row 2"));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(parse_csv(""), Err(DynError::Parse(_))));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(matches!(parse_csv("a\n\"oops\n"), Err(DynError::Parse(_))));
    }

    #[test]
    fn schema_from_header() {
        let t = parse_csv("x,y\n1,2\n").unwrap();
        let s = t.schema("point");
        assert_eq!(s.name(), "point");
        assert_eq!(s.arity(), 2);
    }
}
