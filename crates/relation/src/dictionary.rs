//! Per-column value dictionaries.

use std::collections::HashMap;

/// Dense integer code standing in for a column value.
///
/// Codes are assigned in first-seen order and are *stable*: a code, once
/// assigned to a value, refers to that value for the lifetime of the
/// relation, even if every record holding it is deleted. This keeps
/// compressed records immutable and lets PLI clusters be keyed by code.
pub type ValueId = u32;

/// A per-column dictionary mapping string values to [`ValueId`] codes.
///
/// The dictionary only ever grows. The memory held by codes whose values
/// have vanished from the relation is negligible next to the PLIs and
/// compressed records (and real change histories keep re-using values).
#[derive(Clone, Debug, Default)]
pub struct Dictionary {
    codes: HashMap<String, ValueId>,
    values: Vec<String>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Returns the code for `value`, assigning a fresh one if the value
    /// has never been seen.
    pub fn encode(&mut self, value: &str) -> ValueId {
        if let Some(&code) = self.codes.get(value) {
            return code;
        }
        let code = self.values.len() as ValueId;
        self.codes.insert(value.to_string(), code);
        self.values.push(value.to_string());
        code
    }

    /// Returns the code for `value` if one has been assigned.
    pub fn lookup(&self, value: &str) -> Option<ValueId> {
        self.codes.get(value).copied()
    }

    /// Returns the value for a code assigned earlier.
    ///
    /// # Panics
    ///
    /// Panics if `code` was never assigned.
    pub fn decode(&self, code: ValueId) -> &str {
        &self.values[code as usize]
    }

    /// Number of distinct values ever encoded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no value has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode("Potsdam");
        let b = d.encode("Berlin");
        assert_ne!(a, b);
        assert_eq!(d.encode("Potsdam"), a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn codes_are_dense_and_first_seen_ordered() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode("x"), 0);
        assert_eq!(d.encode("y"), 1);
        assert_eq!(d.encode("z"), 2);
    }

    #[test]
    fn decode_roundtrips() {
        let mut d = Dictionary::new();
        let c = d.encode("14482");
        assert_eq!(d.decode(c), "14482");
    }

    #[test]
    fn lookup_without_insert() {
        let mut d = Dictionary::new();
        assert_eq!(d.lookup("a"), None);
        d.encode("a");
        assert_eq!(d.lookup("a"), Some(0));
    }

    #[test]
    fn empty_string_is_a_value() {
        // NULLs are modelled as empty strings and compare equal to each
        // other, the convention of FD discovery tooling.
        let mut d = Dictionary::new();
        let c = d.encode("");
        assert_eq!(d.encode(""), c);
        assert_eq!(d.decode(c), "");
    }
}
