//! # dynfd-persist — durable engine state for DynFD
//!
//! The in-memory [`DynFd`](dynfd_core::DynFd) engine loses everything
//! at process exit; re-profiling a large relation from scratch defeats
//! the point of incremental maintenance. This crate adds classic
//! database durability around it (DESIGN.md §6e):
//!
//! - **[`wal`]** — a write-ahead batch log of length-prefixed,
//!   CRC-32-checksummed frames, appended and `fdatasync`ed *before*
//!   any in-memory mutation;
//! - **[`snapshot`]** — atomic full-state snapshots (write to temp,
//!   fsync, rename, fsync directory) that bound WAL replay;
//! - **[`FdEngine`]** — the wrapper tying both to `DynFd`:
//!   log-before-apply, durable rewind of rejected batches, periodic
//!   snapshots, and [`FdEngine::recover`], which reconstructs a
//!   relation and covers *bit-identical* to a fresh replay of the
//!   surviving batch prefix (violation annotations stay valid; their
//!   exact witness pairs are cache-path-dependent — see
//!   `DynFd::logical_divergence`)
//!   and turns every form of file damage into a typed
//!   [`DynFdError`](dynfd_core::DynFdError) instead of a panic.
//!
//! No serde, no external crates: the formats are hand-rolled binary
//! (see [`codec`]) plus the established `lattice::io` cover text.

pub mod codec;
pub mod crc;
pub mod engine;
pub mod snapshot;
pub mod wal;

pub use engine::{wal_path, CrashPlan, FdEngine, RecoveryReport};
pub use snapshot::{SnapshotState, SNAP_TMP};
pub use wal::{Wal, WalScan, WAL_FILE, WAL_MAGIC};
