//! # dynfd-static
//!
//! Static FD discovery algorithms built on the same substrate as DynFD:
//!
//! * [`hyfd`] — a from-scratch Rust implementation of HyFD [13], the
//!   hybrid (row + column) state of the art. DynFD uses it to bootstrap
//!   its covers from an initial relation (paper Section 2), and the
//!   competitive evaluation (Section 6.4, Figure 7) re-runs it per batch
//!   as the baseline.
//! * [`tane`] — a TANE-style level-wise lattice traversal [8] with
//!   minimality pruning, the canonical column-based algorithm.
//! * [`fdep`] — FDEP [6], the canonical row-based algorithm: all record
//!   pairs → maximal negative cover → dependency induction.
//!
//! All three return the complete set of minimal, non-trivial FDs as an
//! [`FdTree`](dynfd_lattice::FdTree). Three independent implementations
//! exist so the test suite can cross-validate them (and DynFD) against
//! each other on random relations — the strongest correctness oracle
//! available without the original authors' code.

#![warn(missing_docs)]

pub mod fdep;
pub mod hyfd;
pub mod tane;

use dynfd_common::AttrSet;
use dynfd_lattice::FdTree;
use dynfd_relation::DynamicRelation;

/// The trivial positive cover for relations with fewer than two records:
/// every FD holds, so the minimal ones are `∅ -> A` for every attribute.
pub(crate) fn trivial_cover(rel: &DynamicRelation) -> FdTree {
    let mut fds = FdTree::new();
    for a in 0..rel.arity() {
        fds.add(AttrSet::empty(), a);
    }
    fds
}

/// A static discovery algorithm usable as a from-scratch correctness
/// oracle. The three algorithms share no discovery code (column-based,
/// row-based, and hybrid), so agreement between all of them and DynFD's
/// maintained cover is strong evidence of correctness — the differential
/// runner in `dynfd-testkit` iterates [`Oracle::ALL`] after every batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Oracle {
    /// Level-wise lattice traversal (column-based).
    Tane,
    /// All record pairs → negative cover → induction (row-based).
    Fdep,
    /// Hybrid row- and column-based discovery.
    Hyfd,
}

impl Oracle {
    /// All three oracles, in a fixed order.
    pub const ALL: [Oracle; 3] = [Oracle::Tane, Oracle::Fdep, Oracle::Hyfd];

    /// The oracle's name as used in failure reports.
    pub fn name(self) -> &'static str {
        match self {
            Oracle::Tane => "tane",
            Oracle::Fdep => "fdep",
            Oracle::Hyfd => "hyfd",
        }
    }

    /// Runs the algorithm from scratch on `rel`, returning the complete
    /// set of minimal, non-trivial FDs.
    pub fn discover(self, rel: &DynamicRelation) -> FdTree {
        match self {
            Oracle::Tane => tane::discover(rel),
            Oracle::Fdep => fdep::discover(rel),
            Oracle::Hyfd => hyfd::discover(rel),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use dynfd_common::Schema;
    use dynfd_relation::DynamicRelation;

    /// Builds a relation from string rows with an anonymous schema.
    pub fn rel(rows: &[&[&str]]) -> DynamicRelation {
        let arity = rows.first().map_or(2, |r| r.len());
        let rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(|s| s.to_string()).collect())
            .collect();
        DynamicRelation::from_rows(Schema::anonymous("t", arity), &rows).unwrap()
    }

    /// The paper's running example, Table 1 tuples 1-4.
    pub fn paper_relation() -> DynamicRelation {
        rel(&[
            &["Max", "Jones", "14482", "Potsdam"],
            &["Max", "Miller", "14482", "Potsdam"],
            &["Max", "Jones", "10115", "Berlin"],
            &["Anna", "Scott", "13591", "Berlin"],
        ])
    }

    /// Deterministic random relation: `rows` rows, `cols` columns, each
    /// value drawn from a per-column domain of size `domain` with a
    /// simple LCG — enough structure for interesting FD sets.
    pub fn random_relation(seed: u64, rows: usize, cols: usize, domain: u64) -> DynamicRelation {
        let mut x = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut data = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut row = Vec::with_capacity(cols);
            for c in 0..cols {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                // Vary domain per column so some columns are near-keys
                // and some near-constant.
                let d = 1 + (domain + c as u64) % (domain * 2);
                row.push(format!("v{}", (x >> 16) % d));
            }
            data.push(row);
        }
        DynamicRelation::from_rows(Schema::anonymous("rand", cols), &data).unwrap()
    }
}
