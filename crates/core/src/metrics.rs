//! Per-batch work metrics.

use std::time::Duration;

/// Counters describing the work one [`DynFd::apply_batch`]
/// (crate::DynFd::apply_batch) call performed. The §6.5 ablation
/// experiments read these to attribute runtime to the individual
/// pruning strategies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchMetrics {
    /// Wall-clock time of the whole batch (structure updates + both
    /// maintenance phases).
    pub wall_time: Duration,
    /// Wall-clock time of the delete phase (Algorithm 4) alone.
    pub delete_phase_time: Duration,
    /// Wall-clock time of the insert phase (Algorithm 2) alone,
    /// including any triggered violation search.
    pub insert_phase_time: Duration,
    /// Worker threads the validation engine was allowed to use for this
    /// batch (the resolved value of `DynFdConfig::parallelism`). Under
    /// `absorb` this is the maximum across batches, not a sum.
    pub threads_used: usize,
    /// Records inserted (updates count once here and once in `deletes`).
    pub inserts: usize,
    /// Records deleted.
    pub deletes: usize,
    /// FD candidate validations in the insert phase (Algorithm 2).
    pub fd_validations: usize,
    /// Non-FD candidate validations in the delete phase (Algorithm 4),
    /// including those issued by depth-first searches.
    pub non_fd_validations: usize,
    /// Non-FD validations skipped because the cached violating record
    /// pair survived the batch (§5.2 validation pruning).
    pub validations_skipped: usize,
    /// Insert-phase FD validations skipped because the LHS contains a
    /// declared key (§8 extension: key-constraint pruning).
    pub skipped_by_key_constraint: usize,
    /// Candidate validations (both phases) skipped because a pure-update
    /// batch touched none of the candidate's attributes (§8 extension:
    /// update pruning).
    pub skipped_by_update_pruning: usize,
    /// PLI clusters skipped by cluster pruning (§4.2).
    pub clusters_pruned: usize,
    /// PLI clusters actually grouped and checked.
    pub clusters_visited: usize,
    /// Record-pair comparisons performed by the violation search (§4.3).
    pub comparisons: usize,
    /// Violation-search window rounds executed.
    pub search_rounds: usize,
    /// Depth-first searches launched (§5.3 seeds).
    pub dfs_seeds: usize,
    /// Minimal FDs that appeared in this batch.
    pub added_fds: usize,
    /// Minimal FDs that disappeared in this batch.
    pub removed_fds: usize,
    /// Degraded-mode cover rebuilds: the post-batch consistency check
    /// (see `DynFdConfig::consistency`) found the covers corrupted and
    /// both were rebuilt from scratch via a static HyFD run. Always 0
    /// with checking off; nonzero values are an operator signal that
    /// incremental maintenance went wrong.
    pub cover_rebuilds: usize,
    /// Validations that pivoted on a memoized PLI intersection (see
    /// `DynFdConfig::pli_cache`). Always 0 with the cache off.
    pub cache_hits: usize,
    /// Arity ≥ 2 validations that probed the cache and found no usable
    /// subset of their LHS.
    pub cache_misses: usize,
    /// Cache entries evicted (byte budget) or invalidated (patch
    /// failure) during this batch.
    pub cache_evictions: usize,
    /// Approximate resident bytes of the PLI-intersection cache after
    /// the batch. Under `absorb` this is the maximum across batches,
    /// like `threads_used`.
    pub cache_bytes: usize,
    /// Bytes the durable engine (`dynfd-persist`) appended to the
    /// write-ahead batch log for this batch (frame header + payload).
    /// Always 0 for the purely in-memory engine.
    pub wal_bytes: usize,
    /// `fsync`/`fdatasync` calls the durable engine issued for this
    /// batch: one for the WAL append, plus the snapshot-file, directory,
    /// and log-truncation syncs when the batch triggered a snapshot.
    pub fsyncs: usize,
    /// Wall-clock time spent writing a snapshot after this batch
    /// (zero when the snapshot cadence did not fire).
    pub snapshot_time: Duration,
    /// Batches this engine applied while resource governance had
    /// degraded its PLI cache (budget shrunk or cache disabled by
    /// [`DynFd::set_cache_pressure`](crate::DynFd::set_cache_pressure)).
    /// Validation verdicts and covers are unaffected — only the
    /// acceleration layer runs squeezed — but operators watching batch
    /// latency need to know the engine was under memory pressure.
    pub degraded_batches: usize,
    /// WAL frames replayed by the `FdEngine::recover` call that
    /// preceded this batch. The durable engine stamps the count into
    /// the first batch applied after a recovery so longitudinal
    /// consumers ([`FdMonitor`](crate::FdMonitor)) see it; 0 otherwise.
    pub recovery_replayed_batches: usize,
    /// Highest batch sequence number the durable engine has rewound out
    /// of the WAL — a rejected or rolled-back batch whose pre-logged
    /// frame was truncated so it can never reappear after recovery, or
    /// the first frame dropped by corruption truncation. 0 = never.
    /// Under `absorb` this is the maximum across batches.
    pub last_truncated_seq: u64,
    /// Insert-phase validation jobs probed by the sampling-guided
    /// ordering pass (`DynFdConfig::sample_ordering`). Always 0 with
    /// the ordering off.
    pub sampling_probes: usize,
    /// Probed jobs the sample proved invalid (flagged likely-invalid
    /// and scheduled in the first validation wave).
    pub sampling_flagged: usize,
    /// Insert-phase validation jobs never executed because every one of
    /// their candidates was specialized away by witnesses from
    /// earlier-scheduled jobs before their turn came. These jobs still
    /// count in `fd_validations` (the candidate stream is unchanged);
    /// this counter records the work the ordering saved.
    pub sampling_skipped: usize,
    /// SIMD lanes of the PLI-intersection kernel active for this batch
    /// (8 = AVX2, 4 = SSE2, 1 = scalar/disabled). Under `absorb` this
    /// is the maximum across batches, like `threads_used`.
    pub kernel_lanes: usize,
}

impl BatchMetrics {
    /// Total candidate validations the batch issued across both phases
    /// (`fd_validations + non_fd_validations`) — the job count of the
    /// parallel validation engine. Determinism tests compare this across
    /// thread counts: the engine must produce the identical job stream
    /// regardless of how many workers execute it.
    pub fn validation_jobs(&self) -> usize {
        self.fd_validations + self.non_fd_validations
    }

    /// Accumulates another batch's counters (used by the experiment
    /// harness to report per-run totals).
    pub fn absorb(&mut self, other: &BatchMetrics) {
        self.wall_time += other.wall_time;
        self.delete_phase_time += other.delete_phase_time;
        self.insert_phase_time += other.insert_phase_time;
        self.threads_used = self.threads_used.max(other.threads_used);
        self.inserts += other.inserts;
        self.deletes += other.deletes;
        self.fd_validations += other.fd_validations;
        self.non_fd_validations += other.non_fd_validations;
        self.validations_skipped += other.validations_skipped;
        self.skipped_by_key_constraint += other.skipped_by_key_constraint;
        self.skipped_by_update_pruning += other.skipped_by_update_pruning;
        self.clusters_pruned += other.clusters_pruned;
        self.clusters_visited += other.clusters_visited;
        self.comparisons += other.comparisons;
        self.search_rounds += other.search_rounds;
        self.dfs_seeds += other.dfs_seeds;
        self.added_fds += other.added_fds;
        self.removed_fds += other.removed_fds;
        self.cover_rebuilds += other.cover_rebuilds;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_bytes = self.cache_bytes.max(other.cache_bytes);
        self.wal_bytes += other.wal_bytes;
        self.fsyncs += other.fsyncs;
        self.snapshot_time += other.snapshot_time;
        self.degraded_batches += other.degraded_batches;
        self.recovery_replayed_batches += other.recovery_replayed_batches;
        self.last_truncated_seq = self.last_truncated_seq.max(other.last_truncated_seq);
        self.sampling_probes += other.sampling_probes;
        self.sampling_flagged += other.sampling_flagged;
        self.sampling_skipped += other.sampling_skipped;
        self.kernel_lanes = self.kernel_lanes.max(other.kernel_lanes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = BatchMetrics {
            inserts: 2,
            comparisons: 10,
            ..Default::default()
        };
        let b = BatchMetrics {
            inserts: 3,
            comparisons: 5,
            wall_time: Duration::from_millis(7),
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.inserts, 5);
        assert_eq!(a.comparisons, 15);
        assert_eq!(a.wall_time, Duration::from_millis(7));
    }

    #[test]
    fn absorb_takes_max_threads_and_sums_phase_times() {
        let mut a = BatchMetrics {
            threads_used: 4,
            insert_phase_time: Duration::from_millis(3),
            ..Default::default()
        };
        let b = BatchMetrics {
            threads_used: 2,
            insert_phase_time: Duration::from_millis(4),
            delete_phase_time: Duration::from_millis(1),
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.threads_used, 4);
        assert_eq!(a.insert_phase_time, Duration::from_millis(7));
        assert_eq!(a.delete_phase_time, Duration::from_millis(1));
    }

    #[test]
    fn absorb_wal_counters() {
        let mut a = BatchMetrics {
            wal_bytes: 100,
            fsyncs: 1,
            last_truncated_seq: 5,
            ..Default::default()
        };
        let b = BatchMetrics {
            wal_bytes: 50,
            fsyncs: 4,
            snapshot_time: Duration::from_millis(2),
            recovery_replayed_batches: 3,
            last_truncated_seq: 2,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.wal_bytes, 150);
        assert_eq!(a.fsyncs, 5);
        assert_eq!(a.snapshot_time, Duration::from_millis(2));
        assert_eq!(a.recovery_replayed_batches, 3);
        assert_eq!(a.last_truncated_seq, 5, "truncation watermark is a max");
    }

    #[test]
    fn absorb_sampling_and_kernel_counters() {
        let mut a = BatchMetrics {
            sampling_probes: 10,
            sampling_flagged: 4,
            sampling_skipped: 2,
            kernel_lanes: 8,
            ..Default::default()
        };
        let b = BatchMetrics {
            sampling_probes: 5,
            sampling_flagged: 1,
            sampling_skipped: 3,
            kernel_lanes: 4,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.sampling_probes, 15);
        assert_eq!(a.sampling_flagged, 5);
        assert_eq!(a.sampling_skipped, 5);
        assert_eq!(a.kernel_lanes, 8, "lane width is a max, not a sum");
    }
}
