//! Figure 6 — average batch runtime vs. batch size (log–log).
//!
//! Batch sizes 10 → 1,000 over the first 10,000 changes per dataset.
//! Expected shape: sub-linear growth — the paper observes that 100×
//! more changes per batch cost only about 10× more time per batch,
//! because level-wise cover validation is a per-batch constant.

use crate::experiments::{Ctx, CHANGE_CAP};
use crate::report::{ms, Table};
use crate::runner::run_dynfd;
use dynfd_core::DynFdConfig;

/// The batch sizes swept (the paper scales 10 → 1,000).
pub const BATCH_SIZES: &[usize] = &[10, 50, 100, 500, 1000];

/// At most this many batches are timed per (dataset, size): the metric
/// is a per-batch *average*, which stabilizes long before the paper's
/// 10,000-change cap on the biggest dataset (`artist` at batch size 10
/// would otherwise run 1,000 multi-second batches for one cell).
/// Documented in EXPERIMENTS.md.
pub const MAX_BATCHES: usize = 100;

/// Runs the experiment and returns the rendered table
/// (rows = datasets, columns = batch sizes, cells = avg batch ms).
pub fn run(ctx: &Ctx) -> Table {
    let mut header: Vec<String> = vec!["Dataset".into()];
    header.extend(BATCH_SIZES.iter().map(|b| format!("avg[ms]@{b}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for name in ctx.names() {
        let data = ctx.dataset(name);
        let mut cells = vec![name.to_string()];
        for &batch_size in BATCH_SIZES {
            let limit = CHANGE_CAP.min(batch_size.saturating_mul(MAX_BATCHES));
            let outcome = run_dynfd(&data, batch_size, Some(limit), DynFdConfig::default());
            cells.push(ms(outcome.avg_batch_ms()));
        }
        table.row(cells);
    }
    table
}
