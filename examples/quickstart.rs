//! Quickstart: the paper's running example (Table 1).
//!
//! Bootstraps DynFD over four people records, applies the paper's batch
//! (delete tuple 3, insert tuples 5 and 6), and prints how the minimal
//! functional dependencies evolve.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dynfd::common::{RecordId, Schema};
use dynfd::core::{DynFd, DynFdConfig};
use dynfd::relation::{Batch, DynamicRelation};

fn main() {
    // Table 1 of the paper: four initial tuples.
    let schema = Schema::of("people", &["firstname", "lastname", "zip", "city"]);
    let rel = DynamicRelation::from_rows(
        schema.clone(),
        &[
            vec!["Max", "Jones", "14482", "Potsdam"],
            vec!["Max", "Miller", "14482", "Potsdam"],
            vec!["Max", "Jones", "10115", "Berlin"],
            vec!["Anna", "Scott", "13591", "Berlin"],
        ],
    )
    .expect("rows match the schema");

    // Bootstrap: static HyFD discovery + cover inversion (Algorithm 1).
    let mut dynfd = DynFd::new(rel, DynFdConfig::default());
    println!("initial minimal FDs ({}):", dynfd.minimal_fds().len());
    for fd in dynfd.minimal_fds() {
        println!("  {}", fd.display(&schema));
    }

    // The batch of Table 1: "-" tuple 3 (id 2), "+" tuples 5 and 6.
    let mut batch = Batch::new();
    batch
        .delete(RecordId(2))
        .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
        .insert(vec!["Marie", "Gray", "14469", "Potsdam"]);
    let result = dynfd.apply_batch(&batch).expect("valid batch");

    println!(
        "\nafter the batch (processed in {:?}):",
        result.metrics.wall_time
    );
    for fd in &result.removed {
        println!("  - {}", fd.display(&schema));
    }
    for fd in &result.added {
        println!("  + {}", fd.display(&schema));
    }

    println!("\ncurrent minimal FDs ({}):", dynfd.minimal_fds().len());
    for fd in dynfd.minimal_fds() {
        println!("  {}", fd.display(&schema));
    }
}
