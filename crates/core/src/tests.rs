//! Crate-level tests for the DynFD maintenance algorithm: the paper's
//! worked example (Figures 2 → 3 → 4) and oracle cross-validation
//! against static rediscovery under every pruning configuration.

use crate::{
    ConsistencyLevel, DynFd, DynFdConfig, DynFdError, FailAction, FailPhase, FailPoint, FdMonitor,
    SearchMode,
};
use dynfd_common::{AttrSet, Fd, RecordId, Schema};
use dynfd_lattice::FdTree;
use dynfd_relation::{Batch, DynamicRelation};

fn s(attrs: &[usize]) -> AttrSet {
    attrs.iter().copied().collect()
}

fn fd(lhs: &[usize], rhs: usize) -> Fd {
    Fd::new(s(lhs), rhs)
}

fn tree(fds: &[(&[usize], usize)]) -> FdTree {
    fds.iter().map(|&(l, r)| fd(l, r)).collect()
}

/// Table 1, initial tuples (f=0, l=1, z=2, c=3), ids 0-3.
fn paper_relation() -> DynamicRelation {
    let schema = Schema::of("people", &["firstname", "lastname", "zip", "city"]);
    DynamicRelation::from_rows(
        schema,
        &[
            vec!["Max", "Jones", "14482", "Potsdam"],
            vec!["Max", "Miller", "14482", "Potsdam"],
            vec!["Max", "Jones", "10115", "Berlin"],
            vec!["Anna", "Scott", "13591", "Berlin"],
        ],
    )
    .unwrap()
}

/// All 16 strategy combinations of §6.5.
fn all_configs() -> Vec<DynFdConfig> {
    let mut configs = Vec::new();
    for cluster in [false, true] {
        for search in [SearchMode::Naive, SearchMode::Progressive] {
            for validation in [false, true] {
                for dfs in [false, true] {
                    configs.push(DynFdConfig {
                        cluster_pruning: cluster,
                        violation_search: search,
                        validation_pruning: validation,
                        depth_first_search: dfs,
                        ..DynFdConfig::default()
                    });
                }
            }
        }
    }
    configs
}

#[test]
fn bootstrap_matches_figure_2() {
    let dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    // Minimal FDs: l→f, z→f, z→c, fc→z, lc→z.
    let expect = tree(&[(&[1], 0), (&[2], 0), (&[2], 3), (&[0, 3], 2), (&[1, 3], 2)]);
    assert_eq!(dynfd.positive_cover(), &expect);
    // Maximal non-FDs (Section 3.2): fzc→l, fl→z, fl→c, c→f, c→z.
    let expect_neg = tree(&[
        (&[0, 2, 3], 1),
        (&[0, 1], 2),
        (&[0, 1], 3),
        (&[3], 0),
        (&[3], 2),
    ]);
    assert_eq!(dynfd.negative_cover(), &expect_neg);
    dynfd.verify_consistency().unwrap();
}

#[test]
fn insert_scenario_matches_figure_3() {
    // Section 4.1's worked example: insert tuples 5 and 6 (no delete).
    // Afterwards l→f and fc→z are invalid; minimal FDs become
    // z→f, z→c, lc→f, lc→z  ... per Figure 3: the dark green cells are
    // z→f, z→c, lc→z, lc→f? The text says: "l → f is not valid anymore";
    // "the only new candidate is lc → f"; "f c → z is also invalid",
    // no new candidates. So minimal FDs: z→f, z→c, lc→z, lc→f.
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    let mut batch = Batch::new();
    batch
        .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
        .insert(vec!["Marie", "Gray", "14469", "Potsdam"]);
    let result = dynfd.apply_batch(&batch).unwrap();

    let expect = tree(&[(&[2], 0), (&[2], 3), (&[1, 3], 0), (&[1, 3], 2)]);
    assert_eq!(dynfd.positive_cover(), &expect, "Figure 3 lattice");
    assert!(result.removed.contains(&fd(&[1], 0)), "l→f invalidated");
    assert!(result.removed.contains(&fd(&[0, 3], 2)), "fc→z invalidated");
    assert!(
        result.added.contains(&fd(&[1, 3], 0)),
        "lc→f new minimal FD"
    );
    dynfd.verify_consistency().unwrap();
}

#[test]
fn full_paper_batch_table_1() {
    // The complete batch of Table 1: delete tuple 3 (id 2), insert
    // tuples 5 and 6. Section 2: "while the FD z → c continues to be a
    // minimal FD ... f → c becomes a new minimal FD and f c → z ceases
    // to be a (minimal) FD."
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    let mut batch = Batch::new();
    batch
        .delete(RecordId(2))
        .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
        .insert(vec!["Marie", "Gray", "14469", "Potsdam"]);
    dynfd.apply_batch(&batch).unwrap();

    let fds = dynfd.minimal_fds();
    assert!(fds.contains(&fd(&[2], 3)), "z→c still minimal");
    assert!(fds.contains(&fd(&[0], 3)), "f→c newly minimal");
    assert!(!fds.contains(&fd(&[0, 3], 2)), "fc→z no longer an FD");
    dynfd.verify_consistency().unwrap();
    // Oracle: static rediscovery on the final state.
    let oracle = dynfd_static::tane::discover(dynfd.relation());
    assert_eq!(dynfd.positive_cover(), &oracle);
}

#[test]
fn delete_scenario_matches_figure_4() {
    // Section 5.1's worked example operates on the *post-insert* state
    // (Figure 3) and then validates non-FDs bottom-up after deleting a
    // violating record. The paper walks the lattice abstractly; here we
    // reproduce the concrete end state: starting from Figure 3 (after
    // the two inserts), delete record 2 ("Max Jones 10115 Berlin") and
    // record 3 ("Anna Scott ..."): fl→z, fl→c, f→c become relevant.
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    let mut batch = Batch::new();
    batch
        .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
        .insert(vec!["Marie", "Gray", "14469", "Potsdam"]);
    dynfd.apply_batch(&batch).unwrap();

    let mut batch = Batch::new();
    batch.delete(RecordId(2));
    dynfd.apply_batch(&batch).unwrap();
    dynfd.verify_consistency().unwrap();
    // Figure 4's minimal FD set (after the paper's delete walk-through):
    // six minimal FDs including the new f→c and fl→z / fl→c outcomes.
    let oracle = dynfd_static::tane::discover(dynfd.relation());
    assert_eq!(dynfd.positive_cover(), &oracle);
    assert_eq!(
        dynfd.minimal_fds().len(),
        6,
        "six minimal FDs per Section 5.1"
    );
}

#[test]
fn deletes_only_batch() {
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    let mut batch = Batch::new();
    batch.delete(RecordId(0)).delete(RecordId(1));
    dynfd.apply_batch(&batch).unwrap();
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn delete_everything_then_reinsert() {
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    let mut batch = Batch::new();
    for i in 0..4 {
        batch.delete(RecordId(i));
    }
    dynfd.apply_batch(&batch).unwrap();
    assert!(dynfd.relation().is_empty());
    // Empty relation: every FD holds; minimal cover is ∅→A for all A.
    assert_eq!(
        dynfd.minimal_fds(),
        (0..4)
            .map(|a| Fd::new(AttrSet::empty(), a))
            .collect::<Vec<_>>()
    );
    dynfd.verify_consistency().unwrap();

    let mut batch = Batch::new();
    batch
        .insert(vec!["a", "b", "c", "d"])
        .insert(vec!["a", "x", "c", "y"]);
    dynfd.apply_batch(&batch).unwrap();
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn update_heavy_batch() {
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    let mut batch = Batch::new();
    batch
        .update(RecordId(0), vec!["Max", "Jones", "14482", "Golm"])
        .update(RecordId(3), vec!["Anna", "Scott", "14482", "Golm"]);
    dynfd.apply_batch(&batch).unwrap();
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn empty_batch_changes_nothing() {
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    let before = dynfd.minimal_fds();
    let result = dynfd.apply_batch(&Batch::new()).unwrap();
    assert!(result.is_unchanged());
    assert_eq!(dynfd.minimal_fds(), before);
}

#[test]
fn failed_batch_leaves_state_intact() {
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    let before = dynfd.minimal_fds();
    let mut batch = Batch::new();
    batch.insert(vec!["X", "Y", "Z", "W"]).delete(RecordId(77));
    assert!(dynfd.apply_batch(&batch).is_err());
    assert_eq!(dynfd.minimal_fds(), before);
    assert_eq!(dynfd.relation().len(), 4);
    dynfd.verify_consistency().unwrap();
}

#[test]
fn all_sixteen_configs_agree_on_the_paper_example() {
    for config in all_configs() {
        let mut dynfd = DynFd::new(paper_relation(), config);
        let mut batch = Batch::new();
        batch
            .delete(RecordId(2))
            .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
            .insert(vec!["Marie", "Gray", "14469", "Potsdam"]);
        dynfd.apply_batch(&batch).unwrap();
        dynfd
            .verify_consistency()
            .unwrap_or_else(|e| panic!("config {}: {e}", config.strategy_label()));
        let oracle = dynfd_static::tane::discover(dynfd.relation());
        assert_eq!(
            dynfd.positive_cover(),
            &oracle,
            "config {} diverged from oracle",
            config.strategy_label()
        );
    }
}

/// Deterministic pseudo-random change stream over a 5-column relation,
/// cross-validated against static rediscovery after every batch for
/// every pruning configuration.
#[test]
fn random_change_streams_match_static_rediscovery() {
    for config in [
        DynFdConfig::default(),
        DynFdConfig::baseline(),
        DynFdConfig {
            validation_pruning: false,
            ..DynFdConfig::default()
        },
        DynFdConfig {
            cluster_pruning: false,
            ..DynFdConfig::default()
        },
    ] {
        for seed in 0..4u64 {
            run_random_stream(seed, config);
        }
    }
}

fn run_random_stream(seed: u64, config: DynFdConfig) {
    let cols = 5usize;
    let mut x = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(0xD1B54A32D192ED03);
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 16
    };
    let row = |next: &mut dyn FnMut() -> u64| -> Vec<String> {
        (0..cols)
            .map(|c| format!("v{}", next() % (2 + c as u64 * 2)))
            .collect()
    };

    // Initial relation: 25 rows.
    let rows: Vec<Vec<String>> = (0..25).map(|_| row(&mut next)).collect();
    let rel = DynamicRelation::from_rows(Schema::anonymous("rand", cols), &rows).unwrap();
    let mut dynfd = DynFd::new(rel, config);
    let mut live: Vec<RecordId> = (0..25).map(RecordId).collect();
    let mut next_id = 25u64;

    for batch_no in 0..6 {
        let mut batch = Batch::new();
        for _ in 0..5 {
            match next() % 3 {
                0 => {
                    batch.insert(row(&mut next));
                    live.push(RecordId(next_id));
                    next_id += 1;
                }
                1 if !live.is_empty() => {
                    let idx = (next() as usize) % live.len();
                    batch.delete(live.swap_remove(idx));
                }
                _ if !live.is_empty() => {
                    let idx = (next() as usize) % live.len();
                    batch.update(live.swap_remove(idx), row(&mut next));
                    live.push(RecordId(next_id));
                    next_id += 1;
                }
                _ => {
                    batch.insert(row(&mut next));
                    live.push(RecordId(next_id));
                    next_id += 1;
                }
            }
        }
        dynfd.apply_batch(&batch).unwrap();
        dynfd.verify_consistency().unwrap_or_else(|e| {
            panic!(
                "seed {seed} batch {batch_no} config {}: {e}",
                config.strategy_label()
            )
        });
        let oracle = dynfd_static::fdep::discover(dynfd.relation());
        assert_eq!(
            dynfd.positive_cover(),
            &oracle,
            "seed {seed} batch {batch_no} config {}",
            config.strategy_label()
        );
    }
}

#[test]
fn validation_pruning_actually_skips_work() {
    // Two delete batches: the second should skip validations thanks to
    // annotations collected during the first.
    let schema = Schema::anonymous("t", 3);
    let rows: Vec<Vec<String>> = (0..30)
        .map(|i| {
            vec![
                format!("a{}", i % 3),
                format!("b{}", i % 5),
                format!("c{i}"),
            ]
        })
        .collect();
    let rel = DynamicRelation::from_rows(schema, &rows).unwrap();
    let mut dynfd = DynFd::new(rel, DynFdConfig::default());

    let mut batch = Batch::new();
    batch.delete(RecordId(0));
    let r1 = dynfd.apply_batch(&batch).unwrap();
    assert!(
        r1.metrics.non_fd_validations > 0,
        "first batch collects annotations"
    );
    assert!(dynfd.annotation_count() > 0);

    let mut batch = Batch::new();
    batch.delete(RecordId(1));
    let r2 = dynfd.apply_batch(&batch).unwrap();
    assert!(
        r2.metrics.validations_skipped > 0,
        "second batch must skip annotated non-FDs"
    );
    dynfd.verify_consistency().unwrap();
}

#[test]
fn cluster_pruning_skips_clusters() {
    let schema = Schema::anonymous("t", 3);
    let rows: Vec<Vec<String>> = (0..40)
        .map(|i| {
            vec![
                format!("g{}", i % 8),
                format!("h{}", i % 8),
                format!("u{i}"),
            ]
        })
        .collect();
    let rel = DynamicRelation::from_rows(schema, &rows).unwrap();
    let mut dynfd = DynFd::new(rel, DynFdConfig::default());
    let mut batch = Batch::new();
    batch.insert(vec!["g0".into(), "h0".into(), "fresh".to_string()]);
    let result = dynfd.apply_batch(&batch).unwrap();
    assert!(
        result.metrics.clusters_pruned > 0,
        "old clusters must be pruned"
    );
    dynfd.verify_consistency().unwrap();
}

#[test]
fn with_cover_accepts_preprofiled_fds() {
    let rel = paper_relation();
    let fds = dynfd_static::hyfd::discover(&rel);
    let dynfd = DynFd::with_cover(rel, fds.clone(), DynFdConfig::default());
    assert_eq!(dynfd.positive_cover(), &fds);
    dynfd.verify_consistency().unwrap();
}

#[test]
fn single_column_relation() {
    let rel = DynamicRelation::from_rows(
        Schema::anonymous("one", 1),
        &[vec!["a"], vec!["a"], vec!["b"]],
    )
    .unwrap();
    let mut dynfd = DynFd::new(rel, DynFdConfig::default());
    assert!(
        dynfd.minimal_fds().is_empty(),
        "nothing determines the only column"
    );
    // Delete "b": the column becomes constant → ∅ -> 0 appears.
    let mut batch = Batch::new();
    batch.delete(RecordId(2));
    let result = dynfd.apply_batch(&batch).unwrap();
    assert_eq!(result.added, vec![Fd::new(AttrSet::empty(), 0)]);
    dynfd.verify_consistency().unwrap();
}

#[test]
fn violation_search_triggers_on_noisy_insert_batches() {
    // A relation with many valid FDs, then a batch of inserts that
    // violates most of them: the per-level invalid ratio exceeds 10 %
    // and the progressive violation search must kick in.
    let schema = Schema::anonymous("t", 5);
    let rows: Vec<Vec<String>> = (0..30)
        .map(|i| {
            let g = i % 3;
            vec![
                format!("a{g}"),
                format!("b{g}"),
                format!("c{g}"),
                format!("d{g}"),
                format!("u{i}"),
            ]
        })
        .collect();
    let rel = DynamicRelation::from_rows(schema, &rows).unwrap();
    let mut dynfd = DynFd::new(rel, DynFdConfig::default());
    let mut batch = Batch::new();
    for i in 0..6 {
        // Same `a` group as existing rows, scrambled everywhere else.
        batch.insert(vec![
            format!("a{}", i % 3),
            format!("B{i}"),
            format!("C{}", 5 - i),
            format!("D{}", i * 7 % 5),
            format!("u{}", 100 + i),
        ]);
    }
    let result = dynfd.apply_batch(&batch).unwrap();
    assert!(
        result.metrics.search_rounds > 0,
        "violation search must trigger"
    );
    assert!(result.metrics.comparisons > 0);
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn naive_search_runs_exactly_one_round_per_trigger() {
    let schema = Schema::anonymous("t", 4);
    let rows: Vec<Vec<String>> = (0..24)
        .map(|i| {
            vec![
                format!("a{}", i % 2),
                format!("b{}", i % 2),
                format!("c{}", i % 2),
                format!("u{i}"),
            ]
        })
        .collect();
    let rel = DynamicRelation::from_rows(schema, &rows).unwrap();
    let config = DynFdConfig {
        violation_search: SearchMode::Naive,
        ..DynFdConfig::default()
    };
    let mut dynfd = DynFd::new(rel, config);
    let mut batch = Batch::new();
    for i in 0..5 {
        batch.insert(vec![
            format!("a{}", i % 2),
            format!("B{i}"),
            format!("C{i}"),
            format!("u{}", 50 + i),
        ]);
    }
    let result = dynfd.apply_batch(&batch).unwrap();
    // Naive mode: each trigger runs exactly one window round, so rounds
    // equal the number of triggering levels.
    if result.metrics.search_rounds > 0 {
        assert!(
            result.metrics.search_rounds <= 4,
            "one round per triggering level"
        );
    }
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn depth_first_search_triggers_on_resolving_deletes() {
    // Construct data where a handful of "dirty" rows carry all the
    // violations; deleting them validates many non-FDs at once, pushing
    // the per-level valid ratio over 10 % and launching DFS seeds.
    let schema = Schema::anonymous("t", 5);
    let mut rows: Vec<Vec<String>> = (0..20)
        .map(|i| {
            let g = i % 4;
            vec![
                format!("a{g}"),
                format!("b{g}"),
                format!("c{g}"),
                format!("d{g}"),
                format!("u{i}"),
            ]
        })
        .collect();
    // Dirty rows: share `a` groups but scramble b/c/d.
    rows.push(vec![
        "a0".into(),
        "bX".into(),
        "cY".into(),
        "dZ".into(),
        "u100".into(),
    ]);
    rows.push(vec![
        "a1".into(),
        "bY".into(),
        "cZ".into(),
        "dX".into(),
        "u101".into(),
    ]);
    rows.push(vec![
        "a2".into(),
        "bZ".into(),
        "cX".into(),
        "dY".into(),
        "u102".into(),
    ]);
    let rel = DynamicRelation::from_rows(schema, &rows).unwrap();
    let mut dynfd = DynFd::new(rel, DynFdConfig::default());

    let mut batch = Batch::new();
    batch
        .delete(RecordId(20))
        .delete(RecordId(21))
        .delete(RecordId(22));
    let result = dynfd.apply_batch(&batch).unwrap();
    assert!(!result.added.is_empty(), "deletes must resolve some FDs");
    assert!(
        result.metrics.dfs_seeds > 0,
        "DFS must trigger: {:?}",
        result.metrics
    );
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn dfs_disabled_config_never_launches_seeds() {
    let schema = Schema::anonymous("t", 4);
    let mut rows: Vec<Vec<String>> = (0..16)
        .map(|i| {
            vec![
                format!("a{}", i % 4),
                format!("b{}", i % 4),
                format!("c{}", i % 4),
                format!("u{i}"),
            ]
        })
        .collect();
    rows.push(vec!["a0".into(), "bX".into(), "cY".into(), "u50".into()]);
    let rel = DynamicRelation::from_rows(schema, &rows).unwrap();
    let config = DynFdConfig {
        depth_first_search: false,
        ..DynFdConfig::default()
    };
    let mut dynfd = DynFd::new(rel, config);
    let mut batch = Batch::new();
    batch.delete(RecordId(16));
    let result = dynfd.apply_batch(&batch).unwrap();
    assert_eq!(result.metrics.dfs_seeds, 0);
    dynfd.verify_consistency().unwrap();
}

#[test]
fn key_constraint_pruning_skips_key_lhs_fds() {
    // Column 0 is a genuine key in this data and declared as such.
    let schema = Schema::anonymous("t", 4);
    let rows: Vec<Vec<String>> = (0..20)
        .map(|i| {
            vec![
                format!("k{i}"),
                format!("a{}", i % 3),
                format!("b{}", i % 4),
                format!("c{}", i % 2),
            ]
        })
        .collect();
    let rel = DynamicRelation::from_rows(schema, &rows).unwrap();
    let config = DynFdConfig {
        known_keys: AttrSet::single(0),
        ..DynFdConfig::default()
    };
    let mut dynfd = DynFd::new(rel, config);

    let mut batch = Batch::new();
    batch.insert(vec![
        "k99".into(),
        "a1".into(),
        "b2".to_string(),
        "c0".into(),
    ]);
    let result = dynfd.apply_batch(&batch).unwrap();
    assert!(
        result.metrics.skipped_by_key_constraint > 0,
        "key-LHS FDs must be skipped, metrics: {:?}",
        result.metrics
    );
    // The optimization must not change the result.
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn update_pruning_skips_untouched_candidates() {
    let schema = Schema::anonymous("t", 4);
    let rows: Vec<Vec<String>> = (0..20)
        .map(|i| {
            vec![
                format!("a{}", i % 3),
                format!("b{}", i % 4),
                format!("c{}", i % 2),
                format!("d{}", i % 5),
            ]
        })
        .collect();
    let rel = DynamicRelation::from_rows(schema, &rows).unwrap();
    let config = DynFdConfig {
        update_pruning: true,
        ..DynFdConfig::default()
    };
    let mut dynfd = DynFd::new(rel, config);

    // A pure-update batch touching only column 3.
    let mut batch = Batch::new();
    batch.update(RecordId(0), vec!["a0", "b0", "c0", "dX"]);
    batch.update(RecordId(1), vec!["a1", "b1", "c1", "dY"]);
    let result = dynfd.apply_batch(&batch).unwrap();
    assert!(
        result.metrics.skipped_by_update_pruning > 0,
        "untouched candidates must be skipped, metrics: {:?}",
        result.metrics
    );
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn update_pruning_disabled_for_mixed_batches() {
    let schema = Schema::anonymous("t", 3);
    let rows: Vec<Vec<String>> = (0..10)
        .map(|i| {
            vec![
                format!("a{}", i % 2),
                format!("b{}", i % 3),
                format!("c{i}"),
            ]
        })
        .collect();
    let rel = DynamicRelation::from_rows(schema, &rows).unwrap();
    let config = DynFdConfig {
        update_pruning: true,
        ..DynFdConfig::default()
    };
    let mut dynfd = DynFd::new(rel, config);

    // Mixed batch: the pure insert makes update pruning inapplicable.
    let mut batch = Batch::new();
    batch
        .update(RecordId(0), vec!["a0", "b0", "cX"])
        .insert(vec!["a1", "b1", "cY"]);
    let result = dynfd.apply_batch(&batch).unwrap();
    assert_eq!(result.metrics.skipped_by_update_pruning, 0);
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn update_pruning_random_streams_stay_exact() {
    // Same oracle harness as the main random test, update-only batches.
    let cols = 4usize;
    let mut x = 0xFEED_u64;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 16
    };
    let rows: Vec<Vec<String>> = (0..20)
        .map(|_| {
            (0..cols)
                .map(|c| format!("v{}", next() % (2 + c as u64)))
                .collect()
        })
        .collect();
    let rel = DynamicRelation::from_rows(Schema::anonymous("u", cols), &rows).unwrap();
    let config = DynFdConfig {
        update_pruning: true,
        ..DynFdConfig::default()
    };
    let mut dynfd = DynFd::new(rel, config);
    let mut live: Vec<RecordId> = (0..20).map(RecordId).collect();
    let mut next_id = 20u64;
    for _ in 0..6 {
        let mut batch = Batch::new();
        let mut created = Vec::new();
        for _ in 0..3 {
            let idx = (next() as usize) % live.len();
            let rid = live.swap_remove(idx);
            // Touch one column only.
            let mut row = dynfd.relation().materialize(rid).unwrap();
            let c = (next() as usize) % cols;
            row[c] = format!("v{}", next() % (2 + c as u64));
            batch.update(rid, row);
            created.push(RecordId(next_id));
            next_id += 1;
        }
        live.extend(created);
        dynfd.apply_batch(&batch).unwrap();
        dynfd.verify_consistency().unwrap();
        assert_eq!(
            dynfd.positive_cover(),
            &dynfd_static::fdep::discover(dynfd.relation())
        );
    }
}

#[test]
fn metrics_report_batch_composition() {
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    let mut batch = Batch::new();
    batch
        .update(RecordId(0), vec!["Max", "Jones", "14482", "Golm"])
        .delete(RecordId(1));
    let result = dynfd.apply_batch(&batch).unwrap();
    assert_eq!(result.metrics.inserts, 1);
    assert_eq!(result.metrics.deletes, 2);
    assert!(result.metrics.wall_time.as_nanos() > 0);
}

// ---------------------------------------------------------------------------
// Transactional apply_batch: fault injection, rollback, degraded recovery.
// ---------------------------------------------------------------------------

fn insert_batch() -> Batch {
    let mut batch = Batch::new();
    batch
        .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
        .insert(vec!["Marie", "Gray", "14469", "Potsdam"]);
    batch
}

#[test]
fn insert_phase_panic_rolls_back_to_pre_batch_state() {
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    let pristine = dynfd.clone();
    dynfd.arm_failpoint(FailPoint {
        phase: FailPhase::InsertPhase,
        after_validations: 0,
        action: FailAction::Panic,
    });

    let err = dynfd.apply_batch(&insert_batch()).unwrap_err();
    match &err {
        DynFdError::PhasePanicked { phase, detail } => {
            assert_eq!(*phase, "insert-phase");
            assert!(detail.contains("injected failpoint"), "payload: {detail}");
        }
        other => panic!("expected PhasePanicked, got {other:?}"),
    }
    assert!(!err.is_rejection(), "a panic is an internal fault");
    assert_eq!(err.exit_code(), 10);

    assert_eq!(
        dynfd.state_divergence(&pristine),
        None,
        "failed batch must leave no trace"
    );
    assert!(
        dynfd.armed_failpoint().is_none(),
        "failpoint disarms on trip"
    );
    dynfd.verify_consistency().unwrap();

    // The very same batch succeeds on retry and matches the oracle.
    dynfd.apply_batch(&insert_batch()).unwrap();
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn delete_phase_panic_rolls_back_to_pre_batch_state() {
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    let pristine = dynfd.clone();
    dynfd.arm_failpoint(FailPoint {
        phase: FailPhase::DeletePhase,
        after_validations: 0,
        action: FailAction::Panic,
    });

    let mut batch = Batch::new();
    batch.delete(RecordId(2)).delete(RecordId(3));
    let err = dynfd.apply_batch(&batch).unwrap_err();
    assert!(matches!(
        err,
        DynFdError::PhasePanicked {
            phase: "delete-phase",
            ..
        }
    ));
    assert!(dynfd.state_eq(&pristine));
    dynfd.verify_consistency().unwrap();

    dynfd.apply_batch(&batch).unwrap();
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn mixed_batch_panic_restores_relation_and_covers_bit_identically() {
    // A batch with deletes, inserts and an update, panicking in the
    // insert phase: the delete phase already mutated the covers, so the
    // rollback must restore both the relation (undo log) and the covers
    // (snapshots).
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    let pristine = dynfd.clone();
    dynfd.arm_failpoint(FailPoint {
        phase: FailPhase::InsertPhase,
        after_validations: 0,
        action: FailAction::Panic,
    });

    let mut batch = Batch::new();
    batch
        .delete(RecordId(2))
        .update(RecordId(0), vec!["Max", "Jones", "10115", "Berlin"])
        .insert(vec!["Marie", "Gray", "14469", "Potsdam"]);
    dynfd.apply_batch(&batch).unwrap_err();
    assert_eq!(dynfd.state_divergence(&pristine), None);

    dynfd.apply_batch(&batch).unwrap();
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn cover_corruption_triggers_degraded_rebuild_under_cheap_consistency() {
    let config = DynFdConfig {
        consistency: ConsistencyLevel::Cheap,
        ..DynFdConfig::default()
    };
    let mut dynfd = DynFd::new(paper_relation(), config);
    let mut monitor = FdMonitor::new(&dynfd.minimal_fds());
    dynfd.arm_failpoint(FailPoint {
        phase: FailPhase::InsertPhase,
        after_validations: 0,
        action: FailAction::DropCoverFd,
    });

    let result = dynfd.apply_batch(&insert_batch()).unwrap();
    assert_eq!(result.metrics.cover_rebuilds, 1, "corruption was repaired");
    assert_eq!(dynfd.recovery_count(), 1);
    assert!(dynfd.last_breach().is_some());
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );

    let report = monitor.observe(&result);
    assert!(report.recovered, "monitor surfaces the rebuild");
    assert_eq!(monitor.recovery_count(), 1);
}

#[test]
fn cover_corruption_triggers_degraded_rebuild_under_full_consistency() {
    let config = DynFdConfig {
        consistency: ConsistencyLevel::Full,
        ..DynFdConfig::default()
    };
    let mut dynfd = DynFd::new(paper_relation(), config);
    dynfd.arm_failpoint(FailPoint {
        phase: FailPhase::InsertPhase,
        after_validations: 0,
        action: FailAction::DropCoverFd,
    });

    let result = dynfd.apply_batch(&insert_batch()).unwrap();
    assert_eq!(result.metrics.cover_rebuilds, 1);
    assert_eq!(dynfd.recovery_count(), 1);
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn delete_phase_corruption_ends_consistent_either_way() {
    // Corruption planted mid-delete-phase may be swept coincidentally:
    // a later promotion's `add_minimal` prunes specializations, which
    // can include the planted redundant FD. Either way the batch must
    // end consistent — repaired by the degraded-mode rebuild if the
    // corruption survived, untouched-correct if it was swept.
    let config = DynFdConfig {
        consistency: ConsistencyLevel::Cheap,
        ..DynFdConfig::default()
    };
    let mut dynfd = DynFd::new(paper_relation(), config);
    dynfd.arm_failpoint(FailPoint {
        phase: FailPhase::DeletePhase,
        after_validations: 0,
        action: FailAction::DropCoverFd,
    });

    let mut batch = Batch::new();
    batch.delete(RecordId(3));
    dynfd.apply_batch(&batch).unwrap();
    assert!(dynfd.armed_failpoint().is_none(), "failpoint tripped");
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn consistency_off_lets_corruption_persist_until_manual_rebuild() {
    // Default mode pays no per-batch consistency cost, so an injected
    // corruption survives the batch; rebuild_covers() repairs on demand.
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    dynfd.arm_failpoint(FailPoint {
        phase: FailPhase::InsertPhase,
        after_validations: 0,
        action: FailAction::DropCoverFd,
    });

    let result = dynfd.apply_batch(&insert_batch()).unwrap();
    assert_eq!(result.metrics.cover_rebuilds, 0);
    assert!(
        dynfd.verify_consistency().is_err(),
        "corruption goes undetected with consistency checks off"
    );

    dynfd.rebuild_covers();
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd_static::tane::discover(dynfd.relation())
    );
}

#[test]
fn failpoint_only_fires_in_its_phase() {
    // An insert-phase failpoint must not trip on a delete-only batch.
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    dynfd.arm_failpoint(FailPoint {
        phase: FailPhase::InsertPhase,
        after_validations: 0,
        action: FailAction::Panic,
    });
    let mut batch = Batch::new();
    batch.delete(RecordId(1));
    dynfd.apply_batch(&batch).unwrap();
    dynfd.verify_consistency().unwrap();
    assert!(
        dynfd.armed_failpoint().is_some(),
        "untripped failpoint stays armed"
    );
}

#[test]
fn rejected_batch_reports_no_divergence_from_clone() {
    let mut dynfd = DynFd::new(paper_relation(), DynFdConfig::default());
    let pristine = dynfd.clone();
    let mut batch = Batch::new();
    batch
        .insert(vec!["Eve", "Stone", "10999", "Berlin"])
        .delete(RecordId(4711));
    assert!(matches!(
        dynfd.apply_batch(&batch),
        Err(DynFdError::UnknownRecord(RecordId(4711)))
    ));
    assert_eq!(dynfd.state_divergence(&pristine), None);
}

#[test]
fn state_divergence_pinpoints_differences() {
    let a = DynFd::new(paper_relation(), DynFdConfig::default());
    let b = a.clone();
    assert_eq!(a.state_divergence(&b), None);
    assert!(a.state_eq(&b));

    let mut c = a.clone();
    let mut batch = Batch::new();
    batch.delete(RecordId(0));
    c.apply_batch(&batch).unwrap();
    let divergence = a.state_divergence(&c).expect("states differ");
    assert!(divergence.contains("relation"), "got: {divergence}");
}
