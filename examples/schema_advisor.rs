//! Live schema-normalization advice from maintained FDs.
//!
//! Schema normalization is the oldest application of functional
//! dependencies (the paper cites Codd [4]): a relation is in
//! Boyce–Codd normal form iff every non-trivial FD's left-hand side is
//! a superkey. With DynFD keeping the FDs fresh, normalization advice
//! can be *recomputed after every batch* — this example shows candidate
//! keys and BCNF violations evolving as data arrives.
//!
//! ```text
//! cargo run --example schema_advisor
//! ```

use dynfd::common::{AttrSet, Schema};
use dynfd::core::{DynFd, DynFdConfig};
use dynfd::lattice::closure::{attribute_closure, bcnf_violations, candidate_keys};
use dynfd::relation::{Batch, DynamicRelation};

fn main() {
    // An orders table that accidentally embeds a product catalogue —
    // the textbook normalization example.
    let schema = Schema::of(
        "orders",
        &[
            "order_id",
            "product_id",
            "product_name",
            "unit_price",
            "quantity",
        ],
    );
    let rel = DynamicRelation::from_rows(
        schema.clone(),
        &[
            vec!["o1", "p1", "Widget", "9.99", "2"],
            vec!["o2", "p2", "Gadget", "24.50", "1"],
            vec!["o3", "p1", "Widget", "9.99", "5"],
            vec!["o4", "p3", "Doohickey", "3.25", "10"],
            vec!["o5", "p2", "Gadget", "24.50", "3"],
        ],
    )
    .unwrap();
    let mut dynfd = DynFd::new(rel, DynFdConfig::default());
    advise(&dynfd, &schema, "initial load");

    // New orders keep the embedded catalogue consistent — the advice
    // stays the same.
    let mut batch = Batch::new();
    batch.insert(vec!["o6", "p3", "Doohickey", "3.25", "1"]);
    dynfd.apply_batch(&batch).unwrap();
    advise(&dynfd, &schema, "after consistent growth");

    // A price change lands for new orders only: product_id no longer
    // determines unit_price; the decomposition advice adapts.
    let mut batch = Batch::new();
    batch.insert(vec!["o7", "p1", "Widget", "11.99", "1"]);
    dynfd.apply_batch(&batch).unwrap();
    advise(&dynfd, &schema, "after a partial price change");
}

fn advise(dynfd: &DynFd, schema: &Schema, stage: &str) {
    let arity = schema.arity();
    let cover = dynfd.positive_cover();
    println!("== {stage} ({} minimal FDs) ==", cover.len());

    let keys = candidate_keys(cover, arity);
    let names = |set: AttrSet| -> String {
        let v: Vec<&str> = set.iter().map(|a| schema.column_name(a)).collect();
        if v.is_empty() {
            "∅".to_string()
        } else {
            v.join(",")
        }
    };
    for key in &keys {
        println!("  candidate key: {{{}}}", names(*key));
    }

    let violations = bcnf_violations(cover, arity);
    if violations.is_empty() {
        println!("  BCNF: ok");
    } else {
        println!("  BCNF violations ({}):", violations.len());
        for fd in violations.iter().take(6) {
            // Suggest the classic decomposition R1 = lhs⁺, R2 = lhs ∪ (R \ lhs⁺).
            let closure = attribute_closure(cover, fd.lhs, arity);
            println!(
                "    {}  → split off ({})",
                fd.display(schema),
                names(closure)
            );
        }
        if violations.len() > 6 {
            println!("    … and {} more", violations.len() - 6);
        }
    }
    println!();
}
