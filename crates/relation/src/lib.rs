//! # dynfd-relation
//!
//! The dynamic-relation substrate of the DynFD reproduction (paper
//! Section 3.1). A profiled relation is represented *compactly*: actual
//! values are irrelevant for FD validation, only which tuple pairs agree
//! on which attributes matters. The substrate therefore maintains:
//!
//! * a per-column **dictionary** mapping values to dense integer codes
//!   ([`Dictionary`]);
//! * **dictionary-compressed records** laid out *columnar*: one
//!   contiguous `Vec<ValueId>` per attribute, indexed by arena slot. A
//!   free-list plus generation map ties each surrogate
//!   [`RecordId`](dynfd_common::RecordId) to its slot, so a validation
//!   job streams a column instead of chasing one heap allocation per row;
//! * per-column **position list indexes** ([`Pli`]) — for every value
//!   code, the rid-ordered list of arena slots holding that value, packed
//!   into a single backing arena (no per-cluster allocations). The
//!   code-to-cluster head table doubles as the paper's *inverted index*;
//! * the **batch** machinery ([`Batch`], [`ChangeOp`]) applying groups of
//!   inserts/updates/deletes to all structures incrementally, deletes
//!   first (Section 2 explains why);
//! * the PLI-based **FD validator** with early termination,
//!   simultaneous-RHS checking, and the *cluster pruning* hook of
//!   Section 4.2 ([`validate`]).
//!
//! A deliberate deviation from the paper, documented in `DESIGN.md`: the
//! paper replaces globally unique values by `-1` in compressed records.
//! Uniqueness is not stable under inserts, so we instead keep the real
//! dictionary code everywhere and let the validator skip *singleton
//! clusters* — the same comparisons are avoided without ever rewriting a
//! compressed record retroactively.

#![warn(missing_docs)]

mod batch;
mod changelog;
mod csv;
mod dictionary;
pub mod kernel;
pub mod parallel;
mod pli;
pub mod pli_cache;
mod relation;
pub mod rowstore;
pub mod validate;

pub use batch::{AppliedBatch, Batch, ChangeOp};
pub use changelog::{parse_changelog, write_changelog, Batcher, WindowBatcher};
pub use csv::{parse_csv, read_csv_file, CsvTable};
pub use dictionary::{Dictionary, ValueId, DICTIONARY_CAPACITY};
pub use parallel::{
    adaptive_workers, par_map, resolve_parallelism, validate_jobs_on_snapshot, validate_many,
    validate_many_cached, ValidationJob,
};
pub use pli::{intersect_clusters, Pli};
pub use pli_cache::{CacheEffects, CacheStats, CachedPartition, PliCache, PliCacheSnapshot};
pub use relation::{DynamicRelation, NullPolicy, RowRef, UndoLog, DEAD_RID, NO_SLOT};
pub use rowstore::{validate_rowstore, RowStoreRelation};
pub use validate::{
    agree_set, probe_cache_effects, probe_violation_score, validate, validate_cached, validate_fd,
    validate_with, RhsOutcome, ValidationOptions, ValidationResult, ValidationStats,
    ValidatorScratch,
};
