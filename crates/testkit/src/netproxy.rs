//! Network fault injection for the socket transport.
//!
//! [`NetProxy`] sits between a [`SessionClient`] and a real
//! `dynfd-serve` socket listener as a deterministic man-in-the-middle:
//! it forwards bytes, but injects one seeded [`NetFault`] shape into
//! the conversation — added latency, torn writes, duplicated frames,
//! half-open connections, or outright connection storms.
//!
//! [`check_net`] is the oracle around it: a compliant reconnecting
//! client pushes every tenant's batch stream through the proxy, and no
//! matter what the network does, every batch must land **exactly
//! once** — final tenant state bit-identical to a sequential replay
//! ([`DynFd::state_divergence`]), WAL bytes identical to a sequential
//! durable replay, and the served sequence number equal to the batch
//! count (a double-applied re-send would overshoot it; a lost batch
//! would undershoot). The client-side session protocol (hello +
//! per-tenant sequence numbers + verbatim re-send of unacked frames)
//! is what makes this hold; the proxy is how we prove it.
//!
//! Everything derives from the `(seed, fault)` pair: connection
//! damage sites, delays, and duplication points are seeded, so a
//! failing case reproduces bit-identically from the fuzz triple.

use crate::concurrent::tenant_traces;
use crate::trace::Trace;
use dynfd_common::Schema;
use dynfd_core::{DynFd, DynFdConfig};
use dynfd_persist::{wal_path, FdEngine};
use dynfd_relation::DynamicRelation;
use dynfd_serve::{
    serve_listener, AdmissionPolicy, ConnOptions, ListenAddr, RetryPolicy, ServeConfig,
    ServeEngine, SessionClient, TransportConfig, TransportReport,
};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The network damage modes `fuzz --inject` can place between a client
/// and the socket transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// Seeded forwarding latency on some frames: the slow-network
    /// shape. Nothing is lost; deadlines and patience must cope.
    Delay,
    /// A connection dies mid-frame: the proxy forwards a strict prefix
    /// of a frame's bytes, then cuts both sides. The server sees torn
    /// framing; the client re-sends on a new connection.
    TornWrite,
    /// One frame is forwarded twice back-to-back. The server must
    /// absorb the duplicate (in-flight dedup or replay window) without
    /// applying twice.
    DuplicateFrame,
    /// Half-open connection: after a seeded frame the proxy goes
    /// silent in both directions but keeps the sockets open — no FIN,
    /// no RST. Only the client's patience timer and the server's idle
    /// budget can save either side, and an ack already settled
    /// server-side must come back via the replay window.
    HalfOpen,
    /// Reconnect storm: the first connections each get killed after a
    /// few frames (with a short grace so some responses make it back),
    /// forcing rapid resume cycles against the replay window.
    ReconnectStorm,
}

impl NetFault {
    /// All network faults, in the order the fuzz binary cycles them.
    pub const ALL: [NetFault; 5] = [
        NetFault::Delay,
        NetFault::TornWrite,
        NetFault::DuplicateFrame,
        NetFault::HalfOpen,
        NetFault::ReconnectStorm,
    ];

    /// The fault's `--inject` name.
    pub fn name(self) -> &'static str {
        match self {
            NetFault::Delay => "net-delay",
            NetFault::TornWrite => "net-torn",
            NetFault::DuplicateFrame => "net-dup",
            NetFault::HalfOpen => "net-half-open",
            NetFault::ReconnectStorm => "net-reconnect",
        }
    }

    /// Looks a fault up by its [`NetFault::name`].
    pub fn by_name(name: &str) -> Option<NetFault> {
        NetFault::ALL.iter().copied().find(|f| f.name() == name)
    }
}

/// Counters from one [`check_net`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Tenants replayed through the proxy.
    pub tenants: u64,
    /// Serve-engine worker threads.
    pub workers: u64,
    /// Batches acknowledged exactly once.
    pub batches: u64,
    /// Client connections that reached a successful hello.
    pub connects: u64,
    /// Reconnects the client performed after drops/silence/notices.
    pub reconnects: u64,
    /// Unacked frames the client re-sent verbatim.
    pub resends: u64,
    /// Re-sent frames the server answered from its replay window.
    pub replays: u64,
    /// Duplicate frames the server absorbed while the original was in
    /// flight.
    pub dedups: u64,
    /// Tenant states compared bit-level against the sequential oracle.
    pub states_compared: u64,
    /// WAL files compared byte-for-byte.
    pub wals_compared: u64,
}

impl NetStats {
    /// Accumulates another run's counters.
    pub fn absorb(&mut self, other: &NetStats) {
        self.tenants += other.tenants;
        self.workers += other.workers;
        self.batches += other.batches;
        self.connects += other.connects;
        self.reconnects += other.reconnects;
        self.resends += other.resends;
        self.replays += other.replays;
        self.dedups += other.dedups;
        self.states_compared += other.states_compared;
        self.wals_compared += other.wals_compared;
    }
}

/// What the server built from the client's wire `Open`: the schema is
/// named after the *tenant* (`Schema::new(tenant, columns)`), not after
/// the trace — the oracle must replay from the identical starting
/// relation or the bit-level comparison fails on the name alone.
fn wire_relation(tenant: &str, trace: &Trace) -> Result<DynamicRelation, String> {
    let schema = Schema::new(tenant.to_string(), trace.schema.columns().to_vec());
    DynamicRelation::from_rows(schema, &trace.initial_rows)
        .map_err(|e| format!("wire relation for {tenant}: {e}"))
}

/// Sequential replay from the wire-faithful starting relation.
fn wire_oracle(tenant: &str, trace: &Trace, config: DynFdConfig) -> Result<DynFd, String> {
    let mut dynfd = DynFd::new(wire_relation(tenant, trace)?, config);
    for (i, batch) in trace.to_batches().iter().enumerate() {
        dynfd
            .apply_batch(batch)
            .map_err(|e| format!("oracle replay rejected batch {i}: {e}"))?;
    }
    Ok(dynfd)
}

fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// What the proxy does to one specific connection (seeded per
/// connection index, so reconnects see fresh — but deterministic —
/// damage).
#[derive(Clone, Copy, Debug)]
enum ConnPlan {
    /// Forward everything unharmed.
    Clean,
    /// Sleep `ms` before forwarding every `every`-th frame.
    Delay { every: u64, ms: u64 },
    /// Forward frames before `at`, then forward only `keep` bytes of
    /// frame `at` and cut both sides.
    Torn { at: u64, keep_mod: u64 },
    /// Forward frame `at` twice.
    Duplicate { at: u64 },
    /// After forwarding frame `at`, go silent in both directions while
    /// keeping the sockets open.
    HalfOpen { at: u64 },
    /// After forwarding frame `at`, sleep `grace_ms`, then cut both
    /// sides. A zero grace usually loses the settled ack (forcing a
    /// window replay); a longer one usually lets it through.
    Kill { at: u64, grace_ms: u64 },
}

impl ConnPlan {
    /// The plan for connection number `conn` under `fault`. Destructive
    /// faults only fire on the first few connections (seeded budget),
    /// so a compliant client always converges: after the storm the
    /// network heals and the remaining work flows clean.
    fn for_conn(fault: NetFault, seed: u64, conn: u64) -> ConnPlan {
        let r = splitmix(seed ^ 0xA11CE ^ conn.wrapping_mul(0x9E3779B97F4A7C15));
        let budget = 2 + (splitmix(seed ^ 0xB0DCE7) % 3); // 2..=4 bad connections
        let destructive = conn < budget;
        match fault {
            NetFault::Delay => ConnPlan::Delay {
                every: 2 + r % 2,
                ms: 5 + splitmix(r) % 20,
            },
            NetFault::TornWrite if destructive => ConnPlan::Torn {
                // Frame 0 is the hello; tear inside a later frame so
                // sessions form and the window does real work.
                at: 1 + r % 3,
                keep_mod: splitmix(r) | 1,
            },
            NetFault::DuplicateFrame if destructive => ConnPlan::Duplicate { at: 1 + r % 4 },
            NetFault::HalfOpen if destructive => ConnPlan::HalfOpen { at: 1 + r % 3 },
            NetFault::ReconnectStorm if destructive => ConnPlan::Kill {
                at: 1 + r % 3,
                grace_ms: if splitmix(r ^ 0x6ACE).is_multiple_of(2) {
                    0
                } else {
                    30
                },
            },
            _ => ConnPlan::Clean,
        }
    }
}

/// A deterministic fault-injecting proxy between a client and a unix
/// socket server. Client→server traffic is pumped *frame-aware* (the
/// proxy parses length prefixes), so duplication and tearing operate
/// on whole protocol frames; server→client traffic is pumped raw.
pub struct NetProxy {
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    connections: Arc<AtomicUsize>,
}

impl NetProxy {
    /// Starts a proxy listening on `listen_path`, forwarding every
    /// connection to the server at `server_path` with `fault` damage
    /// seeded by `seed`.
    pub fn start(
        listen_path: &Path,
        server_path: &Path,
        fault: NetFault,
        seed: u64,
    ) -> std::io::Result<NetProxy> {
        let _ = std::fs::remove_file(listen_path);
        let listener = UnixListener::bind(listen_path)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicUsize::new(0));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            let server_path = server_path.to_path_buf();
            std::thread::Builder::new()
                .name("dynfd-netproxy".into())
                .spawn(move || {
                    let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
                    while !stop.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((client, _)) => {
                                let conn = connections.fetch_add(1, Ordering::SeqCst) as u64;
                                let plan = ConnPlan::for_conn(fault, seed, conn);
                                let server_path = server_path.clone();
                                if let Ok(h) = std::thread::Builder::new()
                                    .name("dynfd-netproxy-conn".into())
                                    .spawn(move || {
                                        proxy_connection(client, &server_path, plan, seed ^ conn)
                                    })
                                {
                                    pumps.push(h);
                                }
                                pumps.retain(|h| !h.is_finished());
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                    for h in pumps {
                        let _ = h.join();
                    }
                })?
        };
        Ok(NetProxy {
            stop,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> usize {
        self.connections.load(Ordering::SeqCst)
    }

    /// Stops accepting and joins the accept loop. Live pumps wind down
    /// as their sockets close.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Pumps one proxied connection: frame-aware client→server with the
/// damage plan applied, raw server→client in a sibling thread.
fn proxy_connection(client: UnixStream, server_path: &Path, plan: ConnPlan, seed: u64) {
    let Ok(server) = UnixStream::connect(server_path) else {
        let _ = client.shutdown(std::net::Shutdown::Both);
        return;
    };
    let (Ok(client_r), Ok(server_w)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    // Once set, the proxy swallows bytes instead of forwarding them —
    // the half-open shape (sockets open, nothing moves).
    let mute = Arc::new(AtomicBool::new(false));
    // Server→client: transparent byte pump (until muted).
    let s2c = {
        let (Ok(mut server_r), Ok(client_w)) = (server.try_clone(), client.try_clone()) else {
            return;
        };
        let mute = Arc::clone(&mute);
        std::thread::spawn(move || {
            let mut client_w = client_w;
            let mut buf = [0u8; 4096];
            loop {
                match server_r.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if mute.load(Ordering::SeqCst) {
                            continue;
                        }
                        if client_w.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
            let _ = client_w.shutdown(std::net::Shutdown::Write);
        })
    };
    pump_frames(client_r, server_w, &client, &server, &mute, plan, seed);
    let _ = s2c.join();
    let _ = client.shutdown(std::net::Shutdown::Both);
    let _ = server.shutdown(std::net::Shutdown::Both);
}

/// Reads whole `len:u32 | payload` frames from the client and forwards
/// them to the server, applying `plan` at seeded frame indices.
fn pump_frames(
    mut client_r: UnixStream,
    mut server_w: UnixStream,
    client: &UnixStream,
    server: &UnixStream,
    mute: &AtomicBool,
    plan: ConnPlan,
    seed: u64,
) {
    let mut frame_idx: u64 = 0;
    loop {
        let mut prefix = [0u8; 4];
        if client_r.read_exact(&mut prefix).is_err() {
            let _ = server_w.shutdown(std::net::Shutdown::Write);
            return;
        }
        let len = u32::from_le_bytes(prefix) as usize;
        // A frame the proxy itself refuses to buffer ends the pump; the
        // real server enforces its own (smaller) bound.
        if len > (1 << 26) {
            let _ = server.shutdown(std::net::Shutdown::Both);
            return;
        }
        let mut frame = Vec::with_capacity(4 + len);
        frame.extend_from_slice(&prefix);
        frame.resize(4 + len, 0);
        if client_r.read_exact(&mut frame[4..]).is_err() {
            let _ = server_w.shutdown(std::net::Shutdown::Write);
            return;
        }
        match plan {
            ConnPlan::Clean => {
                if server_w.write_all(&frame).is_err() {
                    return;
                }
            }
            ConnPlan::Delay { every, ms } => {
                if frame_idx % every == every - 1 {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                if server_w.write_all(&frame).is_err() {
                    return;
                }
            }
            ConnPlan::Torn { at, keep_mod } => {
                if frame_idx == at {
                    // A strict prefix: at least the length prefix, never
                    // the whole frame.
                    let keep = 4
                        + (splitmix(seed ^ keep_mod) as usize)
                            % frame.len().max(5).saturating_sub(4);
                    let _ = server_w.write_all(&frame[..keep.min(frame.len() - 1)]);
                    let _ = server.shutdown(std::net::Shutdown::Both);
                    let _ = client.shutdown(std::net::Shutdown::Both);
                    return;
                }
                if server_w.write_all(&frame).is_err() {
                    return;
                }
            }
            ConnPlan::Duplicate { at } => {
                if server_w.write_all(&frame).is_err() {
                    return;
                }
                if frame_idx == at && server_w.write_all(&frame).is_err() {
                    return;
                }
            }
            ConnPlan::HalfOpen { at } => {
                if server_w.write_all(&frame).is_err() {
                    return;
                }
                if frame_idx == at {
                    // Both directions go quiet, both sockets stay open.
                    // The client's patience must force a reconnect (its
                    // ack, if the apply settled, comes back as a window
                    // replay); the server's idle budget must reap the
                    // abandoned connection.
                    mute.store(true, Ordering::SeqCst);
                    let mut sink = [0u8; 4096];
                    while matches!(client_r.read(&mut sink), Ok(n) if n > 0) {}
                    return;
                }
            }
            ConnPlan::Kill { at, grace_ms } => {
                if server_w.write_all(&frame).is_err() {
                    return;
                }
                if frame_idx == at {
                    // Grace: let in-flight responses race back before
                    // the cut, so some storms lose the settled ack
                    // (forcing a window replay on re-send) and some
                    // don't — both paths must stay exactly-once.
                    if grace_ms > 0 {
                        std::thread::sleep(Duration::from_millis(grace_ms));
                    }
                    let _ = server.shutdown(std::net::Shutdown::Both);
                    let _ = client.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
        }
        frame_idx += 1;
    }
}

/// Replays `tenants` seeded traces through a socket server *behind a
/// fault-injecting proxy* with a compliant [`SessionClient`], then
/// verifies exactly-once application: served sequence numbers equal
/// batch counts, tenant states are bit-identical to a sequential
/// replay, and WAL bytes match a sequential durable replay. See the
/// module docs.
pub fn check_net(
    fault: NetFault,
    seed: u64,
    workers: usize,
    scratch: &Path,
) -> Result<NetStats, String> {
    std::fs::create_dir_all(scratch).map_err(|e| format!("scratch: {e}"))?;
    let data_root = scratch.join("data");
    let server_sock = scratch.join("server.sock");
    let proxy_sock = scratch.join("proxy.sock");
    let traces = tenant_traces(seed, 2);
    let config = DynFdConfig::default();

    let engine = Arc::new(ServeEngine::new(ServeConfig {
        workers,
        queue_capacity: 1024,
        policy: AdmissionPolicy::Block,
        root: Some(data_root.clone()),
        engine: config,
        ..ServeConfig::default()
    }));

    // The real socket transport, with an idle budget so connections the
    // proxy abandons half-open get reaped.
    let stop = Arc::new(AtomicBool::new(false));
    let listener_thread = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let addr = ListenAddr::Unix(server_sock.clone());
        let config = TransportConfig {
            options: ConnOptions {
                idle: Some(Duration::from_millis(500)),
                ..ConnOptions::default()
            },
            ..TransportConfig::default()
        };
        std::thread::Builder::new()
            .name("dynfd-net-listener".into())
            .spawn(move || serve_listener(&engine, &addr, config, || stop.load(Ordering::SeqCst)))
            .map_err(|e| format!("spawn listener: {e}"))?
    };
    // Wait for the socket file to exist before dialing through it.
    for _ in 0..200 {
        if server_sock.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let proxy = NetProxy::start(&proxy_sock, &server_sock, fault, seed)
        .map_err(|e| format!("proxy: {e}"))?;

    // A compliant client: stable session id, short patience so faults
    // turn into fast reconnects instead of long stalls.
    let policy = RetryPolicy {
        base: Duration::from_millis(2),
        cap: Duration::from_millis(50),
        max_attempts: 10,
        seed,
    };
    let mut client = SessionClient::new(
        ListenAddr::Unix(proxy_sock.clone()),
        format!("fuzz-{seed:x}"),
        policy,
    )
    .with_patience(Duration::from_millis(250));

    let run = (|| -> Result<u64, String> {
        for (name, trace) in &traces {
            let resp = client
                .open(name, trace.schema.columns(), &trace.initial_rows)
                .map_err(|e| format!("open {name}: {e}"))?;
            // 15 = TenantExists: a re-sent open whose first copy landed.
            if resp.code != 0 && u32::from(resp.code) != 15 {
                return Err(format!(
                    "open {name} rejected with code {}: {}",
                    resp.code, resp.detail
                ));
            }
        }
        // Round-robin interleave, like the in-process concurrent check.
        let mut streams: Vec<(&str, std::vec::IntoIter<dynfd_relation::Batch>)> = traces
            .iter()
            .map(|(name, trace)| (name.as_str(), trace.to_batches().into_iter()))
            .collect();
        let mut batches = 0u64;
        loop {
            let mut any = false;
            for (name, stream) in &mut streams {
                let Some(batch) = stream.next() else { continue };
                any = true;
                let resp = client
                    .apply(name, &batch, 0)
                    .map_err(|e| format!("apply to {name}: {e}"))?;
                if resp.code != 0 {
                    return Err(format!(
                        "apply to {name} rejected with code {}: {} — generated traces \
                         must replay cleanly under the blocking policy",
                        resp.code, resp.detail
                    ));
                }
                batches += 1;
            }
            if !any {
                break;
            }
        }
        Ok(batches)
    })();
    let report = client.report();
    client.disconnect();

    // Unwind the transport before judging the run, so the engine is
    // quiesced and single-owner even on the error path.
    stop.store(true, Ordering::SeqCst);
    let transport: TransportReport = listener_thread
        .join()
        .map_err(|_| "listener thread panicked".to_string())?
        .map_err(|e| format!("serve_listener: {e}"))?;
    proxy.shutdown();
    let batches = run?;

    // Exactly-once, part 1: the client consumed exactly one sequence
    // number per acknowledged batch per tenant, and the server's
    // applied sequence agrees.
    let mut stats = NetStats {
        tenants: traces.len() as u64,
        workers: workers as u64,
        batches,
        connects: report.connects,
        reconnects: report.reconnects,
        resends: report.resends,
        ..NetStats::default()
    };
    for (name, trace) in &traces {
        let expected = trace.to_batches().len() as u64;
        let m = engine
            .metrics(name)
            .map_err(|e| format!("metrics {name}: {e}"))?;
        stats.replays += m.session_replays;
        stats.dedups += m.session_dedups;
        let seq = engine
            .tenant_seq(name)
            .map_err(|e| format!("seq of {name}: {e}"))?;
        if seq != expected {
            return Err(format!(
                "tenant {name}: served seq {seq}, expected {expected} — a re-send was \
                 double-applied or a batch was lost (fault {}, {} reconnects, {} resends)",
                fault.name(),
                report.reconnects,
                report.resends
            ));
        }
        let oracle = wire_oracle(name, trace, config)?;
        let divergence = engine
            .with_tenant(name, |served| oracle.state_divergence(served))
            .map_err(|e| format!("inspect {name}: {e}"))?;
        if let Some(divergence) = divergence {
            return Err(format!(
                "tenant {name} diverged from sequential replay under {}: {divergence}",
                fault.name()
            ));
        }
        stats.states_compared += 1;
    }
    if transport.sessions == 0 {
        return Err("transport registered no sessions — the hello path never ran".into());
    }

    // Exactly-once, part 2: drain + fsync, then WAL bytes must equal a
    // sequential durable replay's, bit for bit.
    let mut engine = engine;
    let engine = loop {
        match Arc::try_unwrap(engine) {
            Ok(e) => break e,
            Err(shared) => {
                engine = shared;
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    let shutdown = engine.shutdown();
    if shutdown.synced != shutdown.tenants || !shutdown.sync_errors.is_empty() {
        return Err(format!(
            "shutdown synced {} of {} tenants (errors: {:?})",
            shutdown.synced, shutdown.tenants, shutdown.sync_errors
        ));
    }
    for (name, trace) in &traces {
        let oracle_dir = scratch.join(format!("{name}.oracle"));
        let mut oracle_engine = FdEngine::create(&oracle_dir, wire_relation(name, trace)?, config)
            .map_err(|e| format!("oracle engine for {name}: {e}"))?;
        for (i, batch) in trace.to_batches().iter().enumerate() {
            oracle_engine
                .apply_batch(batch)
                .map_err(|e| format!("oracle durable replay {name} batch {i}: {e}"))?;
        }
        drop(oracle_engine);
        let served = std::fs::read(wal_path(&data_root.join(name)))
            .map_err(|e| format!("read served WAL of {name}: {e}"))?;
        let expected = std::fs::read(wal_path(&oracle_dir))
            .map_err(|e| format!("read oracle WAL of {name}: {e}"))?;
        if served != expected {
            let first_diff = served
                .iter()
                .zip(&expected)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| served.len().min(expected.len()));
            return Err(format!(
                "tenant {name}: WAL bytes diverge from sequential replay under {} \
                 (served {} bytes, oracle {} bytes, first difference at byte {first_diff})",
                fault.name(),
                served.len(),
                expected.len()
            ));
        }
        stats.wals_compared += 1;
    }
    Ok(stats)
}
