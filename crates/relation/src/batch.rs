//! Change batches.

use dynfd_common::{AttrSet, RecordId};

/// A single change operation against the profiled relation.
///
/// Updates are, per the paper (Section 2), expressed as a delete of the
/// old record followed by an insert of the new version; [`ChangeOp::Update`]
/// is provided as a convenience and is normalized during application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChangeOp {
    /// Insert a new row (one value per schema column).
    Insert(Vec<String>),
    /// Delete the record with the given surrogate id.
    Delete(RecordId),
    /// Replace the record with the given id by a new row. The new version
    /// receives a fresh surrogate id.
    Update(RecordId, Vec<String>),
}

impl ChangeOp {
    /// Whether this op is (or contains) an insert.
    pub fn inserts(&self) -> bool {
        matches!(self, ChangeOp::Insert(_) | ChangeOp::Update(..))
    }

    /// Whether this op is (or contains) a delete.
    pub fn deletes(&self) -> bool {
        matches!(self, ChangeOp::Delete(_) | ChangeOp::Update(..))
    }
}

/// A non-overlapping group of change operations, processed atomically by
/// DynFD (paper Section 2). Batch boundaries trade metadata timeliness
/// against maintenance cost; their size is at the user's discretion.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Batch {
    ops: Vec<ChangeOp>,
}

impl Batch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Batch::default()
    }

    /// Creates a batch from a list of operations.
    pub fn from_ops(ops: Vec<ChangeOp>) -> Self {
        Batch { ops }
    }

    /// Appends an insert of `row`.
    pub fn insert<S: Into<String>>(&mut self, row: Vec<S>) -> &mut Self {
        self.ops
            .push(ChangeOp::Insert(row.into_iter().map(Into::into).collect()));
        self
    }

    /// Appends a delete of `rid`.
    pub fn delete(&mut self, rid: RecordId) -> &mut Self {
        self.ops.push(ChangeOp::Delete(rid));
        self
    }

    /// Appends an update of `rid` to `row`.
    pub fn update<S: Into<String>>(&mut self, rid: RecordId, row: Vec<S>) -> &mut Self {
        self.ops.push(ChangeOp::Update(
            rid,
            row.into_iter().map(Into::into).collect(),
        ));
        self
    }

    /// The operations in arrival order.
    pub fn ops(&self) -> &[ChangeOp] {
        &self.ops
    }

    /// Number of operations (an update counts as one, matching how the
    /// paper counts "changes").
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Splits a flat change stream into consecutive batches of at most
    /// `size` operations (the fixed-size batching used throughout the
    /// paper's evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn chunk(ops: Vec<ChangeOp>, size: usize) -> Vec<Batch> {
        assert!(size > 0, "batch size must be positive");
        let mut batches = Vec::with_capacity(ops.len().div_ceil(size));
        let mut current = Vec::with_capacity(size.min(ops.len()));
        for op in ops {
            current.push(op);
            if current.len() == size {
                batches.push(Batch::from_ops(std::mem::take(&mut current)));
            }
        }
        if !current.is_empty() {
            batches.push(Batch::from_ops(current));
        }
        batches
    }
}

/// The effect of applying a [`Batch`] to a
/// [`DynamicRelation`](crate::DynamicRelation): which records came and
/// went, plus the watermarks the maintenance prunings key off.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AppliedBatch {
    /// Ids of records inserted by the batch *and still present* after it
    /// (a record inserted and deleted within one batch appears in
    /// neither list).
    pub inserted: Vec<RecordId>,
    /// The arena slots of [`AppliedBatch::inserted`], index-aligned with
    /// it. Downstream maintenance (violation search, cache patching)
    /// works slot-based against the columnar arena; capturing the slots
    /// at apply time saves a `slot_of` resolution per record later.
    pub inserted_slots: Vec<u32>,
    /// Ids of records that existed before the batch and were deleted by
    /// it.
    pub deleted: Vec<RecordId>,
    /// The first surrogate id assigned while applying this batch, if any
    /// insert happened. Every record with `id >= first_new_id` is "new"
    /// for the purposes of cluster pruning (Section 4.2).
    pub first_new_id: Option<RecordId>,
    /// Whether every operation in the batch was an [`ChangeOp::Update`].
    /// Only then is *update pruning* applicable (paper Section 8 item 3:
    /// an FD whose attributes no update touched cannot change).
    pub update_only: bool,
    /// Attributes whose value actually changed in at least one update
    /// (old vs. new version compared column-wise). Meaningful only when
    /// [`AppliedBatch::update_only`] is `true`.
    pub touched_attrs: AttrSet,
}

impl AppliedBatch {
    /// Whether the batch performed any insert that survived the batch.
    pub fn has_inserts(&self) -> bool {
        !self.inserted.is_empty()
    }

    /// Whether the batch deleted any pre-existing record.
    pub fn has_deletes(&self) -> bool {
        !self.deleted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_ops() {
        let mut b = Batch::new();
        b.insert(vec!["a", "b"])
            .delete(RecordId(3))
            .update(RecordId(1), vec!["c", "d"]);
        assert_eq!(b.len(), 3);
        assert!(b.ops()[0].inserts() && !b.ops()[0].deletes());
        assert!(b.ops()[1].deletes() && !b.ops()[1].inserts());
        assert!(b.ops()[2].inserts() && b.ops()[2].deletes());
    }

    #[test]
    fn chunk_splits_evenly_with_remainder() {
        let ops: Vec<ChangeOp> = (0..7).map(|i| ChangeOp::Delete(RecordId(i))).collect();
        let batches = Batch::chunk(ops, 3);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 3);
        assert_eq!(batches[1].len(), 3);
        assert_eq!(batches[2].len(), 1);
    }

    #[test]
    fn chunk_of_empty_stream_is_empty() {
        assert!(Batch::chunk(vec![], 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn chunk_zero_panics() {
        let _ = Batch::chunk(vec![], 0);
    }
}
