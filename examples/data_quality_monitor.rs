//! Data-quality monitoring: alert when long-stable FDs suddenly break.
//!
//! The paper's introduction motivates FD maintenance with exactly this
//! scenario: "sudden changes of thus far robust FDs might signal data
//! quality issues, i.e., erroneous updates." This example streams a
//! synthetic change history through DynFD, tracks how long each minimal
//! FD has been stable, and raises an alert whenever an FD that survived
//! many consecutive batches disappears.
//!
//! ```text
//! cargo run --example data_quality_monitor
//! ```

use dynfd::common::Fd;
use dynfd::core::{DynFd, DynFdConfig};
use dynfd::datagen::{DatasetProfile, GeneratedDataset};
use std::collections::HashMap;

/// An FD is "robust" once it survived this many consecutive batches.
const ROBUST_AFTER: u64 = 5;

fn main() {
    // An update-heavy dataset, shaped like the paper's `cpu` profile but
    // smaller so the example finishes instantly.
    let profile = DatasetProfile {
        name: "quality-demo",
        columns: 8,
        initial_rows: 200,
        changes: 2_000,
        insert_pct: 10.0,
        delete_pct: 5.0,
        update_pct: 85.0,
        update_columns: 2,
        seed: 42,
        bursts: 0,
        burst_len: 0,
    };
    let data = GeneratedDataset::generate(&profile);
    let schema = data.schema.clone();

    let mut dynfd = DynFd::new(data.to_relation(), DynFdConfig::default());
    let mut stable_for: HashMap<Fd, u64> =
        dynfd.minimal_fds().into_iter().map(|f| (f, 0)).collect();
    let mut alerts = 0usize;

    for (batch_no, batch) in data.batches(100, None).iter().enumerate() {
        let result = dynfd.apply_batch(batch).expect("generated batches replay");

        for fd in &result.removed {
            let age = stable_for.remove(fd).unwrap_or(0);
            if age >= ROBUST_AFTER {
                alerts += 1;
                println!(
                    "ALERT batch {batch_no}: robust dependency broke after {age} stable \
                     batches: {}",
                    fd.display(&schema)
                );
            }
        }
        for fd in &result.added {
            stable_for.insert(*fd, 0);
        }
        for age in stable_for.values_mut() {
            *age += 1;
        }
    }

    println!(
        "\nprocessed {} changes in {} batches; {} robust-FD alerts; {} minimal FDs at the end",
        data.changes.len(),
        data.changes.len().div_ceil(100),
        alerts,
        dynfd.minimal_fds().len()
    );
}
