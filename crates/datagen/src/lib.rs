//! # dynfd-datagen
//!
//! Deterministic synthetic datasets and change histories shaped like the
//! six real-world datasets of the DynFD evaluation (Table 3).
//!
//! The originals (MusicBrainz `artist`, Wikipedia infobox `cpu` /
//! `disease` / `actor` / `single`, TSA `claims`) are change-history dumps
//! we cannot redistribute; DESIGN.md documents the substitution. What
//! drives DynFD's cost — and therefore what the generator reproduces per
//! dataset — is:
//!
//! * **width** (column count → lattice size),
//! * **length** (row count → PLI/cluster size),
//! * **change mix** (insert/delete/update shares → which cover is
//!   exercised),
//! * **FD structure and churn** (hierarchy columns à la zip→city,
//!   near-keys, and noisily correlated columns whose dependencies
//!   appear and disappear under changes).
//!
//! Everything is seeded ChaCha8, so a given profile always regenerates
//! the identical dataset and change stream, bit for bit.

#![warn(missing_docs)]

mod changes;
mod generator;
mod profiles;
mod zipf;

pub use changes::GeneratedDataset;
pub use generator::{ColumnModel, TableSpec};
pub use profiles::{DatasetProfile, PAPER_PROFILES};
pub use zipf::Zipf;
