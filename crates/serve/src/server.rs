//! The sharded multi-tenant engine server.
//!
//! One [`ServeEngine`] owns a tenant registry and a pool of worker
//! threads. Every tenant is pinned to exactly one worker shard (FNV of
//! its name modulo the pool size), each shard consumes its own FIFO
//! queue, and admission happens against the tenant's bounded gate
//! before a job is ever enqueued. The combination yields the layer's
//! two load-bearing properties:
//!
//! * **determinism** — a tenant's batches are applied in submission
//!   order at any worker count, because only its one shard ever touches
//!   its engine and the shard queue is FIFO (pinned by
//!   `tests/serve_determinism.rs`);
//! * **isolation** — a tenant that floods, rejects, or panics affects
//!   only its own gate, metrics, and (on an escaped panic) its own
//!   poisoned engine lock; every other tenant's state and throughput
//!   are untouched (pinned by `tests/tenant_isolation.rs`).
//!
//! On top of admission sits **resource governance** (DESIGN.md §6h):
//! per-tenant quotas over resident bytes and cumulative apply CPU time
//! ([`TenantQuota`], wire code 17 with a retry-after hint), per-job
//! deadlines enforced on the worker *before* apply (code 18 — a
//! past-deadline job never starts, so the PR 3 transactional guarantee
//! is preserved), live tenant eviction/close
//! ([`ServeEngine::close_tenant`]: drain → snapshot+fsync → release,
//! code 19 inside the window), and a global byte budget that degrades
//! the fattest tenant's PLI cache before LRU-evicting idle tenants.
//! Every governance rejection is deterministic given the admission
//! sequence — the chaos harness replays them across worker counts.
//!
//! Shutdown is drain-then-sync: the intake closes (new submissions get
//! [`ServeError::ShuttingDown`]), every queued job still completes,
//! workers join, and each durable tenant's WAL tail is fsynced. The
//! `drain_kill_after` hook aborts the process mid-drain — the crash
//! harness uses it to prove recovery works from inside that window.
//! The analogous `evict_kill_point` hook aborts inside the eviction
//! window instead.

use crate::metrics::{GlobalSnapshot, TenantMetrics};
use crate::queue::ShardQueue;
use crate::tenant::{valid_tenant_name, Backend, Tenant};
use crate::{QuotaKind, ServeError};
use dynfd_common::Schema;
use dynfd_core::{CachePressure, DynFd, DynFdConfig, DynFdError, FailPoint};
use dynfd_persist::{CrashPlan, FdEngine, RecoveryReport};
use dynfd_relation::{Batch, DynamicRelation};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What happens when a tenant's queue is full at submit time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Reject immediately with [`ServeError::Overloaded`] (wire code
    /// 13) — the production load-shedding default.
    #[default]
    Shed,
    /// Block the submitter until a slot frees up — lossless
    /// backpressure, used by the deterministic replay harnesses and by
    /// clients that prefer latency over errors.
    Block,
}

/// Per-tenant resource quotas, checked at admission. `None` fields are
/// unlimited (the default).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantQuota {
    /// Ceiling on a tenant's resident-byte estimate (relation arena +
    /// dictionaries + PLIs + PLI-intersection cache, per
    /// `DynFd::resident_bytes`). A tenant over the ceiling is first
    /// *degraded* (cache squeezed, then dropped); only if it stays over
    /// uncached is the submission rejected with wire code 17.
    pub max_resident_bytes: Option<u64>,
    /// Ceiling on a tenant's cumulative wall-clock time spent inside
    /// `apply`. Once crossed, further submissions are rejected with
    /// wire code 17 — the tenant keeps its state and can be read, but
    /// may not burn more compute.
    pub max_cpu: Option<Duration>,
}

/// Where inside [`ServeEngine::close_tenant`] the chaos harness aborts
/// the process (see [`ServeConfig::evict_kill_point`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictKillPoint {
    /// After the tenant's queue drained, before snapshot + fsync: the
    /// WAL holds every applied batch, the final snapshot does not exist.
    AfterDrain,
    /// After snapshot + fsync, before the registry entry is removed.
    AfterPersist,
}

/// Configuration of a [`ServeEngine`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads (= shards). `0` means one per available core.
    pub workers: usize,
    /// Per-tenant bound on in-flight batches (admission gate capacity).
    pub queue_capacity: usize,
    /// Full-queue behavior.
    pub policy: AdmissionPolicy,
    /// Durable root: each tenant gets `<root>/<name>/` as its WAL
    /// directory. `None` serves purely in-memory tenants.
    pub root: Option<PathBuf>,
    /// Engine configuration shared by every tenant.
    pub engine: DynFdConfig,
    /// Start with delivery paused: jobs queue but no worker runs them
    /// until [`ServeEngine::resume`] — the deterministic-burst test hook.
    pub start_paused: bool,
    /// Crash-harness hook: during shutdown's drain, abort the process
    /// after this many more jobs complete (`>= 1`; `None` disables).
    pub drain_kill_after: Option<u64>,
    /// Per-tenant resource quotas (unlimited by default).
    pub quota: TenantQuota,
    /// Engine-wide ceiling on the summed resident-byte estimates. When
    /// a submission finds the pool over budget, the governor degrades
    /// the fattest tenant's cache one step, then LRU-evicts *idle*
    /// tenants (never the submitter) until back under. `None` disables.
    pub global_bytes_budget: Option<u64>,
    /// Deadline applied to submissions that do not carry their own: a
    /// job still queued when its deadline elapses is rejected by the
    /// worker before apply (wire code 18). `None` = no default.
    pub default_deadline: Option<Duration>,
    /// Crash-harness hook: abort the process at this point inside the
    /// next [`ServeEngine::close_tenant`] call (`None` disables).
    pub evict_kill_point: Option<EvictKillPoint>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 64,
            policy: AdmissionPolicy::Shed,
            root: None,
            engine: DynFdConfig::default(),
            start_paused: false,
            drain_kill_after: None,
            quota: TenantQuota::default(),
            global_bytes_budget: None,
            default_deadline: None,
            evict_kill_point: None,
        }
    }
}

/// The outcome of one applied (or failed) batch, delivered to the
/// submitter's completion callback.
#[derive(Debug)]
pub struct BatchReply {
    /// The tenant the batch targeted.
    pub tenant: String,
    /// The submitter's correlation id (wire request id).
    pub request_id: u64,
    /// Success summary, or the typed failure.
    pub outcome: Result<ApplySummary, ServeError>,
    /// Submit→completion latency.
    pub latency: Duration,
}

/// Success details of one applied batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApplySummary {
    /// The tenant's sequence number after this batch.
    pub seq: u64,
    /// Minimal FDs the batch added.
    pub added: u32,
    /// Minimal FDs the batch removed.
    pub removed: u32,
    /// Live rows after the batch.
    pub rows: u64,
}

/// What [`ServeEngine::shutdown`] drained and synced.
#[derive(Debug, Default)]
pub struct ShutdownReport {
    /// Registered tenants at shutdown.
    pub tenants: usize,
    /// Tenants whose WAL tail was fsynced cleanly.
    pub synced: usize,
    /// Tenants whose final sync failed, with the I/O error.
    pub sync_errors: Vec<(String, String)>,
    /// Tenants skipped because an earlier panic poisoned their engine.
    pub poisoned: Vec<String>,
}

/// Result of opening a tenant: its durable sequence number and, when
/// the tenant resumed from an existing WAL directory, the recovery
/// report.
#[derive(Debug)]
pub struct OpenReport {
    /// Sequence number the tenant starts serving from (0 when fresh).
    pub seq: u64,
    /// Present when the tenant recovered durable state.
    pub recovered: Option<RecoveryReport>,
}

/// What [`ServeEngine::close_tenant`] drained, persisted, and released.
#[derive(Clone, Debug)]
pub struct CloseReport {
    /// The released tenant's name.
    pub tenant: String,
    /// Durable sequence number at release (`None` when the engine was
    /// poisoned and could not report one).
    pub seq: Option<u64>,
    /// Whether snapshot + WAL fsync succeeded before release. Memory
    /// tenants report `true` (there is nothing to persist).
    pub persisted: bool,
    /// The I/O or poisoning detail when `persisted` is false.
    pub detail: Option<String>,
}

type Completion = Box<dyn FnOnce(BatchReply) + Send>;

struct Job {
    tenant: Arc<Tenant>,
    batch: Batch,
    request_id: u64,
    submitted: Instant,
    /// Deadline budget measured from `submitted`; `None` = no deadline.
    deadline: Option<Duration>,
    /// The engine-wide aggregate the job's outcome is mirrored onto.
    aggregate: Arc<TenantMetrics>,
    done: Completion,
}

/// Mid-drain abort hook (see [`ServeConfig::drain_kill_after`]).
#[derive(Default)]
struct DrainKill {
    armed: AtomicBool,
    budget: AtomicU64,
}

/// The multi-tenant serve engine (see the module docs).
pub struct ServeEngine {
    shards: Vec<Arc<ShardQueue<Job>>>,
    workers: Vec<JoinHandle<()>>,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    config: ServeConfig,
    closed: AtomicBool,
    drain: Arc<DrainKill>,
    /// Engine-wide aggregate of every tenant's counters; survives
    /// tenant eviction (see [`ServeEngine::global_metrics`]).
    aggregate: Arc<TenantMetrics>,
    /// Tenants evicted/closed over the engine's lifetime.
    evictions: AtomicU64,
    /// Monotone admission counter — the LRU clock.
    admission_tick: AtomicU64,
}

/// FNV-1a, hand-rolled so the tenant→shard map is stable across
/// platforms and std versions (std's `DefaultHasher` promises nothing).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Renders a caught panic payload for the typed reply.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Applies one job to its tenant and fires the completion. Runs on a
/// worker thread; never unwinds (panics become typed replies).
fn run_job(job: Job) {
    let Job {
        tenant,
        batch,
        request_id,
        submitted,
        deadline,
        aggregate,
        done,
    } = job;
    // Deadline gate: a job past its budget is rejected *before* the
    // engine is touched, so the tenant's state, WAL, and covers are
    // exactly as if the batch was never submitted.
    let expired = deadline.filter(|d| submitted.elapsed() >= *d);
    let mut degraded = false;
    let outcome: Result<ApplySummary, ServeError> = if let Some(deadline) = expired {
        tenant.metrics.note_deadline_rejected();
        aggregate.note_deadline_rejected();
        Err(ServeError::DeadlineExceeded {
            tenant: tenant.name.clone(),
            deadline_ms: deadline.as_millis().min(u64::MAX as u128) as u64,
            waited_ms: submitted.elapsed().as_millis().min(u64::MAX as u128) as u64,
        })
    } else {
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            tenant.with_backend(|backend| {
                let apply_start = Instant::now();
                let applied = backend.apply(&batch);
                let spent = apply_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                tenant.cpu_nanos.fetch_add(spent, Ordering::Relaxed);
                tenant
                    .resident_bytes
                    .store(backend.dynfd().resident_bytes() as u64, Ordering::Relaxed);
                applied.map(|result| {
                    (
                        ApplySummary {
                            seq: backend.seq(),
                            added: result.added.len() as u32,
                            removed: result.removed.len() as u32,
                            rows: backend.dynfd().relation().len() as u64,
                        },
                        result.metrics.degraded_batches > 0,
                    )
                })
            })
        }));
        match caught {
            Ok(Ok(Ok((summary, was_degraded)))) => {
                degraded = was_degraded;
                Ok(summary)
            }
            Ok(Ok(Err(engine_err))) => Err(ServeError::Engine(engine_err)),
            // Poisoned lock from an earlier escaped panic.
            Ok(Err(poisoned)) => Err(poisoned),
            // A panic that escaped the engine's own transactional
            // boundary: the unwind poisoned this tenant's lock on the
            // way out, so the damage is contained to this tenant (later
            // batches get the poisoned-tenant error above); the worker
            // itself survives.
            Err(payload) => Err(ServeError::Engine(DynFdError::PhasePanicked {
                phase: "serve-worker",
                detail: panic_text(payload.as_ref()),
            })),
        }
    };
    let latency = submitted.elapsed();
    let (applied, added, removed) = match &outcome {
        Ok(s) => (true, s.added as u64, s.removed as u64),
        Err(_) => (false, 0, 0),
    };
    tenant
        .metrics
        .note_completed(applied, added, removed, latency, degraded);
    aggregate.note_completed(applied, added, removed, latency, degraded);
    // Completion fires *before* the gate slot is released: quiesce
    // (gate idle) must imply every reply has been delivered.
    done(BatchReply {
        tenant: tenant.name.clone(),
        request_id,
        outcome,
        latency,
    });
    tenant.gate.release();
}

fn worker_loop(queue: Arc<ShardQueue<Job>>, drain: Arc<DrainKill>) {
    while let Some(job) = queue.pop() {
        run_job(job);
        if drain.armed.load(Ordering::SeqCst) && drain.budget.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Simulated crash inside the queue-drain window: the job
            // just completed is durable, everything still queued is not.
            std::process::abort();
        }
    }
}

impl ServeEngine {
    /// Starts the worker pool (no tenants yet).
    pub fn new(config: ServeConfig) -> ServeEngine {
        let n = if config.workers == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            config.workers
        };
        let drain = Arc::new(DrainKill {
            armed: AtomicBool::new(false),
            budget: AtomicU64::new(config.drain_kill_after.unwrap_or(0)),
        });
        // Arm at shutdown only: workers check the flag per job, and the
        // engine flips it right before closing the queues.
        let shards: Vec<Arc<ShardQueue<Job>>> = (0..n)
            .map(|_| Arc::new(ShardQueue::new(config.start_paused)))
            .collect();
        let workers = shards
            .iter()
            .map(|shard| {
                let shard = Arc::clone(shard);
                let drain = Arc::clone(&drain);
                std::thread::spawn(move || worker_loop(shard, drain))
            })
            .collect();
        ServeEngine {
            shards,
            workers,
            tenants: Mutex::new(HashMap::new()),
            config,
            closed: AtomicBool::new(false),
            drain,
            aggregate: Arc::new(TenantMetrics::default()),
            evictions: AtomicU64::new(0),
            admission_tick: AtomicU64::new(0),
        }
    }

    /// The resolved worker/shard count.
    pub fn worker_count(&self) -> usize {
        self.shards.len()
    }

    /// The engine configuration tenants run with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The durable directory of `name`, when serving durably.
    pub fn tenant_dir(&self, name: &str) -> Option<PathBuf> {
        self.config.root.as_ref().map(|root| root.join(name))
    }

    fn lookup(&self, name: &str) -> Result<Arc<Tenant>, ServeError> {
        let tenants = self
            .tenants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        tenants
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))
    }

    fn tenant_arcs(&self) -> Vec<Arc<Tenant>> {
        let tenants = self
            .tenants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut arcs: Vec<Arc<Tenant>> = tenants.values().cloned().collect();
        arcs.sort_by(|a, b| a.name.cmp(&b.name));
        arcs
    }

    /// Opens tenant `name` with the given schema and initial rows, or
    /// recovers it from `<root>/<name>/` when durable state exists
    /// there (the rows are then ignored; the schema must match). An
    /// evicted tenant re-opened here resumes from its persisted state —
    /// the transparent re-admission path.
    pub fn open_tenant(
        &self,
        name: &str,
        schema: Schema,
        rows: &[Vec<String>],
    ) -> Result<OpenReport, ServeError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        if !valid_tenant_name(name) {
            return Err(ServeError::Malformed(format!(
                "invalid tenant name {name:?} (want [A-Za-z0-9_.-]{{1,128}})"
            )));
        }
        {
            let tenants = self
                .tenants
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if tenants.contains_key(name) {
                return Err(ServeError::TenantExists(name.to_string()));
            }
        }
        // Build the backend outside the registry lock: recovery can
        // replay an arbitrarily long WAL and must not stall the others.
        let rel = DynamicRelation::from_rows(schema.clone(), rows)
            .map_err(|e| ServeError::Engine(DynFdError::from(e)))?;
        let (backend, recovered) = match self.tenant_dir(name) {
            Some(dir) => {
                let (engine, report) = FdEngine::recover_or_create(&dir, rel, self.config.engine)
                    .map_err(ServeError::Engine)?;
                if let Some(report) = &report {
                    let durable = engine.dynfd().relation().schema();
                    if durable.columns() != schema.columns() {
                        return Err(ServeError::Engine(DynFdError::Parse(format!(
                            "tenant {name:?} durable state is for columns {:?}, the open asked for {:?}",
                            durable.columns(),
                            schema.columns()
                        ))));
                    }
                    let _ = report; // report returned to the caller below
                }
                (Backend::Durable(engine), report)
            }
            None => (
                Backend::Memory(DynFd::new(rel, self.config.engine), 0),
                None,
            ),
        };
        let shard = (fnv1a(name.as_bytes()) % self.shards.len() as u64) as usize;
        let tenant = Arc::new(Tenant::new(name.to_string(), shard, backend));
        let seq = tenant.with_backend(|b| b.seq()).unwrap_or_default();
        let mut tenants = self
            .tenants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Two concurrent opens of the same name: first insert wins.
        if tenants.contains_key(name) {
            return Err(ServeError::TenantExists(name.to_string()));
        }
        tenants.insert(name.to_string(), tenant);
        Ok(OpenReport { seq, recovered })
    }

    /// Steps a tenant's cache pressure one notch down (Normal →
    /// Squeezed(quarter budget) → Uncached), refreshes its resident
    /// estimate, and returns it. Waits for the engine lock, so the cost
    /// lands on the submitter that triggered governance.
    fn degrade_tenant(&self, tenant: &Arc<Tenant>) -> u64 {
        let stepped = tenant.with_backend(|b| {
            let engine = b.dynfd_mut();
            let next = match engine.cache_pressure() {
                CachePressure::Normal => {
                    Some(CachePressure::Squeezed(engine.config().pli_cache_bytes / 4))
                }
                CachePressure::Squeezed(_) => Some(CachePressure::Uncached),
                CachePressure::Uncached => None,
            };
            if let Some(pressure) = next {
                engine.set_cache_pressure(pressure);
            }
            (next.is_some(), engine.resident_bytes() as u64)
        });
        match stepped {
            Ok((true, bytes)) => {
                tenant.metrics.note_degrade();
                self.aggregate.note_degrade();
                tenant.resident_bytes.store(bytes, Ordering::Relaxed);
                bytes
            }
            Ok((false, bytes)) => {
                tenant.resident_bytes.store(bytes, Ordering::Relaxed);
                bytes
            }
            // Poisoned engine: keep the stale estimate; the tenant is
            // already unable to apply anything.
            Err(_) => tenant.resident_bytes.load(Ordering::Relaxed),
        }
    }

    /// Checks the per-tenant quotas for one submission, degrading the
    /// tenant's cache before giving up on the byte quota.
    fn check_quota(&self, tenant: &Arc<Tenant>) -> Result<(), ServeError> {
        if let Some(limit) = self.config.quota.max_resident_bytes {
            let mut used = tenant.resident_bytes.load(Ordering::Relaxed);
            if used > limit {
                // Graceful degradation first: squeezing (then dropping)
                // the PLI cache may bring the tenant back under quota
                // without refusing work.
                used = self.degrade_tenant(tenant);
            }
            if used > limit {
                tenant.metrics.note_submitted(tenant.gate.depth());
                self.aggregate.note_submitted(tenant.gate.depth());
                tenant.metrics.note_quota_rejected();
                self.aggregate.note_quota_rejected();
                return Err(ServeError::QuotaExceeded {
                    tenant: tenant.name.clone(),
                    kind: QuotaKind::Bytes,
                    used,
                    limit,
                    retry_after_ms: tenant.next_retry_after_ms(),
                });
            }
        }
        if let Some(max_cpu) = self.config.quota.max_cpu {
            let used = Duration::from_nanos(tenant.cpu_nanos.load(Ordering::Relaxed));
            if used > max_cpu {
                tenant.metrics.note_submitted(tenant.gate.depth());
                self.aggregate.note_submitted(tenant.gate.depth());
                tenant.metrics.note_quota_rejected();
                self.aggregate.note_quota_rejected();
                return Err(ServeError::QuotaExceeded {
                    tenant: tenant.name.clone(),
                    kind: QuotaKind::Cpu,
                    used: used.as_millis().min(u64::MAX as u128) as u64,
                    limit: max_cpu.as_millis().min(u64::MAX as u128) as u64,
                    retry_after_ms: tenant.next_retry_after_ms(),
                });
            }
        }
        Ok(())
    }

    /// Enforces the global byte budget: degrade the fattest tenant one
    /// step, then LRU-evict idle tenants (never the submitter, never a
    /// tenant with work in flight) until back under budget or out of
    /// candidates. Best-effort — a pool where every tenant is busy
    /// simply stays over budget until one goes idle.
    fn enforce_global_budget(&self, protect: &Arc<Tenant>) {
        let Some(budget) = self.config.global_bytes_budget else {
            return;
        };
        let total: u64 = self
            .tenant_arcs()
            .iter()
            .map(|t| t.resident_bytes.load(Ordering::Relaxed))
            .sum();
        if total <= budget {
            return;
        }
        // Degrade before evicting: squeeze the fattest tenant's cache
        // (deterministic tie-break on name via the sorted arcs).
        if let Some(fattest) = self
            .tenant_arcs()
            .into_iter()
            .max_by_key(|t| t.resident_bytes.load(Ordering::Relaxed))
        {
            self.degrade_tenant(&fattest);
        }
        let mut total: u64 = self
            .tenant_arcs()
            .iter()
            .map(|t| t.resident_bytes.load(Ordering::Relaxed))
            .sum();
        while total > budget {
            // LRU victim: idle, not closing, not the submitter; oldest
            // admission tick, name as the deterministic tie-break
            // (tenant_arcs is name-sorted and min_by_key keeps the
            // first minimum).
            let victim = self
                .tenant_arcs()
                .into_iter()
                .filter(|t| {
                    !Arc::ptr_eq(t, protect)
                        && !t.closing.load(Ordering::SeqCst)
                        && t.gate.depth() == 0
                })
                .min_by_key(|t| t.last_admitted.load(Ordering::Relaxed));
            let Some(victim) = victim else { break };
            let freed = victim.resident_bytes.load(Ordering::Relaxed);
            if self.close_tenant_inner(&victim).is_err() {
                break;
            }
            total = total.saturating_sub(freed);
        }
    }

    /// Submits one batch for `tenant` with no explicit deadline (the
    /// configured [`ServeConfig::default_deadline`] still applies). See
    /// [`ServeEngine::submit_with_deadline`].
    pub fn submit(
        &self,
        tenant: &str,
        request_id: u64,
        batch: Batch,
        done: impl FnOnce(BatchReply) + Send + 'static,
    ) -> Result<(), ServeError> {
        self.submit_with_deadline(tenant, request_id, batch, None, done)
    }

    /// Submits one batch for `tenant`. On success the batch is queued
    /// and `done` fires exactly once from a worker thread; on error the
    /// batch was *not* queued (`done` never fires) and the caller owns
    /// the typed rejection — admission failures are synchronous by
    /// design so the wire layer can shed load without waiting.
    ///
    /// `deadline` bounds how long the job may sit in the queue: a
    /// worker that reaches it past the budget rejects it *before*
    /// apply. Governance runs here too: the eviction window (code 19),
    /// the global byte budget, and the per-tenant quotas (code 17) are
    /// all checked before the admission gate.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        request_id: u64,
        batch: Batch,
        deadline: Option<Duration>,
        done: impl FnOnce(BatchReply) + Send + 'static,
    ) -> Result<(), ServeError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let tenant = self.lookup(tenant)?;
        if tenant.closing.load(Ordering::SeqCst) {
            tenant.metrics.note_submitted(tenant.gate.depth());
            self.aggregate.note_submitted(tenant.gate.depth());
            tenant.metrics.note_closed_rejected();
            self.aggregate.note_closed_rejected();
            return Err(ServeError::Evicted {
                tenant: tenant.name.clone(),
                retry_after_ms: tenant.next_retry_after_ms(),
            });
        }
        self.enforce_global_budget(&tenant);
        self.check_quota(&tenant)?;
        let capacity = self.config.queue_capacity.max(1);
        let depth = match self.config.policy {
            AdmissionPolicy::Shed => match tenant.gate.try_acquire(capacity) {
                Ok(depth) => depth,
                Err(depth) => {
                    tenant.metrics.note_submitted(depth);
                    self.aggregate.note_submitted(depth);
                    tenant.metrics.note_shed();
                    self.aggregate.note_shed();
                    return Err(ServeError::Overloaded {
                        tenant: tenant.name.clone(),
                        depth,
                        capacity,
                        retry_after_ms: tenant.next_retry_after_ms(),
                    });
                }
            },
            AdmissionPolicy::Block => tenant.gate.acquire_blocking(capacity),
        };
        tenant.metrics.note_submitted(depth);
        self.aggregate.note_submitted(depth);
        tenant.note_admitted(self.admission_tick.fetch_add(1, Ordering::Relaxed) + 1);
        let shard = tenant.shard;
        let job = Job {
            tenant: Arc::clone(&tenant),
            batch,
            request_id,
            submitted: Instant::now(),
            deadline: deadline.or(self.config.default_deadline),
            aggregate: Arc::clone(&self.aggregate),
            done: Box::new(done),
        };
        match self.shards[shard].push(job) {
            Ok(()) => Ok(()),
            Err(_job) => {
                // Raced with shutdown: un-admit and report.
                tenant.gate.release();
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Closes (or evicts — same operation, different initiator) a live
    /// tenant: marks it closing (submissions get wire code 19), drains
    /// its in-flight and queued batches, snapshots and fsyncs its
    /// durable state, and releases the registry entry and its memory.
    /// The next `Open` of the name re-admits it via `recover_or_create`.
    ///
    /// Do not call from a worker thread — the drain would wait on the
    /// calling thread's own queue.
    pub fn close_tenant(&self, name: &str) -> Result<CloseReport, ServeError> {
        let tenant = self.lookup(name)?;
        self.close_tenant_inner(&tenant)
    }

    fn close_tenant_inner(&self, tenant: &Arc<Tenant>) -> Result<CloseReport, ServeError> {
        if tenant.closing.swap(true, Ordering::SeqCst) {
            // A second closer lost the race; the first owns the drain.
            return Err(ServeError::Evicted {
                tenant: tenant.name.clone(),
                retry_after_ms: tenant.next_retry_after_ms(),
            });
        }
        // Drain: queued jobs hold gate slots until their completion
        // fires, so an idle gate means the shard FIFO holds nothing of
        // this tenant's and no apply is mid-flight.
        tenant.gate.wait_idle();
        if self.config.evict_kill_point == Some(EvictKillPoint::AfterDrain) {
            // Chaos harness: die between drain and persist — the WAL
            // already holds every applied batch, the snapshot does not.
            std::process::abort();
        }
        let persisted = tenant.with_backend(|b| {
            let seq = b.seq();
            (seq, b.persist_for_release())
        });
        let report = match persisted {
            Ok((seq, Ok(()))) => CloseReport {
                tenant: tenant.name.clone(),
                seq: Some(seq),
                persisted: true,
                detail: None,
            },
            Ok((seq, Err(io))) => CloseReport {
                tenant: tenant.name.clone(),
                seq: Some(seq),
                persisted: false,
                detail: Some(io.to_string()),
            },
            // Poisoned by an earlier panic: release it anyway — its WAL
            // holds everything acknowledged (log-before-apply), so
            // recovery on re-open is still exact.
            Err(e) => CloseReport {
                tenant: tenant.name.clone(),
                seq: None,
                persisted: false,
                detail: Some(e.to_string()),
            },
        };
        if self.config.evict_kill_point == Some(EvictKillPoint::AfterPersist) {
            // Chaos harness: die between persist and release.
            std::process::abort();
        }
        let mut tenants = self
            .tenants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        tenants.remove(&tenant.name);
        drop(tenants);
        self.evictions.fetch_add(1, Ordering::SeqCst);
        Ok(report)
    }

    /// Blocks until every tenant's queue is idle (no batch in flight).
    /// Meaningful only once the submitters have stopped.
    pub fn quiesce(&self) {
        for tenant in self.tenant_arcs() {
            tenant.gate.wait_idle();
        }
    }

    /// Whether every shard currently has delivery paused (see
    /// [`ServeConfig::start_paused`] / [`ServeEngine::pause`]). A
    /// paused engine with a backlog never goes idle, so teardown paths
    /// must not [`ServeEngine::quiesce`] it.
    pub fn is_paused(&self) -> bool {
        !self.shards.is_empty() && self.shards.iter().all(|s| s.is_paused())
    }

    /// Pauses delivery on every shard (queued jobs are retained).
    pub fn pause(&self) {
        for shard in &self.shards {
            shard.set_paused(true);
        }
    }

    /// Resumes delivery on every shard.
    pub fn resume(&self) {
        for shard in &self.shards {
            shard.set_paused(false);
        }
    }

    /// Runs `f` against a tenant's engine (read-only view). Waits for
    /// the engine lock, so call it quiesced unless racy reads are fine.
    pub fn with_tenant<R>(&self, name: &str, f: impl FnOnce(&DynFd) -> R) -> Result<R, ServeError> {
        let tenant = self.lookup(name)?;
        tenant.with_backend(|b| f(b.dynfd()))
    }

    /// Arms a deterministic failpoint on a tenant's engine (fault
    /// injection harnesses; see [`DynFd::arm_failpoint`]).
    pub fn arm_failpoint(&self, name: &str, fp: FailPoint) -> Result<(), ServeError> {
        let tenant = self.lookup(name)?;
        tenant.with_backend(|b| b.dynfd_mut().arm_failpoint(fp))
    }

    /// Arms a deterministic crash plan on a tenant's durable engine
    /// (crash harness; no-op for memory tenants).
    pub fn arm_crash_plan(&self, name: &str, plan: CrashPlan) -> Result<(), ServeError> {
        let tenant = self.lookup(name)?;
        tenant.with_backend(|b| b.set_crash_plan(plan))
    }

    /// A tenant's durable sequence number.
    pub fn tenant_seq(&self, name: &str) -> Result<u64, ServeError> {
        let tenant = self.lookup(name)?;
        tenant.with_backend(|b| b.seq())
    }

    /// A tenant's metrics snapshot.
    pub fn metrics(&self, name: &str) -> Result<crate::MetricsSnapshot, ServeError> {
        Ok(self.lookup(name)?.metrics.snapshot())
    }

    /// Records a sessioned apply answered from the ack-replay window
    /// (the batch was settled earlier; nothing re-applied). Counted
    /// even when the tenant has since been evicted — the aggregate
    /// keeps it.
    pub fn note_session_replay(&self, name: &str) {
        if let Ok(tenant) = self.lookup(name) {
            tenant.metrics.note_session_replay();
        }
        self.aggregate.note_session_replay();
    }

    /// Records a duplicate sessioned apply absorbed while the original
    /// was still in flight (no second apply, no second response).
    pub fn note_session_dedup(&self, name: &str) {
        if let Ok(tenant) = self.lookup(name) {
            tenant.metrics.note_session_dedup();
        }
        self.aggregate.note_session_dedup();
    }

    /// The engine-wide aggregate: every tenant's counters summed (and
    /// retained past eviction), lifetime eviction count, live tenant
    /// count, and the pool's resident-byte estimate.
    pub fn global_metrics(&self) -> GlobalSnapshot {
        let tenants = self.tenant_arcs();
        GlobalSnapshot {
            totals: self.aggregate.snapshot(),
            evictions: self.evictions.load(Ordering::SeqCst),
            live_tenants: tenants.len() as u64,
            resident_bytes: tenants
                .iter()
                .map(|t| t.resident_bytes.load(Ordering::Relaxed))
                .sum(),
        }
    }

    /// A tenant's resident-byte estimate after its last applied batch.
    pub fn tenant_resident_bytes(&self, name: &str) -> Result<u64, ServeError> {
        Ok(self.lookup(name)?.resident_bytes.load(Ordering::Relaxed))
    }

    /// A tenant's current in-flight batch count.
    pub fn queue_depth(&self, name: &str) -> Result<usize, ServeError> {
        Ok(self.lookup(name)?.gate.depth())
    }

    /// All tenant names, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenant_arcs().iter().map(|t| t.name.clone()).collect()
    }

    /// Total jobs sitting in shard queues right now (diagnostics).
    pub fn queued_jobs(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether the intake has been closed by [`ServeEngine::shutdown`].
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Drains and stops the pool: closes the intake, lets every queued
    /// job complete (resuming paused shards), joins the workers, then
    /// fsyncs each durable tenant's WAL tail. With
    /// [`ServeConfig::drain_kill_after`] armed, the process aborts
    /// mid-drain instead — the crash-harness window.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.closed.store(true, Ordering::SeqCst);
        if self.config.drain_kill_after.is_some() {
            // Budget was pre-loaded at construction; arm the check only
            // now so that jobs completed *before* the drain window never
            // count against it.
            self.drain.armed.store(true, Ordering::SeqCst);
        }
        self.resume();
        for shard in &self.shards {
            shard.close();
        }
        for handle in std::mem::take(&mut self.workers) {
            let _ = handle.join();
        }
        let mut report = ShutdownReport::default();
        for tenant in self.tenant_arcs() {
            report.tenants += 1;
            match tenant.with_backend(|b| b.sync()) {
                Ok(Ok(())) => report.synced += 1,
                Ok(Err(e)) => report
                    .sync_errors
                    .push((tenant.name.clone(), e.to_string())),
                Err(_) => report.poisoned.push(tenant.name.clone()),
            }
        }
        report
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        // A dropped engine (shutdown not called, or called — both reach
        // here) must not leave workers blocked forever on open queues.
        self.closed.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            shard.close();
        }
        for handle in std::mem::take(&mut self.workers) {
            let _ = handle.join();
        }
    }
}
