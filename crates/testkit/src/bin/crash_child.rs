//! Child process for the crash-recovery harness.
//!
//! `tests/crash_harness.rs` spawns this binary with a deterministic
//! [`CrashPlan`] and expects it to die mid-write (`abort()`, a
//! userspace power cut) at exactly the planned byte/frame. The parent
//! then recovers the directory in-process and checks the recovered
//! state against a fresh replay oracle.
//!
//! ```text
//! crash_child <dir> <seed> <case> <snapshot_every> [<mode> <value>]
//! ```
//!
//! `mode` is one of:
//! - `wal-byte N` — abort once the WAL would grow past absolute byte N
//!   (torn frame on disk);
//! - `frames N` — abort after the Nth frame append + fsync, before the
//!   in-memory apply (the log-but-not-applied window);
//! - `snapshot-byte N` — abort once N bytes of `snapshot.tmp` are
//!   written (partial temp file, no rename).
//!
//! Without a mode the run completes cleanly (exit 0) — the baseline
//! the harness uses for uninterrupted comparisons. If a plan is given
//! but never fires, the run also completes and exits 0; the parent
//! treats that as "scenario vacuous for this trace" and skips it.

use dynfd_core::DynFdConfig;
use dynfd_persist::{CrashPlan, FdEngine};
use dynfd_testkit::Trace;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: crash_child <dir> <seed> <case> <snapshot_every> [wal-byte|frames|snapshot-byte N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 4 && args.len() != 6 {
        usage();
    }
    let dir = PathBuf::from(&args[0]);
    let seed: u64 = args[1].parse().unwrap_or_else(|_| usage());
    let case: u64 = args[2].parse().unwrap_or_else(|_| usage());
    let snapshot_every: usize = args[3].parse().unwrap_or_else(|_| usage());
    let plan = if args.len() == 6 {
        let value: u64 = args[5].parse().unwrap_or_else(|_| usage());
        match args[4].as_str() {
            "wal-byte" => CrashPlan {
                wal_kill_at_byte: Some(value),
                ..CrashPlan::default()
            },
            "frames" => CrashPlan {
                kill_after_frames: Some(value),
                ..CrashPlan::default()
            },
            "snapshot-byte" => CrashPlan {
                snapshot_kill_at_byte: Some(value),
                ..CrashPlan::default()
            },
            _ => usage(),
        }
    } else {
        CrashPlan::default()
    };

    let trace = Trace::for_case(seed, case);
    let config = DynFdConfig {
        snapshot_every,
        ..DynFdConfig::default()
    };
    let mut engine = match FdEngine::create(&dir, trace.to_relation(), config) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("crash_child: engine creation failed: {e}");
            std::process::exit(1);
        }
    };
    engine.set_crash_plan(plan);
    for batch in trace.to_batches() {
        // A planned crash aborts inside this call; a real rejection in a
        // generated trace would be a bug worth failing loudly on.
        if let Err(e) = engine.apply_batch(&batch) {
            eprintln!("crash_child: batch rejected: {e}");
            std::process::exit(1);
        }
    }
    // Plan never fired (or no plan): clean completion.
    std::process::exit(0);
}
