//! # dynfd-testkit
//!
//! Deterministic differential fuzzing for the DynFD workspace.
//!
//! DynFD's whole value proposition is that its maintained covers are
//! *exactly* what a static re-run would discover (paper §1, §6). This
//! crate turns that claim into a reusable correctness subsystem:
//!
//! * [`Trace`] / [`TraceProfile`] — a seeded **trace generator** layered
//!   on `dynfd-datagen`: randomized insert/delete/update scripts over
//!   schemas of width 2–12, with adversarial data shapes (Zipf-skewed,
//!   all-duplicates, key-heavy, null-heavy);
//! * [`check_trace`] — a **differential runner** that replays a trace
//!   under every pruning configuration and compares the maintained
//!   positive cover after every batch against all three static oracles
//!   (TANE, FDEP, HyFD), plus four **metamorphic invariants** that need
//!   no oracle (cover-inversion round-trip, batch-splitting equivalence,
//!   row-permutation invariance, insert-then-delete round-trip);
//! * [`shrink_trace`] — a **delta-debugging shrinker** that minimizes a
//!   failing trace to a near-minimal op script;
//! * [`Repro`] — self-contained JSON **repro files** (seed + schema +
//!   ops + expected/actual covers) that tests replay directly;
//! * [`EngineFault`] — a **fault-injection mode** that attacks the
//!   engine itself while the differential checks keep running: poisoned
//!   batches that must be rejected atomically, mid-batch panics armed at
//!   seeded failpoints that must roll back bit-identically and succeed
//!   on retry, and silent cover corruption the degraded-mode rebuild
//!   must repair before the oracles look;
//! * [`WalFault`] / [`check_trace_durable`] — **durable-engine crash
//!   fuzzing**: replay a trace through a `dynfd-persist` [`FdEngine`]
//!   (dynfd_persist::FdEngine), damage its WAL at a seeded point
//!   (torn tail, bit flip, crash-between-log-and-apply), recover, and
//!   verify the recovered state is bit-identical to a fresh replay of
//!   the surviving batch prefix — with a `crash_child` binary and a
//!   child-process harness (`tests/crash_harness.rs`) that exercise the
//!   real `abort()`-mid-write kill paths;
//! * [`check_concurrent_serve`] — **concurrent serve replay**: push the
//!   interleaved batch streams of N tenants through a `dynfd-serve`
//!   worker pool and verify every tenant's final state (covers,
//!   violation annotations, and — durably — WAL bytes) is bit-identical
//!   to a sequential per-tenant replay, at any worker count;
//! * [`WireFault`] / [`check_wire`] — **wire-protocol fuzzing**: replay
//!   a trace as a framed request stream with seeded damage
//!   (truncated/garbage/oversized frames) and hold the server to the
//!   exactly-once typed-response contract;
//! * [`NetFault`] / [`check_net`] — **network fault injection**: a
//!   deterministic man-in-the-middle proxy ([`NetProxy`]) between a
//!   reconnecting session client and the real socket transport injects
//!   delays, torn writes, duplicated frames, half-open FINs, and
//!   reconnect storms; the oracle asserts every batch still applies
//!   **exactly once** (state and WAL bytes bit-identical to a
//!   sequential replay, served sequence equal to the batch count);
//! * [`ChaosFault`] / [`check_chaos`] — **governance chaos**: quota
//!   storms (a hog inflating past a byte quota beside bystanders whose
//!   covers must stay bit-identical to a no-hog replay), deadline
//!   storms (zero-deadline twins that must be refused before apply),
//!   and evict-during-apply (a live close that must drain, persist,
//!   and recover to its exact durable prefix on re-open);
//! * a `fuzz` **binary** (`cargo run -p dynfd-testkit --bin fuzz`) with
//!   `--seed`, `--cases`, `--budget-secs`, and `--inject` flags, run in
//!   CI as a fixed-seed smoke job.
//!
//! Everything is seeded; a `(seed, case)` pair regenerates the identical
//! trace bit for bit, on every machine.

#![warn(missing_docs)]

mod chaos;
mod concurrent;
mod crash;
mod json;
mod netproxy;
mod repro;
mod runner;
mod shrink;
mod trace;
mod wirefuzz;

pub use chaos::{
    check_chaos, check_deadline_storm, check_evict_during_apply, check_quota_storm, ChaosFault,
    ChaosStats,
};
pub use concurrent::{check_concurrent_serve, sequential_oracle, tenant_traces, ConcurrentStats};
pub use crash::{check_trace_durable, CrashStats, WalFault};
pub use json::Json;
pub use netproxy::{check_net, NetFault, NetProxy, NetStats};
pub use repro::Repro;
pub use runner::{
    check_trace, silence_injected_panics, CoverFault, EngineFault, RunnerOptions, TraceFailure,
    TraceStats,
};
pub use shrink::shrink_trace;
pub use trace::{Trace, TraceOp, TraceProfile};
pub use wirefuzz::{check_wire, WireFault, WireStats};
