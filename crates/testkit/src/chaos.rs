//! Governance chaos harness for the serve layer.
//!
//! PR 8's resource-governance claims are behavioral, not structural:
//! under quota pressure the hog — and *only* the hog — is degraded and
//! refused; a missed deadline never starts its batch; an eviction
//! mid-backlog drains cleanly, persists, and recovers to its exact
//! durable prefix on re-open. Each [`ChaosFault`] mode turns one of
//! those claims into a deterministic checkable property:
//!
//! * [`ChaosFault::QuotaStorm`] — one hog tenant inflating its
//!   resident footprint with unique-value inserts beside well-behaved
//!   bystanders, under a byte quota calibrated (by a standalone replay)
//!   to trip roughly half-way through the hog's stream. Oracles: the
//!   hog is degraded before it is refused (code 17), its retry-after
//!   hints are monotone while pressure persists, every bystander's
//!   final state is bit-identical to a no-hog sequential replay, and
//!   the hog's own state equals a replay of exactly its accepted
//!   prefix — governance rejections are rollback-clean by construction
//!   (they never reach the engine).
//! * [`ChaosFault::DeadlineStorm`] — every real batch is preceded by a
//!   doomed duplicate carrying a zero deadline. The duplicate must be
//!   rejected by the worker *before* apply (code 18), so the final
//!   state must equal a plain replay of the real batches alone, and
//!   the metrics partition (`submitted == applied + rejected + …`)
//!   must hold with every doom accounted in `deadline_rejected`.
//! * [`ChaosFault::EvictDuringApply`] — a durable tenant is closed
//!   while a paused backlog of its batches sits queued. The close must
//!   drain the backlog (never abandon it), refuse racing submissions
//!   with code 19, persist, and release; a re-open must recover to
//!   exactly the accepted prefix and accept the remainder, ending
//!   bit-identical to an uninterrupted replay — while bystander
//!   tenants' durable state never diverges.
//!
//! Everything derives from the `(seed, workers)` pair; the workloads
//! reuse [`tenant_traces`](crate::tenant_traces) so the bystander
//! streams are the same ones every other serve harness replays.

use crate::concurrent::{sequential_oracle, tenant_traces};
use dynfd_common::Schema;
use dynfd_core::{DynFd, DynFdConfig};
use dynfd_persist::FdEngine;
use dynfd_relation::{Batch, DynamicRelation};
use dynfd_serve::{AdmissionPolicy, ServeConfig, ServeEngine, ServeError, TenantQuota};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The governance chaos modes `fuzz --inject` can run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosFault {
    /// One hog inflates its footprint past a byte quota beside
    /// well-behaved bystanders.
    QuotaStorm,
    /// Every real batch is shadowed by a doomed zero-deadline twin.
    DeadlineStorm,
    /// A durable tenant is closed while its backlog is still queued.
    EvictDuringApply,
}

impl ChaosFault {
    /// All chaos modes, in the order the fuzz binary cycles them.
    pub const ALL: [ChaosFault; 3] = [
        ChaosFault::QuotaStorm,
        ChaosFault::DeadlineStorm,
        ChaosFault::EvictDuringApply,
    ];

    /// The mode's `--inject` name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosFault::QuotaStorm => "quota-storm",
            ChaosFault::DeadlineStorm => "deadline-storm",
            ChaosFault::EvictDuringApply => "evict-during-apply",
        }
    }

    /// Looks a mode up by its [`ChaosFault::name`].
    pub fn by_name(name: &str) -> Option<ChaosFault> {
        ChaosFault::ALL.iter().copied().find(|f| f.name() == name)
    }
}

/// Counters from one chaos run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosStats {
    /// Tenants in the run (hog included).
    pub tenants: usize,
    /// Worker threads the serve engine ran.
    pub workers: usize,
    /// Batches applied across all tenants.
    pub applied: u64,
    /// Quota rejections observed (wire code 17).
    pub quota_rejections: u64,
    /// Deadline rejections observed (wire code 18).
    pub deadline_rejections: u64,
    /// Eviction-window rejections observed (wire code 19).
    pub evict_rejections: u64,
    /// Cache-degradation steps governance applied.
    pub degrades: u64,
    /// Tenants evicted/closed.
    pub evictions: u64,
}

impl ChaosStats {
    /// Accumulates another run's counters.
    pub fn absorb(&mut self, other: &ChaosStats) {
        self.tenants += other.tenants;
        self.workers += other.workers;
        self.applied += other.applied;
        self.quota_rejections += other.quota_rejections;
        self.deadline_rejections += other.deadline_rejections;
        self.evict_rejections += other.evict_rejections;
        self.degrades += other.degrades;
        self.evictions += other.evictions;
    }
}

/// Dispatches one chaos mode. `root` is only used by
/// [`ChaosFault::EvictDuringApply`] (the one mode that needs durable
/// state to recover).
pub fn check_chaos(
    fault: ChaosFault,
    seed: u64,
    workers: usize,
    root: &Path,
) -> Result<ChaosStats, String> {
    match fault {
        ChaosFault::QuotaStorm => check_quota_storm(seed, workers),
        ChaosFault::DeadlineStorm => check_deadline_storm(seed, workers),
        ChaosFault::EvictDuringApply => check_evict_during_apply(seed, workers, root),
    }
}

/// The hog's workload: batches of wide unique-value inserts, padded so
/// dictionaries and PLIs grow fast and monotonically.
fn hog_batches() -> (Schema, Vec<Batch>) {
    let schema = Schema::new("hog", vec!["a".into(), "b".into(), "c".into(), "d".into()]);
    let batches = (0..40u64)
        .map(|b| {
            let mut batch = Batch::new();
            for r in 0..64u64 {
                let v = b * 64 + r;
                batch.insert(vec![
                    format!("hog-a-{v:012}"),
                    format!("hog-b-{:012}", v.wrapping_mul(7)),
                    format!("hog-c-{:012}", v.wrapping_mul(13)),
                    format!("hog-d-{v:012}"),
                ]);
            }
            batch
        })
        .collect();
    (schema, batches)
}

/// See [`ChaosFault::QuotaStorm`].
pub fn check_quota_storm(seed: u64, workers: usize) -> Result<ChaosStats, String> {
    let config = DynFdConfig::default();
    let bystanders = tenant_traces(seed, 3);
    let (hog_schema, hog_stream) = hog_batches();

    // Calibrate the quota from a standalone replay: the ceiling sits at
    // the hog's half-way footprint (so the back half must be refused),
    // but never below twice the fattest bystander (so no bystander can
    // trip it).
    let no_rows: &[Vec<String>] = &[];
    let hog_relation = || {
        DynamicRelation::from_rows(hog_schema.clone(), no_rows)
            .map_err(|e| format!("hog relation: {e}"))
    };
    let mut probe = DynFd::new(hog_relation()?, config);
    let mut footprint_at = Vec::with_capacity(hog_stream.len());
    for (i, batch) in hog_stream.iter().enumerate() {
        probe
            .apply_batch(batch)
            .map_err(|e| format!("hog calibration batch {i}: {e}"))?;
        footprint_at.push(probe.resident_bytes() as u64);
    }
    let mut bystander_peak = 0u64;
    for (name, trace) in &bystanders {
        let oracle = sequential_oracle(trace, config)?;
        let bytes = oracle.resident_bytes() as u64;
        if bytes > bystander_peak {
            bystander_peak = bytes;
        }
        let _ = name;
    }
    let quota = footprint_at[hog_stream.len() / 2].max(bystander_peak * 2);
    let hog_final = *footprint_at.last().ok_or("hog stream is empty")?;
    if hog_final <= quota {
        return Err(format!(
            "calibration failed: hog final footprint {hog_final} never exceeds quota {quota}"
        ));
    }

    let engine = Arc::new(ServeEngine::new(ServeConfig {
        workers,
        queue_capacity: 1024,
        policy: AdmissionPolicy::Block,
        engine: config,
        quota: TenantQuota {
            max_resident_bytes: Some(quota),
            max_cpu: None,
        },
        ..ServeConfig::default()
    }));
    for (name, trace) in &bystanders {
        engine
            .open_tenant(name, trace.schema.clone(), &trace.initial_rows)
            .map_err(|e| format!("open {name}: {e}"))?;
    }
    engine
        .open_tenant("hog", hog_schema.clone(), &[])
        .map_err(|e| format!("open hog: {e}"))?;

    // Round-robin with a quiesce per round: every admission decision
    // sees the footprint of everything already applied, so the round
    // where the quota trips is a pure function of (seed, quota).
    let bystander_failures = Arc::new(AtomicU64::new(0));
    let mut streams: Vec<(&str, std::vec::IntoIter<Batch>)> = bystanders
        .iter()
        .map(|(name, trace)| (name.as_str(), trace.to_batches().into_iter()))
        .collect();
    let mut hog_iter = hog_stream.iter();
    let mut hog_accepted = 0usize;
    let mut hints: Vec<u64> = Vec::new();
    let mut quota_rejections = 0u64;
    let mut request_id = 0u64;
    loop {
        let mut any = false;
        for (name, stream) in &mut streams {
            let Some(batch) = stream.next() else { continue };
            any = true;
            request_id += 1;
            let failures = Arc::clone(&bystander_failures);
            engine
                .submit(name, request_id, batch, move |reply| {
                    if reply.outcome.is_err() {
                        failures.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .map_err(|e| format!("bystander {name} refused admission: {e}"))?;
        }
        if let Some(batch) = hog_iter.next() {
            any = true;
            request_id += 1;
            match engine.submit("hog", request_id, batch.clone(), |_| {}) {
                Ok(()) => hog_accepted += 1,
                Err(err @ ServeError::QuotaExceeded { .. }) => {
                    quota_rejections += 1;
                    hints.push(err.retry_after_ms().unwrap_or(0));
                }
                Err(other) => return Err(format!("hog: expected code 17, got: {other}")),
            }
        }
        if !any {
            break;
        }
        engine.quiesce();
    }
    engine.quiesce();

    if bystander_failures.load(Ordering::SeqCst) != 0 {
        return Err("bystander batches failed under the hog's quota storm".into());
    }
    if quota_rejections == 0 {
        return Err("the hog was never quota-rejected".into());
    }
    if hints.windows(2).any(|w| w[1] < w[0]) {
        return Err(format!(
            "retry-after hints not monotone under sustained pressure: {hints:?}"
        ));
    }

    // Bystanders: bit-identical to a no-hog sequential replay.
    for (name, trace) in &bystanders {
        let oracle = sequential_oracle(trace, config)?;
        let divergence = engine
            .with_tenant(name, |served| oracle.state_divergence(served))
            .map_err(|e| format!("inspect {name}: {e}"))?;
        if let Some(d) = divergence {
            return Err(format!("bystander {name} diverged under quota storm: {d}"));
        }
    }
    // The hog: exactly its accepted prefix, nothing of the refused tail.
    let mut hog_oracle = DynFd::new(hog_relation()?, config);
    for (i, batch) in hog_stream[..hog_accepted].iter().enumerate() {
        hog_oracle
            .apply_batch(batch)
            .map_err(|e| format!("hog prefix oracle batch {i}: {e}"))?;
    }
    let divergence = engine
        .with_tenant("hog", |served| hog_oracle.state_divergence(served))
        .map_err(|e| format!("inspect hog: {e}"))?;
    if let Some(d) = divergence {
        return Err(format!(
            "hog state is not the replay of its accepted prefix ({hog_accepted} batches): {d}"
        ));
    }

    // Governance telemetry: the hog was degraded before it was refused,
    // and the engine-wide aggregate carries the rejections (the counters
    // a `serve_load` global snapshot reports).
    let hog_metrics = engine.metrics("hog").map_err(|e| e.to_string())?;
    if hog_metrics.degrades == 0 {
        return Err("quota governor refused the hog without degrading it first".into());
    }
    if hog_metrics.quota_rejected != quota_rejections {
        return Err(format!(
            "hog metrics counted {} quota rejections, the client saw {quota_rejections}",
            hog_metrics.quota_rejected
        ));
    }
    let global = engine.global_metrics();
    if global.totals.quota_rejected != quota_rejections {
        return Err(format!(
            "aggregate metrics counted {} quota rejections, the client saw {quota_rejections}",
            global.totals.quota_rejected
        ));
    }
    let s = &global.totals;
    if s.submitted != s.applied + s.rejected + s.shed + s.quota_rejected + s.closed_rejected {
        return Err(format!("aggregate outcome partition broken: {s:?}"));
    }

    Ok(ChaosStats {
        tenants: bystanders.len() + 1,
        workers: engine.worker_count(),
        applied: global.totals.applied,
        quota_rejections,
        degrades: global.totals.degrades,
        ..ChaosStats::default()
    })
}

/// See [`ChaosFault::DeadlineStorm`].
pub fn check_deadline_storm(seed: u64, workers: usize) -> Result<ChaosStats, String> {
    let config = DynFdConfig::default();
    let traces = tenant_traces(seed, 2);
    let engine = Arc::new(ServeEngine::new(ServeConfig {
        workers,
        queue_capacity: 1024,
        policy: AdmissionPolicy::Block,
        engine: config,
        ..ServeConfig::default()
    }));
    for (name, trace) in &traces {
        engine
            .open_tenant(name, trace.schema.clone(), &trace.initial_rows)
            .map_err(|e| format!("open {name}: {e}"))?;
    }

    let doomed_rejected = Arc::new(AtomicU64::new(0));
    let doomed_wrong = Arc::new(AtomicU64::new(0));
    let real_failed = Arc::new(AtomicU64::new(0));
    let mut doomed_submitted = 0u64;
    let mut real_submitted = 0u64;
    let mut streams: Vec<(&str, std::vec::IntoIter<Batch>)> = traces
        .iter()
        .map(|(name, trace)| (name.as_str(), trace.to_batches().into_iter()))
        .collect();
    let mut request_id = 0u64;
    loop {
        let mut any = false;
        for (name, stream) in &mut streams {
            let Some(batch) = stream.next() else { continue };
            any = true;
            // The doomed twin: a zero deadline has always expired by the
            // time a worker sees the job, so the rejection — and the
            // fact that the batch never touches the engine — is
            // deterministic at any worker count.
            request_id += 1;
            doomed_submitted += 1;
            let rejected = Arc::clone(&doomed_rejected);
            let wrong = Arc::clone(&doomed_wrong);
            engine
                .submit_with_deadline(
                    name,
                    request_id,
                    batch.clone(),
                    Some(Duration::ZERO),
                    move |reply| {
                        match reply.outcome {
                            Err(ServeError::DeadlineExceeded { .. }) => {
                                rejected.fetch_add(1, Ordering::SeqCst)
                            }
                            _ => wrong.fetch_add(1, Ordering::SeqCst),
                        };
                    },
                )
                .map_err(|e| format!("doomed twin for {name} refused admission: {e}"))?;
            // The real batch, unbounded.
            request_id += 1;
            real_submitted += 1;
            let failed = Arc::clone(&real_failed);
            engine
                .submit(name, request_id, batch, move |reply| {
                    if reply.outcome.is_err() {
                        failed.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .map_err(|e| format!("real batch for {name} refused admission: {e}"))?;
        }
        if !any {
            break;
        }
    }
    engine.quiesce();

    if doomed_wrong.load(Ordering::SeqCst) != 0 {
        return Err("a zero-deadline job completed with something other than code 18".into());
    }
    if doomed_rejected.load(Ordering::SeqCst) != doomed_submitted {
        return Err(format!(
            "{} doomed jobs submitted, {} rejected with code 18",
            doomed_submitted,
            doomed_rejected.load(Ordering::SeqCst)
        ));
    }
    if real_failed.load(Ordering::SeqCst) != 0 {
        return Err("real batches failed in the deadline storm".into());
    }

    // Doomed twins must be invisible: final state == plain replay.
    for (name, trace) in &traces {
        let oracle = sequential_oracle(trace, config)?;
        let divergence = engine
            .with_tenant(name, |served| oracle.state_divergence(served))
            .map_err(|e| format!("inspect {name}: {e}"))?;
        if let Some(d) = divergence {
            return Err(format!(
                "tenant {name} diverged — a past-deadline job touched the engine: {d}"
            ));
        }
        let m = engine.metrics(name).map_err(|e| e.to_string())?;
        if m.deadline_rejected == 0 || m.deadline_rejected != m.rejected {
            return Err(format!(
                "tenant {name}: deadline breakdown {} must equal rejected {}",
                m.deadline_rejected, m.rejected
            ));
        }
        if m.submitted != m.applied + m.rejected + m.shed + m.quota_rejected + m.closed_rejected {
            return Err(format!("tenant {name}: outcome partition broken: {m:?}"));
        }
    }
    let global = engine.global_metrics();
    if global.totals.deadline_rejected != doomed_submitted {
        return Err(format!(
            "aggregate deadline_rejected {} != doomed jobs {doomed_submitted}",
            global.totals.deadline_rejected
        ));
    }

    Ok(ChaosStats {
        tenants: traces.len(),
        workers: engine.worker_count(),
        applied: real_submitted,
        deadline_rejections: doomed_submitted,
        ..ChaosStats::default()
    })
}

/// See [`ChaosFault::EvictDuringApply`]. `root` must be an empty scratch
/// directory; the run leaves its durable state there for inspection.
pub fn check_evict_during_apply(
    seed: u64,
    workers: usize,
    root: &Path,
) -> Result<ChaosStats, String> {
    let config = DynFdConfig::default();
    let traces = tenant_traces(seed, 3);
    let (victim_name, victim_trace) = &traces[0];
    let victim_batches = victim_trace.to_batches();
    let backlog = (victim_batches.len() / 2).max(1);

    let engine = Arc::new(ServeEngine::new(ServeConfig {
        workers,
        queue_capacity: 4096,
        policy: AdmissionPolicy::Block,
        root: Some(root.to_path_buf()),
        engine: config,
        start_paused: true,
        ..ServeConfig::default()
    }));
    for (name, trace) in &traces {
        engine
            .open_tenant(name, trace.schema.clone(), &trace.initial_rows)
            .map_err(|e| format!("open {name}: {e}"))?;
    }

    // Queue the bystanders' full streams and the victim's first half —
    // with delivery paused, all of it sits in the shard FIFOs.
    let failures = Arc::new(AtomicU64::new(0));
    let next_id = std::cell::Cell::new(0u64);
    let submit = |name: &str, batch: Batch| -> Result<(), String> {
        next_id.set(next_id.get() + 1);
        let failures = Arc::clone(&failures);
        engine
            .submit(name, next_id.get(), batch, move |reply| {
                if reply.outcome.is_err() {
                    failures.fetch_add(1, Ordering::SeqCst);
                }
            })
            .map_err(|e| format!("submit to {name}: {e}"))
    };
    for (name, trace) in traces.iter().skip(1) {
        for batch in trace.to_batches() {
            submit(name, batch)?;
        }
    }
    for batch in &victim_batches[..backlog] {
        submit(victim_name, batch.clone())?;
    }

    // Close the victim from another thread: it flips the closing flag,
    // then blocks draining the paused backlog — the eviction window is
    // held open for as long as we keep delivery paused.
    let closer = {
        let engine = Arc::clone(&engine);
        let name = victim_name.clone();
        std::thread::spawn(move || engine.close_tenant(&name))
    };
    // Give the closer time to set the flag (it takes two locks and one
    // atomic swap to get there; it then blocks for as long as we pause).
    std::thread::sleep(Duration::from_millis(50));

    // Submissions racing the eviction: each must either be admitted
    // (it beat the flag and joins the drained backlog) or get code 19.
    let mut accepted = backlog;
    let mut evict_rejections = 0u64;
    for batch in &victim_batches[backlog..] {
        next_id.set(next_id.get() + 1);
        match engine.submit(victim_name, next_id.get(), batch.clone(), |_| {}) {
            Ok(()) => accepted += 1,
            Err(ServeError::Evicted { .. }) => {
                evict_rejections += 1;
                break;
            }
            Err(other) => return Err(format!("racing submit: expected code 19, got: {other}")),
        }
    }
    if evict_rejections == 0 && accepted < victim_batches.len() {
        return Err("racing submissions never hit the eviction window".into());
    }

    // Release the drain: the backlog applies, the closer persists and
    // removes the tenant.
    engine.resume();
    let report = closer
        .join()
        .map_err(|_| "closer thread panicked".to_string())?
        .map_err(|e| format!("close_tenant: {e}"))?;
    engine.quiesce();
    if failures.load(Ordering::SeqCst) != 0 {
        return Err("queued batches failed during the eviction drain".into());
    }
    if !report.persisted {
        return Err(format!("eviction did not persist: {:?}", report.detail));
    }
    if report.seq != Some(accepted as u64) {
        return Err(format!(
            "eviction drained to seq {:?}, accepted prefix is {accepted}",
            report.seq
        ));
    }

    // The name is gone until re-opened.
    next_id.set(next_id.get() + 1);
    match engine.submit(
        victim_name,
        next_id.get(),
        victim_batches[0].clone(),
        |_| {},
    ) {
        Err(ServeError::UnknownTenant(_)) => {}
        other => {
            return Err(format!(
                "evicted tenant must answer code 14 before re-open, got: {other:?}"
            ))
        }
    }

    // Transparent re-admission: recover to exactly the accepted prefix,
    // then serve the remainder.
    let reopened = engine
        .open_tenant(
            victim_name,
            victim_trace.schema.clone(),
            &victim_trace.initial_rows,
        )
        .map_err(|e| format!("re-open {victim_name}: {e}"))?;
    if reopened.recovered.is_none() {
        return Err("re-open did not recover durable state".into());
    }
    if reopened.seq != accepted as u64 {
        return Err(format!(
            "re-open recovered seq {}, eviction persisted {accepted}",
            reopened.seq
        ));
    }
    for batch in &victim_batches[accepted..] {
        submit(victim_name, batch.clone())?;
    }
    engine.quiesce();
    if failures.load(Ordering::SeqCst) != 0 {
        return Err("post-recovery batches failed".into());
    }

    let global = engine.global_metrics();
    if global.evictions != 1 {
        return Err(format!("expected 1 eviction, counted {}", global.evictions));
    }
    if global.totals.closed_rejected != evict_rejections {
        return Err(format!(
            "aggregate closed_rejected {} != observed code-19 rejections {evict_rejections}",
            global.totals.closed_rejected
        ));
    }

    // Final durable truth: shut down and recover every tenant fresh;
    // each must be logically identical to an uninterrupted sequential
    // replay (exact violation-annotation pairs are cache-path-dependent
    // after a snapshot recovery — see `DynFd::logical_divergence` — so
    // annotations are checked for validity, not bit-equality).
    let total_applied = global.totals.applied;
    let engine =
        Arc::try_unwrap(engine).map_err(|_| "engine still shared after quiesce".to_string())?;
    let report = engine.shutdown();
    if !report.sync_errors.is_empty() || !report.poisoned.is_empty() {
        return Err(format!(
            "shutdown left damage: {:?} {:?}",
            report.sync_errors, report.poisoned
        ));
    }
    for (name, trace) in &traces {
        let oracle = sequential_oracle(trace, config)?;
        let (recovered, _) =
            FdEngine::recover_or_create(&root.join(name), trace.to_relation(), config)
                .map_err(|e| format!("recover {name}: {e}"))?;
        if recovered.seq() != trace.to_batches().len() as u64 {
            return Err(format!(
                "tenant {name} recovered to seq {}, expected the full {} batches",
                recovered.seq(),
                trace.to_batches().len()
            ));
        }
        if let Some(d) = oracle.logical_divergence(recovered.dynfd()) {
            return Err(format!(
                "tenant {name} durable state diverged from an uninterrupted replay: {d}"
            ));
        }
        recovered
            .dynfd()
            .verify_annotations()
            .map_err(|e| format!("tenant {name} recovered annotations invalid: {e}"))?;
    }

    Ok(ChaosStats {
        tenants: traces.len(),
        workers,
        applied: total_applied,
        evict_rejections,
        evictions: 1,
        ..ChaosStats::default()
    })
}
