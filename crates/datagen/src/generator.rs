//! Column models and row generation.

use crate::Zipf;
use dynfd_common::Schema;
use rand::Rng;

/// How one column's values are produced.
///
/// The mix of models determines the dataset's FD landscape:
/// [`ColumnModel::Derived`] plants exact dependencies (the paper's
/// zip→city motivation), [`ColumnModel::Correlated`] plants *almost*-FDs
/// whose violations appear and disappear as records come and go — the
/// churn DynFD is built to track — and [`ColumnModel::Key`] /
/// [`ColumnModel::Categorical`] control cluster sizes.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnModel {
    /// A unique value per generated row version (`k0`, `k1`, …). Keys
    /// make every other column functionally dependent on this one.
    Key,
    /// A category sampled Zipf-skewed from `cardinality` values.
    Categorical {
        /// Number of distinct values.
        cardinality: usize,
        /// Zipf exponent (0 = uniform, 1 = classic skew).
        skew: f64,
    },
    /// A pure function of an earlier column's *value*: rows agreeing on
    /// the source agree here, so `source -> this` holds structurally
    /// (until updates desynchronize old rows — realistic FD churn).
    Derived {
        /// Index of the source column (must be `< this column's index`).
        source: usize,
        /// Number of distinct derived groups.
        groups: usize,
    },
    /// Like [`ColumnModel::Derived`], but with probability `noise` the
    /// value is drawn randomly instead — an almost-FD that flickers.
    Correlated {
        /// Index of the source column (must be `< this column's index`).
        source: usize,
        /// Number of distinct groups.
        groups: usize,
        /// Probability of a random (violating) value.
        noise: f64,
    },
    /// A Zipf-skewed categorical that is *null* (the empty string, the
    /// placeholder [`parse_csv`](dynfd_relation::parse_csv) produces for
    /// missing fields) with probability `null_rate`. Null-heavy columns
    /// concentrate most records in one giant PLI cluster — the
    /// adversarial shape for cluster pruning and the violation search,
    /// which the testkit's `null-heavy` fuzzing profile exercises.
    Nullable {
        /// Number of distinct non-null values.
        cardinality: usize,
        /// Zipf exponent over the non-null values.
        skew: f64,
        /// Probability of producing the null placeholder instead.
        null_rate: f64,
    },
}

/// A table layout: name plus one [`ColumnModel`] per column.
#[derive(Clone, Debug)]
pub struct TableSpec {
    /// Relation name.
    pub name: String,
    /// Column models; `Derived`/`Correlated` sources must point to
    /// earlier columns.
    pub columns: Vec<ColumnModel>,
    /// Cached Zipf samplers per categorical column (index-aligned).
    zipfs: Vec<Option<Zipf>>,
}

impl TableSpec {
    /// Builds a spec, validating model references.
    ///
    /// # Panics
    ///
    /// Panics if a `Derived`/`Correlated` source does not precede its
    /// column, or a cardinality/group count is zero.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnModel>) -> Self {
        for (i, c) in columns.iter().enumerate() {
            match *c {
                ColumnModel::Key => {}
                ColumnModel::Categorical { cardinality, .. } => {
                    assert!(cardinality > 0, "column {i}: zero cardinality");
                }
                ColumnModel::Derived { source, groups }
                | ColumnModel::Correlated { source, groups, .. } => {
                    assert!(source < i, "column {i}: source {source} must precede it");
                    assert!(groups > 0, "column {i}: zero groups");
                }
                ColumnModel::Nullable {
                    cardinality,
                    null_rate,
                    ..
                } => {
                    assert!(cardinality > 0, "column {i}: zero cardinality");
                    assert!(
                        (0.0..=1.0).contains(&null_rate),
                        "column {i}: null rate {null_rate} outside [0, 1]"
                    );
                }
            }
        }
        let zipfs = columns
            .iter()
            .map(|c| match *c {
                ColumnModel::Categorical { cardinality, skew }
                | ColumnModel::Nullable {
                    cardinality, skew, ..
                } => Some(Zipf::new(cardinality, skew)),
                _ => None,
            })
            .collect();
        TableSpec {
            name: name.into(),
            columns,
            zipfs,
        }
    }

    /// The corresponding schema (`c0..cN` column names).
    pub fn schema(&self) -> Schema {
        Schema::anonymous(&self.name, self.columns.len())
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Generates a full row. `key_counter` feeds [`ColumnModel::Key`]
    /// columns and is advanced.
    pub fn generate_row<R: Rng + ?Sized>(&self, rng: &mut R, key_counter: &mut u64) -> Vec<String> {
        let mut row: Vec<String> = Vec::with_capacity(self.columns.len());
        for i in 0..self.columns.len() {
            let v = self.value_for(i, &row, rng, key_counter);
            row.push(v);
        }
        row
    }

    /// Regenerates the columns listed in `cols` (ascending order) in
    /// place — the few-attribute updates typical of real change
    /// histories. Derived/correlated columns re-read the row's *current*
    /// source values, so updating a source without its dependents breaks
    /// the planted FD exactly like a real-world partial update would.
    pub fn regenerate_columns<R: Rng + ?Sized>(
        &self,
        row: &mut [String],
        cols: &[usize],
        rng: &mut R,
        key_counter: &mut u64,
    ) {
        debug_assert!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "cols must be ascending"
        );
        for &i in cols {
            row[i] = self.value_for(i, row, rng, key_counter);
        }
    }

    /// Scrambles the row's [`ColumnModel::Correlated`] leaf columns:
    /// each gets a uniformly random group value with probability ½. Used
    /// by the change generator's *dirty bursts* — stretches of operations
    /// from a faulty writer that violate the almost-FDs en masse, giving
    /// per-batch costs the spiky profile of real histories (Figure 5).
    pub fn scramble_correlated<R: Rng + ?Sized>(&self, row: &mut [String], rng: &mut R) {
        for (i, model) in self.columns.iter().enumerate() {
            if let ColumnModel::Correlated { groups, .. } = *model {
                if rng.gen::<f64>() < 0.5 {
                    row[i] = format!("x{}_{}", i, rng.gen_range(0..groups));
                }
            }
        }
    }

    /// Closes a column set under *dependents*: every `Derived`/
    /// `Correlated` column whose (transitive) source is in the set is
    /// added. Change generators use this so an update rewrites a row
    /// consistently — touching a source without its dependents would
    /// leave a stale row whose agree sets decorrelate from everything,
    /// which wide real-world tables do not exhibit at scale.
    ///
    /// Returns the closed set, ascending.
    pub fn update_closure(&self, cols: &[usize]) -> Vec<usize> {
        let mut in_set = vec![false; self.columns.len()];
        for &c in cols {
            in_set[c] = true;
        }
        // Sources always precede dependents, so one ascending pass closes
        // the set transitively.
        for i in 0..self.columns.len() {
            if in_set[i] {
                continue;
            }
            match self.columns[i] {
                ColumnModel::Derived { source, .. } | ColumnModel::Correlated { source, .. }
                    if in_set[source] =>
                {
                    in_set[i] = true;
                }
                _ => {}
            }
        }
        (0..self.columns.len()).filter(|&i| in_set[i]).collect()
    }

    fn value_for<R: Rng + ?Sized>(
        &self,
        col: usize,
        row: &[String],
        rng: &mut R,
        key_counter: &mut u64,
    ) -> String {
        match self.columns[col] {
            ColumnModel::Key => {
                let v = *key_counter;
                *key_counter += 1;
                format!("k{v}")
            }
            ColumnModel::Categorical { .. } => {
                let z = self.zipfs[col]
                    .as_ref()
                    .expect("zipf cached for categorical");
                format!("c{}_{}", col, z.sample(rng))
            }
            ColumnModel::Derived { source, groups } => {
                format!(
                    "d{}_{}",
                    col,
                    hash_to_group(&row[source], col as u64, groups)
                )
            }
            ColumnModel::Correlated {
                source,
                groups,
                noise,
            } => {
                if rng.gen::<f64>() < noise {
                    format!("x{}_{}", col, rng.gen_range(0..groups))
                } else {
                    format!(
                        "x{}_{}",
                        col,
                        hash_to_group(&row[source], col as u64, groups)
                    )
                }
            }
            ColumnModel::Nullable { null_rate, .. } => {
                if rng.gen::<f64>() < null_rate {
                    String::new()
                } else {
                    let z = self.zipfs[col].as_ref().expect("zipf cached for nullable");
                    format!("n{}_{}", col, z.sample(rng))
                }
            }
        }
    }
}

/// Deterministic value→group mapping (FNV-1a over the value bytes mixed
/// with the column index).
fn hash_to_group(value: &str, col: u64, groups: usize) -> usize {
    let mut h: u64 = 0xcbf29ce484222325 ^ col.wrapping_mul(0x100000001b3);
    for b in value.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % groups as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn spec() -> TableSpec {
        TableSpec::new(
            "t",
            vec![
                ColumnModel::Key,
                ColumnModel::Categorical {
                    cardinality: 5,
                    skew: 1.0,
                },
                ColumnModel::Derived {
                    source: 1,
                    groups: 2,
                },
                ColumnModel::Correlated {
                    source: 1,
                    groups: 3,
                    noise: 0.0,
                },
            ],
        )
    }

    #[test]
    fn rows_have_schema_arity() {
        let s = spec();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut key = 0;
        let row = s.generate_row(&mut rng, &mut key);
        assert_eq!(row.len(), 4);
        assert_eq!(s.schema().arity(), 4);
        assert_eq!(key, 1, "one key consumed");
    }

    #[test]
    fn key_column_is_unique() {
        let s = spec();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut key = 0;
        let keys: Vec<String> = (0..50)
            .map(|_| s.generate_row(&mut rng, &mut key)[0].clone())
            .collect();
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }

    #[test]
    fn derived_column_is_a_function_of_its_source() {
        let s = spec();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut key = 0;
        let rows: Vec<Vec<String>> = (0..200)
            .map(|_| s.generate_row(&mut rng, &mut key))
            .collect();
        for a in &rows {
            for b in &rows {
                if a[1] == b[1] {
                    assert_eq!(a[2], b[2], "derived must agree when source agrees");
                }
            }
        }
    }

    #[test]
    fn zero_noise_correlated_is_also_a_function() {
        let s = spec();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut key = 0;
        let rows: Vec<Vec<String>> = (0..100)
            .map(|_| s.generate_row(&mut rng, &mut key))
            .collect();
        for a in &rows {
            for b in &rows {
                if a[1] == b[1] {
                    assert_eq!(a[3], b[3]);
                }
            }
        }
    }

    #[test]
    fn noisy_correlated_violates_sometimes() {
        let s = TableSpec::new(
            "t",
            vec![
                ColumnModel::Categorical {
                    cardinality: 3,
                    skew: 0.0,
                },
                ColumnModel::Correlated {
                    source: 0,
                    groups: 4,
                    noise: 0.5,
                },
            ],
        );
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut key = 0;
        let rows: Vec<Vec<String>> = (0..300)
            .map(|_| s.generate_row(&mut rng, &mut key))
            .collect();
        let mut violated = false;
        'outer: for a in &rows {
            for b in &rows {
                if a[0] == b[0] && a[1] != b[1] {
                    violated = true;
                    break 'outer;
                }
            }
        }
        assert!(violated, "noise 0.5 must break the dependency somewhere");
    }

    #[test]
    fn regenerate_touches_only_requested_columns() {
        let s = spec();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut key = 0;
        let mut row = s.generate_row(&mut rng, &mut key);
        let before = row.clone();
        s.regenerate_columns(&mut row, &[1], &mut rng, &mut key);
        assert_eq!(row[0], before[0]);
        assert_eq!(
            row[2], before[2],
            "derived untouched (may now violate — intended)"
        );
        assert_eq!(row[3], before[3]);
    }

    #[test]
    fn nullable_column_mixes_nulls_and_skewed_values() {
        let s = TableSpec::new(
            "t",
            vec![ColumnModel::Nullable {
                cardinality: 4,
                skew: 1.0,
                null_rate: 0.6,
            }],
        );
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut key = 0;
        let values: Vec<String> = (0..500)
            .map(|_| s.generate_row(&mut rng, &mut key)[0].clone())
            .collect();
        let nulls = values.iter().filter(|v| v.is_empty()).count();
        assert!(
            (200..400).contains(&nulls),
            "null rate 0.6 over 500 draws: {nulls}"
        );
        assert!(
            values.iter().any(|v| v.starts_with("n0_")),
            "non-null values present"
        );
    }

    #[test]
    #[should_panic(expected = "null rate")]
    fn nullable_rate_out_of_range_rejected() {
        let _ = TableSpec::new(
            "bad",
            vec![ColumnModel::Nullable {
                cardinality: 2,
                skew: 0.0,
                null_rate: 1.5,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn forward_reference_rejected() {
        let _ = TableSpec::new(
            "bad",
            vec![
                ColumnModel::Derived {
                    source: 1,
                    groups: 2,
                },
                ColumnModel::Key,
            ],
        );
    }

    #[test]
    fn determinism() {
        let s = spec();
        let gen = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut key = 0;
            (0..10)
                .map(|_| s.generate_row(&mut rng, &mut key))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }
}
