//! Property tests for the extension surface: change-log round-trips,
//! Armstrong-closure laws, batcher conservation, and the soundness of
//! the §8 prunings (results identical with and without them).

use dynfd::common::{AttrSet, Fd, RecordId, Schema};
use dynfd::core::{DynFd, DynFdConfig};
use dynfd::lattice::closure::{attribute_closure, implies, is_superkey};
use dynfd::lattice::FdTree;
use dynfd::relation::{
    parse_changelog, write_changelog, Batch, Batcher, ChangeOp, DynamicRelation,
};
use proptest::prelude::*;

const ARITY: usize = 5;

fn arb_value() -> impl Strategy<Value = String> {
    // Values including the separator and escape characters, to stress
    // the change-log escaping.
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('b'),
            Just('|'),
            Just('\\'),
            Just(','),
            Just(' ')
        ],
        0..6,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn arb_op() -> impl Strategy<Value = ChangeOp> {
    prop_oneof![
        proptest::collection::vec(arb_value(), ARITY).prop_map(ChangeOp::Insert),
        (0u64..100).prop_map(|i| ChangeOp::Delete(RecordId(i))),
        ((0u64..100), proptest::collection::vec(arb_value(), ARITY))
            .prop_map(|(i, row)| ChangeOp::Update(RecordId(i), row)),
    ]
}

fn arb_fd() -> impl Strategy<Value = Fd> {
    (0usize..ARITY, 0u32..(1 << ARITY)).prop_map(|(rhs, mask)| {
        let lhs: AttrSet = (0..ARITY)
            .filter(|&a| a != rhs && mask >> a & 1 == 1)
            .collect();
        Fd::new(lhs, rhs)
    })
}

fn arb_set() -> impl Strategy<Value = AttrSet> {
    (0u32..(1 << ARITY)).prop_map(|mask| (0..ARITY).filter(|&a| mask >> a & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn changelog_roundtrip(ops in proptest::collection::vec(arb_op(), 0..25)) {
        // Values containing '#' at line start or newlines are out of
        // scope for the format; the generator avoids them.
        let text = write_changelog(&ops);
        let back = parse_changelog(&text, ARITY).unwrap();
        prop_assert_eq!(back, ops);
    }

    #[test]
    fn batcher_conserves_operations(
        ops in proptest::collection::vec(arb_op(), 0..40),
        capacity in 1usize..9,
    ) {
        let mut batcher = Batcher::new(capacity);
        let mut emitted: Vec<ChangeOp> = Vec::new();
        for op in &ops {
            if let Some(batch) = batcher.push(op.clone()) {
                prop_assert_eq!(batch.len(), capacity, "only full batches mid-stream");
                emitted.extend(batch.ops().iter().cloned());
            }
        }
        if let Some(tail) = batcher.flush() {
            prop_assert!(tail.len() <= capacity);
            emitted.extend(tail.ops().iter().cloned());
        }
        prop_assert_eq!(emitted, ops, "order and content preserved");
        prop_assert_eq!(batcher.pending(), 0);
    }

    #[test]
    fn closure_laws(
        fds in proptest::collection::vec(arb_fd(), 0..12),
        x in arb_set(),
        y in arb_set(),
    ) {
        let cover: FdTree = fds.iter().copied().collect();
        let cx = attribute_closure(&cover, x, ARITY);
        // Extensive: X ⊆ X⁺.
        prop_assert!(x.is_subset_of(&cx));
        // Idempotent: (X⁺)⁺ = X⁺.
        prop_assert_eq!(attribute_closure(&cover, cx, ARITY), cx);
        // Monotone: X ⊆ Y ⇒ X⁺ ⊆ Y⁺.
        if x.is_subset_of(&y) {
            prop_assert!(cx.is_subset_of(&attribute_closure(&cover, y, ARITY)));
        }
        // Every stored FD is implied, and implication matches closures.
        for fd in &fds {
            prop_assert!(implies(&cover, fd, ARITY));
        }
        for rhs in 0..ARITY {
            let fd = Fd { lhs: x, rhs };
            prop_assert_eq!(
                implies(&cover, &fd, ARITY),
                cx.contains(rhs),
                "implication must equal closure membership"
            );
        }
        // Superkey iff closure is everything.
        prop_assert_eq!(is_superkey(&cover, x, ARITY), cx == AttrSet::full(ARITY));
    }

    #[test]
    fn update_pruning_is_invisible_in_results(
        rows in proptest::collection::vec(
            proptest::collection::vec((0u8..3).prop_map(|v| format!("v{v}")), ARITY),
            3..10,
        ),
        touches in proptest::collection::vec((0usize..8, 0usize..ARITY, 0u8..3), 1..12),
    ) {
        // Build identical relations; drive both with the same pure-update
        // batches; covers must match exactly at every step.
        let schema = Schema::anonymous("u", ARITY);
        let rel = DynamicRelation::from_rows(schema, &rows).unwrap();
        let mut plain = DynFd::new(rel.clone(), DynFdConfig::default());
        let mut pruned = DynFd::new(
            rel,
            DynFdConfig { update_pruning: true, ..DynFdConfig::default() },
        );
        let mut live: Vec<RecordId> = (0..rows.len() as u64).map(RecordId).collect();
        let mut next_id = rows.len() as u64;
        for chunk in touches.chunks(3) {
            let mut batch = Batch::new();
            let mut fresh = Vec::new();
            for &(pick, col, val) in chunk {
                let rid = live[pick % live.len()];
                if batch.ops().iter().any(|op| matches!(op, ChangeOp::Update(r, _) if *r == rid)) {
                    continue; // one update per record per batch
                }
                let mut row = plain.relation().materialize(rid).unwrap();
                row[col] = format!("v{val}");
                batch.update(rid, row);
                live.retain(|&r| r != rid);
                fresh.push(RecordId(next_id));
                next_id += 1;
            }
            live.extend(fresh);
            if batch.is_empty() { continue; }
            plain.apply_batch(&batch).unwrap();
            pruned.apply_batch(&batch).unwrap();
            prop_assert_eq!(plain.positive_cover(), pruned.positive_cover());
            prop_assert_eq!(plain.negative_cover(), pruned.negative_cover());
        }
        pruned.verify_consistency().map_err(TestCaseError::fail)?;
    }
}

#[test]
fn key_pruning_is_invisible_in_results() {
    // Column 0 is unique by construction and declared as a key; results
    // must match the undeclared run batch for batch.
    let schema = Schema::anonymous("k", 4);
    let rows: Vec<Vec<String>> = (0..25)
        .map(|i| {
            vec![
                format!("k{i}"),
                format!("a{}", i % 3),
                format!("b{}", i % 4),
                format!("c{}", i % 2),
            ]
        })
        .collect();
    let rel = DynamicRelation::from_rows(schema, &rows).unwrap();
    let mut plain = DynFd::new(rel.clone(), DynFdConfig::default());
    let mut keyed = DynFd::new(
        rel,
        DynFdConfig {
            known_keys: AttrSet::single(0),
            ..DynFdConfig::default()
        },
    );
    let mut key_counter = 25u64;
    for round in 0..6 {
        let mut batch = Batch::new();
        for j in 0..4 {
            batch.insert(vec![
                format!("k{key_counter}"),
                format!("a{}", (round + j) % 3),
                format!("b{}", (round * j) % 4),
                format!("c{}", j % 2),
            ]);
            key_counter += 1;
        }
        if round % 2 == 1 {
            batch.delete(RecordId(round as u64));
        }
        plain.apply_batch(&batch).unwrap();
        keyed.apply_batch(&batch).unwrap();
        assert_eq!(
            plain.positive_cover(),
            keyed.positive_cover(),
            "round {round}"
        );
        assert_eq!(
            plain.negative_cover(),
            keyed.negative_cover(),
            "round {round}"
        );
    }
    keyed.verify_consistency().unwrap();
}
