//! Relation schemas.

use crate::attrset::MAX_ATTRS;
use crate::AttrSet;
use std::fmt;

/// Column names and arity of a relation.
///
/// The schema is fixed for the lifetime of a profiled relation: DynFD
/// maintains FDs under *data* changes (inserts/updates/deletes), not
/// schema changes, matching the paper's setting.
#[derive(Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    columns: Vec<String>,
}

impl Schema {
    /// Creates a schema from a relation name and column names.
    ///
    /// # Panics
    ///
    /// Panics if there are more than [`MAX_ATTRS`] columns or duplicate
    /// column names.
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Self {
        assert!(
            columns.len() <= MAX_ATTRS,
            "schema has {} columns; at most {MAX_ATTRS} supported",
            columns.len()
        );
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].contains(c),
                "duplicate column name {c:?} in schema"
            );
        }
        Schema {
            name: name.into(),
            columns,
        }
    }

    /// Convenience constructor with `&str` column names.
    pub fn of(name: &str, columns: &[&str]) -> Self {
        Schema::new(name, columns.iter().map(|s| s.to_string()).collect())
    }

    /// Schema with anonymous columns `c0..c{n-1}` (used by generators and
    /// tests).
    pub fn anonymous(name: &str, arity: usize) -> Self {
        Schema::new(name, (0..arity).map(|i| format!("c{i}")).collect())
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Name of column `attr`.
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of range.
    pub fn column_name(&self, attr: usize) -> &str {
        &self.columns[attr]
    }

    /// All column names in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Index of the column with the given name, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The set of all attributes, `{0, ..., arity-1}`.
    pub fn all_attrs(&self) -> AttrSet {
        AttrSet::full(self.arity())
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.columns.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = Schema::of("people", &["first", "last", "zip", "city"]);
        assert_eq!(s.name(), "people");
        assert_eq!(s.arity(), 4);
        assert_eq!(s.column_name(2), "zip");
        assert_eq!(s.column_index("city"), Some(3));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.all_attrs().to_vec(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn anonymous_names() {
        let s = Schema::anonymous("t", 3);
        assert_eq!(s.columns(), &["c0", "c1", "c2"]);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_columns_rejected() {
        let _ = Schema::of("t", &["a", "b", "a"]);
    }

    #[test]
    fn debug_format() {
        let s = Schema::of("t", &["a", "b"]);
        assert_eq!(format!("{s:?}"), "t(a, b)");
    }
}
