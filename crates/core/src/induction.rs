//! Dependency induction into DynFD's twin covers (Algorithms 3 and 6).

use crate::DynFd;
use dynfd_common::{AttrSet, Fd, RecordId};
use dynfd_lattice::{generalize_into, specialize_into};

impl DynFd {
    /// Algorithm 3 — dependency induction from an observed **non-FD**:
    /// the record pair `pair` agrees exactly on `agree`, witnessing the
    /// non-FD `agree -> y` for every `y ∉ agree`.
    ///
    /// The positive cover specializes away every violated FD; the
    /// negative cover gains the witnessed non-FDs where maximal (lines
    /// 10–14), carrying the pair as a §5.2 surrogate violation.
    ///
    /// Returns `true` if either cover actually changed — the violation
    /// search uses this as its per-comparison efficiency signal.
    pub(crate) fn apply_non_fd_witness(
        &mut self,
        agree: AttrSet,
        pair: (RecordId, RecordId),
    ) -> bool {
        let arity = self.rel.arity();
        debug_assert!(agree.len() < arity, "a full agree set witnesses nothing");
        let mut learned = false;
        for y in 0..arity {
            if agree.contains(y) {
                continue;
            }
            let invalidated = specialize_into(&mut self.fds, agree, y, arity);
            learned |= !invalidated.is_empty();
            if self.non_fds.add_maximal_evicting(agree, y) {
                learned = true;
                if self.config.validation_pruning {
                    self.violations.attach(Fd::new(agree, y), pair);
                }
            }
        }
        learned
    }

    /// Algorithm 6 (`deduceNonFds`) — dependency induction from an
    /// observed **valid FD** `fd`:
    ///
    /// * negative cover: every specialization of `fd` is valid and is
    ///   replaced by its direct generalizations dropping one attribute
    ///   of `fd.lhs` (candidates validated at lower levels later);
    /// * positive cover: `fd` enters as a minimal FD, evicting its
    ///   now-non-minimal specializations (lines 10–12).
    pub(crate) fn apply_valid_fd(&mut self, fd: Fd) {
        let newly_valid = generalize_into(&mut self.non_fds, fd.lhs, fd.rhs);
        for lhs in &newly_valid {
            self.violations.detach(&Fd::new(*lhs, fd.rhs));
        }
        if !self.fds.contains_generalization(fd.lhs, fd.rhs) {
            self.fds.remove_specializations(fd.lhs, fd.rhs);
            self.fds.add(fd.lhs, fd.rhs);
        }
    }
}
