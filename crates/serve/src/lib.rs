//! `dynfd-serve`: a multi-tenant concurrent serve layer over the DynFD
//! engine.
//!
//! Every tenant is one independent relation with its own WAL directory
//! and [`dynfd_persist::FdEngine`]; a sharded worker pool applies
//! interleaved batch streams with per-tenant FIFO order, bounded
//! admission (backpressure or load-shedding), and typed wire errors
//! drawn from the [`dynfd_core::DynFdError`] taxonomy. The wire format
//! is a length-prefixed binary framing over any byte stream
//! (stdin/stdout, unix socket); see [`wire`] and DESIGN.md §6g.
//!
//! The load-bearing properties — per-tenant determinism at any worker
//! count, cross-tenant isolation under faults, exactly-once response
//! discipline under wire damage, and drain-then-sync shutdown — are
//! each pinned by a dedicated test suite (`tests/serve_determinism.rs`,
//! `tests/tenant_isolation.rs`, the `wire-*` fuzz injections, and the
//! `serve-drain` crash-harness case).

#![warn(missing_docs)]

mod client;
mod metrics;
mod queue;
pub mod resume;
mod server;
mod session;
mod tenant;
pub mod transport;
pub mod wire;

pub use client::{submit_with_retry, RetryPolicy, RetryReport, SessionClient, SessionClientReport};
pub use metrics::{GlobalSnapshot, MetricsSnapshot};
pub use resume::{SessionHandle, SessionRegistry};
pub use server::{
    AdmissionPolicy, ApplySummary, BatchReply, CloseReport, EvictKillPoint, OpenReport,
    ServeConfig, ServeEngine, ShutdownReport, TenantQuota,
};
pub use session::{
    serve_connection, serve_connection_with, ChannelReader, ConnOptions, ConnectionReport,
    ResponseSink,
};
pub use tenant::valid_tenant_name;
pub use transport::{serve_listener, ListenAddr, TransportConfig, TransportReport};

use dynfd_core::DynFdError;
use std::fmt;

/// Wire error code for a full tenant queue under the shed policy.
pub const CODE_OVERLOADED: u32 = 13;
/// Wire error code for a batch addressed to an unregistered tenant.
pub const CODE_UNKNOWN_TENANT: u32 = 14;
/// Wire error code for opening a tenant name that is already live.
pub const CODE_TENANT_EXISTS: u32 = 15;
/// Wire error code for submissions after shutdown began.
pub const CODE_SHUTTING_DOWN: u32 = 16;
/// Wire error code for a tenant over its resource quota.
pub const CODE_QUOTA_EXCEEDED: u32 = 17;
/// Wire error code for a job whose deadline passed before it reached
/// the engine (rejected pre-apply; the batch was never started).
pub const CODE_DEADLINE_EXCEEDED: u32 = 18;
/// Wire error code for submissions landing inside a tenant's eviction
/// window (drain → persist → release in progress).
pub const CODE_EVICTED: u32 = 19;
/// Wire error code for a session-protocol violation: a sessioned apply
/// before `Hello`, a sequence gap, or a re-send older than the
/// ack-replay window.
pub const CODE_SESSION: u32 = 20;
/// Wire error code for a connection shed because the client consumed
/// responses too slowly (bounded outbox overflow or write/idle deadline
/// hit); sent best-effort, then the connection is closed.
pub const CODE_SLOW_CLIENT: u32 = 21;

/// Which resource a [`ServeError::QuotaExceeded`] rejection meters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuotaKind {
    /// Resident bytes: relation arena + dictionaries + PLIs + the
    /// PLI-intersection cache, per [`DynFd::resident_bytes`]
    /// (dynfd_core::DynFd::resident_bytes).
    Bytes,
    /// Cumulative batch-apply CPU (wall) time.
    Cpu,
}

impl fmt::Display for QuotaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuotaKind::Bytes => write!(f, "resident-bytes"),
            QuotaKind::Cpu => write!(f, "cpu-time"),
        }
    }
}

/// A typed serve-layer failure. Engine failures pass through with their
/// PR 3 exit codes; the serve layer adds admission/lifecycle codes in
/// the 13–21 range (engine codes stop at 12).
#[derive(Debug)]
pub enum ServeError {
    /// The tenant's engine rejected or failed the batch.
    Engine(DynFdError),
    /// Admission refused: the tenant's queue is at capacity (shed
    /// policy only — the block policy waits instead).
    Overloaded {
        /// The tenant whose queue is full.
        tenant: String,
        /// In-flight batches at refusal time.
        depth: usize,
        /// The configured per-tenant bound.
        capacity: usize,
        /// Machine-readable hint: how long a compliant client should
        /// wait before retrying (grows with the tenant's consecutive
        /// rejection streak, resets on admission).
        retry_after_ms: u64,
    },
    /// Admission refused: the tenant is over a resource quota
    /// ([`TenantQuota`]). The governor degrades the tenant's cache
    /// before this fires; only a tenant over quota even uncached is
    /// rejected.
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: String,
        /// Which resource tripped.
        kind: QuotaKind,
        /// Measured usage (bytes, or CPU milliseconds).
        used: u64,
        /// The configured limit in the same unit.
        limit: u64,
        /// Retry hint, as in [`ServeError::Overloaded`].
        retry_after_ms: u64,
    },
    /// The job's deadline passed before a worker reached it; the batch
    /// was rejected *before* apply, so the tenant's state is untouched
    /// (the PR 3 transactional guarantee holds trivially).
    DeadlineExceeded {
        /// The tenant the job targeted.
        tenant: String,
        /// The deadline budget the job carried.
        deadline_ms: u64,
        /// How long the job actually waited before a worker saw it.
        waited_ms: u64,
    },
    /// Admission refused: the tenant is mid-eviction (drain → persist →
    /// release). Once the window closes the name answers
    /// [`ServeError::UnknownTenant`] until re-opened.
    Evicted {
        /// The tenant being evicted.
        tenant: String,
        /// Retry hint: once elapsed, re-`Open` re-admits the tenant
        /// from its durable state.
        retry_after_ms: u64,
    },
    /// The named tenant is not registered.
    UnknownTenant(String),
    /// An `Open` named a tenant that is already live.
    TenantExists(String),
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// The request was syntactically invalid (bad frame payload or
    /// tenant name).
    Malformed(String),
    /// A sessioned request broke the exactly-once resume protocol (see
    /// `crate::resume`): apply before `Hello`, a sequence gap, or a
    /// re-send that fell off the bounded ack-replay window.
    SessionViolation {
        /// The client session the request rode on (empty when the
        /// violation is "no session bound").
        session: String,
        /// The tenant the request targeted (empty for `Hello` errors).
        tenant: String,
        /// What exactly was violated.
        detail: String,
    },
    /// The connection's bounded outbox overflowed: the client is not
    /// reading responses fast enough and is disconnected so worker
    /// threads never block on a dead socket.
    SlowClient {
        /// The configured outbox capacity that was exhausted.
        capacity: usize,
    },
}

impl ServeError {
    /// The stable wire error code (also the CLI exit code for fatal
    /// serve errors): engine errors keep their exit codes (3–12),
    /// serve-layer conditions use 13–21, malformed input maps to the
    /// parse code 4.
    pub fn wire_code(&self) -> u32 {
        match self {
            ServeError::Engine(e) => u32::from(e.exit_code()),
            ServeError::Overloaded { .. } => CODE_OVERLOADED,
            ServeError::QuotaExceeded { .. } => CODE_QUOTA_EXCEEDED,
            ServeError::DeadlineExceeded { .. } => CODE_DEADLINE_EXCEEDED,
            ServeError::Evicted { .. } => CODE_EVICTED,
            ServeError::UnknownTenant(_) => CODE_UNKNOWN_TENANT,
            ServeError::TenantExists(_) => CODE_TENANT_EXISTS,
            ServeError::ShuttingDown => CODE_SHUTTING_DOWN,
            ServeError::Malformed(_) => 4,
            ServeError::SessionViolation { .. } => CODE_SESSION,
            ServeError::SlowClient { .. } => CODE_SLOW_CLIENT,
        }
    }

    /// Whether this is an orderly per-request rejection (the tenant and
    /// server remain healthy) rather than an internal fault.
    pub fn is_rejection(&self) -> bool {
        match self {
            ServeError::Engine(e) => e.is_rejection(),
            _ => true,
        }
    }

    /// The machine-readable retry hint carried by governance
    /// rejections, if any: milliseconds a compliant client should back
    /// off before retrying (or, for [`ServeError::Evicted`], before
    /// re-opening the tenant).
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServeError::Overloaded { retry_after_ms, .. }
            | ServeError::QuotaExceeded { retry_after_ms, .. }
            | ServeError::Evicted { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::Overloaded {
                tenant,
                depth,
                capacity,
                retry_after_ms,
            } => write!(
                f,
                "tenant {tenant:?} overloaded: {depth} in flight (capacity {capacity}); \
                 retry after {retry_after_ms}ms"
            ),
            ServeError::QuotaExceeded {
                tenant,
                kind,
                used,
                limit,
                retry_after_ms,
            } => write!(
                f,
                "tenant {tenant:?} over {kind} quota: {used} of {limit}; \
                 retry after {retry_after_ms}ms"
            ),
            ServeError::DeadlineExceeded {
                tenant,
                deadline_ms,
                waited_ms,
            } => write!(
                f,
                "tenant {tenant:?} job missed its {deadline_ms}ms deadline \
                 (waited {waited_ms}ms); rejected before apply"
            ),
            ServeError::Evicted {
                tenant,
                retry_after_ms,
            } => write!(
                f,
                "tenant {tenant:?} is being evicted; re-open after {retry_after_ms}ms"
            ),
            ServeError::UnknownTenant(name) => write!(f, "unknown tenant {name:?}"),
            ServeError::TenantExists(name) => write!(f, "tenant {name:?} already exists"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            ServeError::SessionViolation {
                session,
                tenant,
                detail,
            } => write!(
                f,
                "session {session:?} violation on tenant {tenant:?}: {detail}"
            ),
            ServeError::SlowClient { capacity } => write!(
                f,
                "client reads too slowly: outbox full ({capacity} responses buffered); \
                 disconnecting"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_codes_extend_the_engine_taxonomy_without_collision() {
        // Engine exit codes end at 12 (SnapshotCorrupt); serve-layer
        // codes must stay clear of them so a wire code is unambiguous.
        let serve_codes = [
            CODE_OVERLOADED,
            CODE_UNKNOWN_TENANT,
            CODE_TENANT_EXISTS,
            CODE_SHUTTING_DOWN,
            CODE_QUOTA_EXCEEDED,
            CODE_DEADLINE_EXCEEDED,
            CODE_EVICTED,
            CODE_SESSION,
            CODE_SLOW_CLIENT,
        ];
        assert_eq!(serve_codes, [13, 14, 15, 16, 17, 18, 19, 20, 21]);
        assert_eq!(
            ServeError::Overloaded {
                tenant: "t".into(),
                depth: 4,
                capacity: 4,
                retry_after_ms: 10,
            }
            .wire_code(),
            13
        );
        assert_eq!(ServeError::UnknownTenant("t".into()).wire_code(), 14);
        assert_eq!(ServeError::TenantExists("t".into()).wire_code(), 15);
        assert_eq!(ServeError::ShuttingDown.wire_code(), 16);
        assert_eq!(
            ServeError::QuotaExceeded {
                tenant: "t".into(),
                kind: QuotaKind::Bytes,
                used: 2048,
                limit: 1024,
                retry_after_ms: 20,
            }
            .wire_code(),
            17
        );
        assert_eq!(
            ServeError::DeadlineExceeded {
                tenant: "t".into(),
                deadline_ms: 5,
                waited_ms: 9,
            }
            .wire_code(),
            18
        );
        assert_eq!(
            ServeError::Evicted {
                tenant: "t".into(),
                retry_after_ms: 40,
            }
            .wire_code(),
            19
        );
        assert_eq!(
            ServeError::SessionViolation {
                session: "s".into(),
                tenant: "t".into(),
                detail: "gap".into(),
            }
            .wire_code(),
            20
        );
        assert_eq!(ServeError::SlowClient { capacity: 8 }.wire_code(), 21);
        assert!(ServeError::SlowClient { capacity: 8 }.is_rejection());
        assert_eq!(
            ServeError::SlowClient { capacity: 8 }.retry_after_ms(),
            None
        );
        assert_eq!(ServeError::Malformed("x".into()).wire_code(), 4);
        assert_eq!(
            ServeError::Engine(DynFdError::ArityMismatch {
                expected: 3,
                actual: 2
            })
            .wire_code(),
            7
        );
        assert!(ServeError::ShuttingDown.is_rejection());
    }

    #[test]
    fn retry_hints_ride_only_governance_rejections() {
        assert_eq!(
            ServeError::Overloaded {
                tenant: "t".into(),
                depth: 1,
                capacity: 1,
                retry_after_ms: 80,
            }
            .retry_after_ms(),
            Some(80)
        );
        assert_eq!(
            ServeError::QuotaExceeded {
                tenant: "t".into(),
                kind: QuotaKind::Cpu,
                used: 900,
                limit: 500,
                retry_after_ms: 160,
            }
            .retry_after_ms(),
            Some(160)
        );
        assert_eq!(
            ServeError::Evicted {
                tenant: "t".into(),
                retry_after_ms: 10,
            }
            .retry_after_ms(),
            Some(10)
        );
        assert_eq!(ServeError::ShuttingDown.retry_after_ms(), None);
        assert_eq!(
            ServeError::DeadlineExceeded {
                tenant: "t".into(),
                deadline_ms: 1,
                waited_ms: 2,
            }
            .retry_after_ms(),
            None,
            "a missed deadline is the client's clock problem, not backpressure"
        );
        assert!(ServeError::Evicted {
            tenant: "t".into(),
            retry_after_ms: 0
        }
        .is_rejection());
    }
}
