//! Microbenchmarks for the PLI-based validator — the inner loop of both
//! maintenance phases — including the effect of cluster pruning (§4.2).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dynfd_common::{AttrSet, Schema};
use dynfd_relation::{validate, DynamicRelation, ValidationOptions};

/// 5,000 rows, 6 columns; column 5 nearly mirrors column 0 so the
/// validated FD is *almost* valid — the worst case for early
/// termination.
fn build_relation() -> DynamicRelation {
    let rows: Vec<Vec<String>> = (0..5_000)
        .map(|i| {
            vec![
                format!("g{}", i % 50),
                format!("h{}", i % 97),
                format!("p{}", i % 11),
                format!("q{}", i % 7),
                format!("u{i}"),
                format!("m{}", if i == 4_999 { 999 } else { i % 50 }),
            ]
        })
        .collect();
    DynamicRelation::from_rows(Schema::anonymous("bench", 6), &rows).unwrap()
}

fn bench_validation(c: &mut Criterion) {
    let rel = build_relation();
    let lhs: AttrSet = [0usize, 1].into_iter().collect();
    let rhs: AttrSet = [2usize, 3, 5].into_iter().collect();
    let full = ValidationOptions::full();

    c.bench_function("validate_3rhs_5k_rows_full", |b| {
        b.iter(|| {
            validate(&rel, black_box(lhs), black_box(rhs), &full)
                .outcomes
                .len()
        })
    });

    // Cluster pruning with a watermark near the end: almost everything
    // skipped — the common case in the insert phase.
    let delta = ValidationOptions::delta(dynfd_common::RecordId(4_990));
    c.bench_function("validate_3rhs_5k_rows_cluster_pruned", |b| {
        b.iter(|| {
            validate(&rel, black_box(lhs), black_box(rhs), &delta)
                .outcomes
                .len()
        })
    });

    // Single-column LHS: the delete-phase shape.
    let single_lhs = AttrSet::single(0);
    c.bench_function("validate_1lhs_5k_rows_full", |b| {
        b.iter(|| {
            validate(
                &rel,
                black_box(single_lhs),
                black_box(AttrSet::single(5)),
                &full,
            )
            .outcomes
            .len()
        })
    });
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
