//! Per-column value dictionaries.

use std::collections::HashMap;
use std::sync::Arc;

/// Dense integer code standing in for a column value.
///
/// Codes are assigned in first-seen order and are *stable*: a code, once
/// assigned to a value, refers to that value for the lifetime of the
/// relation, even if every record holding it is deleted. This keeps
/// compressed records immutable and lets PLI clusters be keyed by code.
pub type ValueId = u32;

/// The largest number of distinct values one column can ever hold:
/// codes are `u32`, so `0..=u32::MAX` distinct codes exist.
pub const DICTIONARY_CAPACITY: usize = u32::MAX as usize;

/// A per-column dictionary mapping string values to [`ValueId`] codes.
///
/// Values are *interned*: the code map and the code-ordered value list
/// share one `Arc<str>` allocation per distinct value, so a value string
/// is stored once, not twice, and probing ([`Dictionary::encode`],
/// [`Dictionary::lookup`]) borrows the query `&str` without allocating
/// (`Arc<str>: Borrow<str>` drives the map lookup).
///
/// The dictionary only ever grows during normal operation; a failed
/// batch is undone with [`Dictionary::truncate`], which is sound
/// because rollback first removes every record that referenced the
/// truncated codes. The memory held by codes whose values have vanished
/// from the relation is negligible next to the PLIs and compressed
/// records (and real change histories keep re-using values).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dictionary {
    codes: HashMap<Arc<str>, ValueId>,
    values: Vec<Arc<str>>,
    /// Distinct-value budget; encoding past it is a batch-validation
    /// error ([`DynError::DictionaryOverflow`](dynfd_common::DynError)).
    /// Defaults to [`DICTIONARY_CAPACITY`]; tests shrink it to make the
    /// overflow path reachable.
    capacity: usize,
}

impl Default for Dictionary {
    fn default() -> Self {
        Dictionary {
            codes: HashMap::new(),
            values: Vec::new(),
            capacity: DICTIONARY_CAPACITY,
        }
    }
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// The distinct-value budget of this dictionary.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Overrides the distinct-value budget. Shrinking it below the
    /// current [`Dictionary::len`] makes every further unseen value an
    /// overflow but never invalidates codes already handed out.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.min(DICTIONARY_CAPACITY);
    }

    /// Whether encoding `value` would require a fresh code that the
    /// capacity does not cover.
    pub fn would_overflow(&self, value: &str) -> bool {
        !self.codes.contains_key(value) && self.values.len() >= self.capacity
    }

    /// Undoes every code assigned at or after `len` (rollback of a
    /// failed batch). The caller guarantees no live record references a
    /// truncated code.
    pub fn truncate(&mut self, len: usize) {
        for value in self.values.drain(len..) {
            self.codes.remove(value.as_ref());
        }
    }

    /// Returns the code for `value`, assigning a fresh one if the value
    /// has never been seen. The probe borrows `value`; only a genuinely
    /// fresh value allocates (once — the interned `Arc<str>` is shared
    /// between the map key and the value list).
    pub fn encode(&mut self, value: &str) -> ValueId {
        if let Some(&code) = self.codes.get(value) {
            return code;
        }
        let code = self.values.len() as ValueId;
        let interned: Arc<str> = Arc::from(value);
        self.codes.insert(Arc::clone(&interned), code);
        self.values.push(interned);
        code
    }

    /// Returns the code for `value` if one has been assigned.
    pub fn lookup(&self, value: &str) -> Option<ValueId> {
        self.codes.get(value).copied()
    }

    /// Returns the value for a code assigned earlier.
    ///
    /// # Panics
    ///
    /// Panics if `code` was never assigned.
    pub fn decode(&self, code: ValueId) -> &str {
        &self.values[code as usize]
    }

    /// All values ever encoded, in code order (`values()[c]` is the
    /// value of code `c`). Dead codes — values no live record holds —
    /// are included: codes are stable for the relation's lifetime.
    pub fn values(&self) -> &[Arc<str>] {
        &self.values
    }

    /// The values as owned strings in code order (snapshot encoding and
    /// tests; the zero-copy view is [`Dictionary::values`]).
    pub fn value_strings(&self) -> Vec<String> {
        self.values.iter().map(|v| v.to_string()).collect()
    }

    /// Reconstructs a dictionary from its persisted parts: the full
    /// value list in code order (dead codes included, so every code a
    /// compressed record may reference decodes to its original value)
    /// and the configured capacity. The inverse of reading
    /// [`Dictionary::values`] and [`Dictionary::capacity`]; the result
    /// is structurally equal (`==`) to the dictionary it was saved from.
    pub fn from_parts(values: Vec<String>, capacity: usize) -> Self {
        let values: Vec<Arc<str>> = values.into_iter().map(Arc::from).collect();
        let codes = values
            .iter()
            .enumerate()
            .map(|(code, v)| (Arc::clone(v), code as ValueId))
            .collect();
        Dictionary {
            codes,
            values,
            capacity: capacity.min(DICTIONARY_CAPACITY),
        }
    }

    /// Approximate resident bytes: each interned value is stored once
    /// (the map key and the list entry share the `Arc<str>` allocation)
    /// plus per-entry map/list overhead. A monotone-in-footprint
    /// estimate for quota accounting, not an exact allocator number.
    pub fn approx_bytes(&self) -> usize {
        64 + self
            .values
            .iter()
            .map(|v| v.len() + 64) // string bytes + Arc header + map entry + list slot
            .sum::<usize>()
    }

    /// Number of distinct values ever encoded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no value has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode("Potsdam");
        let b = d.encode("Berlin");
        assert_ne!(a, b);
        assert_eq!(d.encode("Potsdam"), a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn codes_are_dense_and_first_seen_ordered() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode("x"), 0);
        assert_eq!(d.encode("y"), 1);
        assert_eq!(d.encode("z"), 2);
    }

    #[test]
    fn decode_roundtrips() {
        let mut d = Dictionary::new();
        let c = d.encode("14482");
        assert_eq!(d.decode(c), "14482");
    }

    #[test]
    fn lookup_without_insert() {
        let mut d = Dictionary::new();
        assert_eq!(d.lookup("a"), None);
        d.encode("a");
        assert_eq!(d.lookup("a"), Some(0));
    }

    #[test]
    fn values_are_interned_not_cloned() {
        let mut d = Dictionary::new();
        d.encode("shared");
        let in_list = &d.values()[0];
        let in_map = d.codes.keys().next().expect("one interned key");
        assert!(
            Arc::ptr_eq(in_list, in_map),
            "map key and value list share one allocation"
        );
        // Re-encoding an existing value allocates nothing new.
        let before = Arc::strong_count(in_list);
        let _ = d.encode("shared");
        assert_eq!(Arc::strong_count(&d.values()[0]), before);
    }

    #[test]
    fn truncate_drops_interned_keys() {
        let mut d = Dictionary::new();
        d.encode("keep");
        d.encode("drop");
        d.truncate(1);
        assert_eq!(d.len(), 1);
        assert_eq!(d.lookup("drop"), None);
        assert_eq!(d.encode("drop"), 1, "re-assigned the freed code");
    }

    #[test]
    fn from_parts_roundtrips_including_dead_codes() {
        let mut d = Dictionary::new();
        d.encode("alive");
        d.encode("dead"); // pretend every record holding this is deleted
        d.encode("also-alive");
        d.set_capacity(100);
        let restored = Dictionary::from_parts(d.value_strings(), d.capacity());
        assert_eq!(restored, d);
        assert_eq!(restored.lookup("dead"), Some(1));
        assert_eq!(restored.decode(1), "dead");
    }

    #[test]
    fn empty_string_is_a_value() {
        // NULLs are modelled as empty strings and compare equal to each
        // other, the convention of FD discovery tooling.
        let mut d = Dictionary::new();
        let c = d.encode("");
        assert_eq!(d.encode(""), c);
        assert_eq!(d.decode(c), "");
    }
}
