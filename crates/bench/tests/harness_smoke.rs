//! Smoke tests for the experiment harness at 1 % scale: every
//! experiment module must run end to end and produce structurally
//! sane tables. (The real numbers come from the release harness; these
//! tests protect the code paths.)

use dynfd_bench::experiments::{self, Ctx};

fn tiny_ctx() -> Ctx {
    // Debug builds run these paths an order of magnitude slower; shrink
    // the datasets further so `cargo test --workspace` stays quick.
    let scale = if cfg!(debug_assertions) { 0.004 } else { 0.01 };
    Ctx::new(scale, false)
}

#[test]
fn table3_runs_and_covers_all_datasets() {
    let table = experiments::table3::run(&tiny_ctx());
    let text = table.render();
    for name in ["cpu", "disease", "actor", "single", "artist", "claims"] {
        assert!(text.contains(name), "missing dataset {name}:\n{text}");
    }
    let csv = table.to_csv_string();
    assert_eq!(csv.lines().count(), 7, "header + six datasets");
}

#[test]
fn table4_reports_positive_throughput() {
    let table = experiments::table4::run(&tiny_ctx());
    let csv = table.to_csv_string();
    assert_eq!(csv.lines().count(), 7);
    // Every data row must have non-empty numeric cells.
    for line in csv.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        assert_eq!(cells.len(), 7, "row arity: {line}");
        let runtime: f64 = cells[1].parse().expect("runtime number");
        assert!(runtime >= 0.0);
    }
}

#[test]
fn fig5_emits_summary_and_series() {
    let (summary, series) = experiments::fig5::run(&tiny_ctx());
    assert_eq!(summary.to_csv_string().lines().count(), 2);
    assert!(
        series.to_csv_string().lines().count() > 1,
        "at least one batch"
    );
}

#[test]
fn fig7_speedups_are_positive() {
    let ctx = tiny_ctx();
    let table = experiments::fig7::run(&ctx);
    let csv = table.to_csv_string();
    for line in csv.lines().skip(1) {
        for cell in line.split(',').skip(1) {
            let v: f64 = cell.parse().expect("speedup number");
            assert!(v > 0.0, "speedup must be positive: {line}");
        }
    }
}

#[test]
fn fig8_has_eight_strategy_rows() {
    let table = experiments::figs8_9::run_fig8(&tiny_ctx());
    let csv = table.to_csv_string();
    assert_eq!(csv.lines().count(), 9, "header + 8 strategy sets");
    assert!(csv.contains("4.3+5.3+4.2+5.2"));
    assert!(
        csv.lines().nth(1).unwrap().starts_with('-'),
        "baseline row first"
    );
}

#[test]
fn ext_rows_cover_all_variants() {
    let table = experiments::ext::run(&tiny_ctx());
    let csv = table.to_csv_string();
    assert_eq!(
        csv.lines().count(),
        1 + 6 * 4,
        "header + 6 datasets x 4 variants"
    );
    assert!(csv.contains("+ both"));
}
