//! Phase-by-phase timing probe for one paper profile (debugging aid for
//! the end-to-end smoke test's runtime).
//!
//! ```text
//! pr1_probe [profile] [rows] [changes] [bursts]
//! ```
//!
//! Set `DYNFD_PROBE_NO_CACHE=1` to run with the PLI-intersection cache
//! disabled — diffing two runs isolates the cache's contribution to
//! per-batch time.

use dynfd_core::{DynFd, DynFdConfig};
use dynfd_datagen::{GeneratedDataset, PAPER_PROFILES};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "actor".into());
    let p = PAPER_PROFILES
        .iter()
        .find(|p| p.name == name)
        .expect("profile name");
    let mut small = p.scaled(0.01);
    small.initial_rows = match args.next() {
        Some(rows) => rows.parse().expect("rows override"),
        None => small.initial_rows.min(150),
    };
    small.changes = match args.next() {
        Some(changes) => changes.parse().expect("changes override"),
        None => small.changes.min(300),
    };
    if let Some(bursts) = args.next() {
        small.bursts = bursts.parse().expect("bursts override");
    }
    let config = DynFdConfig {
        pli_cache: std::env::var_os("DYNFD_PROBE_NO_CACHE").is_none(),
        ..DynFdConfig::default()
    };

    let t = Instant::now();
    let data = GeneratedDataset::generate(&small);
    println!("[{}] generate: {:?}", p.name, t.elapsed());

    let t = Instant::now();
    let rel = data.to_relation();
    println!(
        "[{}] to_relation: {:?} ({} rows)",
        p.name,
        t.elapsed(),
        rel.len()
    );

    let t = Instant::now();
    let mut dynfd = DynFd::new(rel, config);
    println!(
        "[{}] bootstrap (HyFD + inversion): {:?}, |pos|={}, |neg|={}, cache={}",
        p.name,
        t.elapsed(),
        dynfd.positive_cover().len(),
        dynfd.negative_cover().len(),
        config.pli_cache,
    );

    for (i, b) in data.batches(60, None).into_iter().enumerate() {
        let t = Instant::now();
        let r = dynfd.apply_batch(&b).unwrap();
        println!(
            "[{}] batch {}: {:?} (del {:?} / ins {:?}), |pos|={}, |neg|={}, fdval={}, nonfdval={}, cache {}h/{}m/{}e {}B",
            p.name,
            i,
            t.elapsed(),
            r.metrics.delete_phase_time,
            r.metrics.insert_phase_time,
            dynfd.positive_cover().len(),
            dynfd.negative_cover().len(),
            r.metrics.fd_validations,
            r.metrics.non_fd_validations,
            r.metrics.cache_hits,
            r.metrics.cache_misses,
            r.metrics.cache_evictions,
            r.metrics.cache_bytes,
        );
    }
}
