//! Microbenchmarks for FD prefix-tree lookups — the operations DynFD
//! calls most frequently (generalization/specialization checks during
//! induction and minimality/maximality pruning).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dynfd_common::AttrSet;
use dynfd_lattice::FdTree;

/// A deterministic pseudo-random tree over `arity` attributes.
fn build_tree(arity: usize, n: usize) -> FdTree {
    let mut tree = FdTree::new();
    let mut x = 0x243F6A8885A308D3u64;
    while tree.len() < n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let rhs = ((x >> 7) % arity as u64) as usize;
        let mask = (x >> 17) % (1 << arity.min(30));
        let lhs: AttrSet = (0..arity)
            .filter(|&a| a != rhs && mask >> a & 1 == 1)
            .collect();
        tree.add(lhs, rhs);
    }
    tree
}

fn bench_lookups(c: &mut Criterion) {
    let arity = 20;
    let tree = build_tree(arity, 2_000);
    let probe: AttrSet = [1usize, 3, 5, 8, 13, 17].into_iter().collect();

    c.bench_function("fdtree_contains_generalization", |b| {
        b.iter(|| tree.contains_generalization(black_box(probe), black_box(0)))
    });
    c.bench_function("fdtree_contains_specialization", |b| {
        b.iter(|| tree.contains_specialization(black_box(AttrSet::single(3)), black_box(0)))
    });
    c.bench_function("fdtree_get_level_3", |b| {
        b.iter(|| tree.get_level(black_box(3)).len())
    });
    c.bench_function("fdtree_all_fds", |b| b.iter(|| tree.all_fds().len()));
}

fn bench_mutation(c: &mut Criterion) {
    c.bench_function("fdtree_build_2k_fds_arity20", |b| {
        b.iter(|| build_tree(20, 2_000).len())
    });
}

criterion_group!(benches, bench_lookups, bench_mutation);
criterion_main!(benches);
