//! Child process for the crash-recovery harness.
//!
//! `tests/crash_harness.rs` spawns this binary with a deterministic
//! [`CrashPlan`] and expects it to die mid-write (`abort()`, a
//! userspace power cut) at exactly the planned byte/frame. The parent
//! then recovers the directory in-process and checks the recovered
//! state against a fresh replay oracle.
//!
//! ```text
//! crash_child <dir> <seed> <case> <snapshot_every> [<mode> <value>]
//! ```
//!
//! `mode` is one of:
//! - `wal-byte N` — abort once the WAL would grow past absolute byte N
//!   (torn frame on disk);
//! - `frames N` — abort after the Nth frame append + fsync, before the
//!   in-memory apply (the log-but-not-applied window);
//! - `snapshot-byte N` — abort once N bytes of `snapshot.tmp` are
//!   written (partial temp file, no rename);
//! - `serve-drain N` — run a **multi-tenant serve engine** instead
//!   (tenants `t0..t2` from `dynfd_testkit::tenant_traces(seed, 3)`,
//!   each durable under `<dir>/<name>/`), queue every batch with
//!   delivery paused, then shut down and abort after N jobs complete
//!   inside the drain window — the queue-drain kill point. The parent
//!   recovers every tenant directory and compares each against a fresh
//!   replay of its acknowledged prefix.
//! - `evict-drain N` / `evict-persist N` — multi-tenant serve engine
//!   again, but the kill lands inside a **live tenant eviction**: apply
//!   the victim's first N batches (bystanders run their full streams),
//!   quiesce, then `close_tenant` the victim with
//!   [`EvictKillPoint::AfterDrain`] or `AfterPersist` armed — the
//!   abort fires after the victim's FIFO drained (its snapshot never
//!   written) or after its release snapshot synced (the registry
//!   removal never happens). Either way the victim must recover to
//!   exactly its N applied batches and bystander durable state must be
//!   untouched.
//! - `evict-snap N` — like the above, but the kill is a
//!   [`CrashPlan`] `snapshot_kill_at_byte` armed on the victim before
//!   the close: the abort lands N bytes into the *eviction's own*
//!   release snapshot, leaving a torn `snapshot.tmp` behind. The
//!   victim applies half its trace before the close.
//!
//! Without a mode the run completes cleanly (exit 0) — the baseline
//! the harness uses for uninterrupted comparisons. If a plan is given
//! but never fires, the run also completes and exits 0; the parent
//! treats that as "scenario vacuous for this trace" and skips it.

use dynfd_core::DynFdConfig;
use dynfd_persist::{CrashPlan, FdEngine};
use dynfd_serve::{AdmissionPolicy, EvictKillPoint, ServeConfig, ServeEngine};
use dynfd_testkit::{tenant_traces, Trace};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: crash_child <dir> <seed> <case> <snapshot_every> \
         [wal-byte|frames|snapshot-byte|serve-drain|evict-drain|evict-persist|evict-snap N]"
    );
    std::process::exit(2);
}

/// The `serve-drain` mode: queue every tenant's batches with delivery
/// paused, then shut down with the drain-kill budget armed. The abort
/// fires on a worker thread after `kill_after` jobs of the drain window
/// complete; if the budget exceeds the queued work the run completes
/// cleanly (exit 0) and the parent treats the scenario as vacuous.
fn run_serve_drain(dir: &std::path::Path, seed: u64, snapshot_every: usize, kill_after: u64) -> ! {
    let traces = tenant_traces(seed, 3);
    let total: usize = traces.iter().map(|(_, t)| t.to_batches().len()).sum();
    let engine = ServeEngine::new(ServeConfig {
        workers: 2,
        queue_capacity: total.max(1),
        policy: AdmissionPolicy::Block,
        root: Some(dir.to_path_buf()),
        engine: DynFdConfig {
            snapshot_every,
            ..DynFdConfig::default()
        },
        start_paused: true,
        drain_kill_after: Some(kill_after),
        ..ServeConfig::default()
    });
    for (name, trace) in &traces {
        if let Err(e) = engine.open_tenant(name, trace.schema.clone(), &trace.initial_rows) {
            eprintln!("crash_child: open {name}: {e}");
            std::process::exit(1);
        }
    }
    // Round-robin interleave, same order as check_concurrent_serve, so
    // the drain window holds a mixed multi-tenant backlog.
    let mut streams: Vec<(&str, std::vec::IntoIter<dynfd_relation::Batch>)> = traces
        .iter()
        .map(|(name, trace)| (name.as_str(), trace.to_batches().into_iter()))
        .collect();
    let mut request_id = 0u64;
    loop {
        let mut any = false;
        for (name, stream) in &mut streams {
            let Some(batch) = stream.next() else { continue };
            any = true;
            request_id += 1;
            if let Err(e) = engine.submit(name, request_id, batch, |_| {}) {
                eprintln!("crash_child: submit to {name}: {e}");
                std::process::exit(1);
            }
        }
        if !any {
            break;
        }
    }
    // Everything is queued, nothing has run. Shutdown resumes delivery
    // with the kill budget armed: the abort lands mid-drain, between a
    // completed (durable) job and the still-queued remainder.
    let report = engine.shutdown();
    let _ = report;
    std::process::exit(0);
}

/// The eviction kill points: apply a deterministic per-tenant workload
/// (the victim `t0` gets a prefix, bystanders their full streams),
/// quiesce so every applied batch is durable, then close the victim
/// with the planned kill armed. `evict-drain`/`evict-persist` abort at
/// the lifecycle kill points unconditionally; `evict-snap` aborts once
/// the release snapshot grows past `value` bytes (vacuous — clean exit
/// 0 — if it never does).
fn run_evict_crash(
    dir: &std::path::Path,
    seed: u64,
    snapshot_every: usize,
    mode: &str,
    value: u64,
) -> ! {
    let kill_point = match mode {
        "evict-drain" => Some(EvictKillPoint::AfterDrain),
        "evict-persist" => Some(EvictKillPoint::AfterPersist),
        _ => None, // evict-snap: the kill is a CrashPlan on the victim.
    };
    let traces = tenant_traces(seed, 3);
    let engine = ServeEngine::new(ServeConfig {
        workers: 2,
        queue_capacity: 64,
        policy: AdmissionPolicy::Block,
        root: Some(dir.to_path_buf()),
        engine: DynFdConfig {
            snapshot_every,
            ..DynFdConfig::default()
        },
        evict_kill_point: kill_point,
        ..ServeConfig::default()
    });
    for (name, trace) in &traces {
        if let Err(e) = engine.open_tenant(name, trace.schema.clone(), &trace.initial_rows) {
            eprintln!("crash_child: open {name}: {e}");
            std::process::exit(1);
        }
    }
    let victim = traces[0].0.clone();
    let mut request_id = 0u64;
    for (i, (name, trace)) in traces.iter().enumerate() {
        let batches = trace.to_batches();
        let prefix = if i == 0 {
            if kill_point.is_some() {
                (value as usize).min(batches.len())
            } else {
                batches.len() / 2
            }
        } else {
            batches.len()
        };
        for batch in batches.into_iter().take(prefix) {
            request_id += 1;
            if let Err(e) = engine.submit(name, request_id, batch, |_| {}) {
                eprintln!("crash_child: submit to {name}: {e}");
                std::process::exit(1);
            }
        }
    }
    // Every submitted job completes — and is therefore durable — before
    // the close begins, so the parent can assert an exact prefix.
    engine.quiesce();
    if kill_point.is_none() {
        if let Err(e) = engine.arm_crash_plan(
            &victim,
            CrashPlan {
                snapshot_kill_at_byte: Some(value),
                ..CrashPlan::default()
            },
        ) {
            eprintln!("crash_child: arm plan on {victim}: {e}");
            std::process::exit(1);
        }
    }
    // The abort fires inside this call (drain / persist kill points, or
    // mid-release-snapshot for evict-snap). Reaching the other side
    // means the plan was vacuous: the close completed cleanly.
    if let Err(e) = engine.close_tenant(&victim) {
        eprintln!("crash_child: close {victim}: {e}");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 4 && args.len() != 6 {
        usage();
    }
    let dir = PathBuf::from(&args[0]);
    let seed: u64 = args[1].parse().unwrap_or_else(|_| usage());
    let case: u64 = args[2].parse().unwrap_or_else(|_| usage());
    let snapshot_every: usize = args[3].parse().unwrap_or_else(|_| usage());
    let plan = if args.len() == 6 {
        let value: u64 = args[5].parse().unwrap_or_else(|_| usage());
        match args[4].as_str() {
            "serve-drain" => run_serve_drain(&dir, seed, snapshot_every, value),
            mode @ ("evict-drain" | "evict-persist" | "evict-snap") => {
                run_evict_crash(&dir, seed, snapshot_every, mode, value)
            }
            "wal-byte" => CrashPlan {
                wal_kill_at_byte: Some(value),
                ..CrashPlan::default()
            },
            "frames" => CrashPlan {
                kill_after_frames: Some(value),
                ..CrashPlan::default()
            },
            "snapshot-byte" => CrashPlan {
                snapshot_kill_at_byte: Some(value),
                ..CrashPlan::default()
            },
            _ => usage(),
        }
    } else {
        CrashPlan::default()
    };

    let trace = Trace::for_case(seed, case);
    let config = DynFdConfig {
        snapshot_every,
        ..DynFdConfig::default()
    };
    let mut engine = match FdEngine::create(&dir, trace.to_relation(), config) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("crash_child: engine creation failed: {e}");
            std::process::exit(1);
        }
    };
    engine.set_crash_plan(plan);
    for batch in trace.to_batches() {
        // A planned crash aborts inside this call; a real rejection in a
        // generated trace would be a bug worth failing loudly on.
        if let Err(e) = engine.apply_batch(&batch) {
            eprintln!("crash_child: batch rejected: {e}");
            std::process::exit(1);
        }
    }
    // Plan never fired (or no plan): clean completion.
    std::process::exit(0);
}
