//! The durable engine: `DynFd` + WAL + snapshots + crash recovery.
//!
//! [`FdEngine`] wraps an in-memory [`DynFd`] with redo-log durability:
//!
//! 1. **Log before apply.** Each batch is appended to the WAL as a
//!    checksummed frame and `fdatasync`ed *before* [`DynFd::apply_batch`]
//!    mutates anything. A crash at any instant therefore loses at most
//!    work the caller was never told succeeded.
//! 2. **Rewind on rejection.** When `apply_batch` rejects a batch (and
//!    rolls the in-memory state back), the engine durably truncates the
//!    just-written frame out of the WAL — a rolled-back batch must
//!    never reappear after recovery. If the process dies *between* the
//!    log and the rewind, replay re-rejects the batch deterministically
//!    and truncates it then.
//! 3. **Snapshot to bound replay.** Every `snapshot_every` applied
//!    batches (see [`DynFdConfig::snapshot_every`]) the full state is
//!    written atomically and the WAL is emptied.
//! 4. **Recover by replay.** [`FdEngine::recover`] loads the newest
//!    valid snapshot and replays the WAL tail. Torn or corrupt frames
//!    truncate the log at the last valid frame and surface as a typed
//!    [`DynFdError::WalCorrupt`] in the [`RecoveryReport`] — never a
//!    panic. The recovered state is oracle-identical to replaying the
//!    same batch prefix on a fresh engine: relation and covers are
//!    bit-identical, and the §5.2 violation annotations are valid
//!    witnessing pairs (the exact pairs are surrogate accelerators
//!    whose choice depends on the PLI-intersection cache path — see
//!    [`DynFd::logical_divergence`]).

use crate::snapshot::{self, SNAP_TMP};
use crate::wal::{Wal, WAL_FILE};
use dynfd_core::{BatchResult, DynFd, DynFdConfig, DynFdError, DynFdResult};
use dynfd_relation::{Batch, DynamicRelation};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Deterministic crash-injection plan for the child-process harness.
/// All fields are byte/count triggers; when one fires the process
/// `abort()`s with the partial write durably on disk — the closest
/// userspace approximation of a power cut.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrashPlan {
    /// Abort mid-append once the WAL would grow past this absolute byte
    /// offset, leaving a torn frame.
    pub wal_kill_at_byte: Option<u64>,
    /// Abort after this many more frames have been appended and
    /// `fdatasync`ed — the crash lands *between* the durable log write
    /// and the in-memory apply (or the rejection rewind).
    pub kill_after_frames: Option<u64>,
    /// Abort once this many bytes of `snapshot.tmp` have been written,
    /// leaving a partial temp file behind (the rename never happens).
    pub snapshot_kill_at_byte: Option<u64>,
}

/// What [`FdEngine::recover`] found and did.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Sequence number of the snapshot the recovery started from.
    pub snapshot_seq: u64,
    /// WAL frames replayed on top of the snapshot.
    pub replayed_batches: usize,
    /// Frames skipped because their sequence number was at or below the
    /// snapshot's (a crash between snapshot rename and WAL truncation
    /// leaves such frames behind; they are already in the snapshot).
    pub stale_frames: usize,
    /// Corrupt snapshot files that had to be skipped before a valid one
    /// loaded (newest first), with the reason each failed.
    pub snapshots_skipped: Vec<String>,
    /// The [`DynFdError::WalCorrupt`] describing a torn/corrupt WAL
    /// tail that was truncated, if one was found.
    pub corruption: Option<DynFdError>,
    /// A logged batch that replay *rejected* — the crash happened
    /// between the WAL append and the rejection rewind. The frame was
    /// truncated; the error is the deterministic rejection reason.
    pub rejected: Option<(u64, DynFdError)>,
}

/// A [`DynFd`] with durable, crash-recoverable state in a directory.
pub struct FdEngine {
    dir: PathBuf,
    wal: Wal,
    engine: DynFd,
    /// Sequence number of the last successfully applied batch.
    seq: u64,
    batches_since_snapshot: usize,
    crash: CrashPlan,
    /// Stamped into the next successful batch's metrics (then cleared):
    /// frames the preceding recovery replayed.
    pending_replayed: usize,
    /// Highest sequence number ever rewound out of the WAL (rejected
    /// batch or corruption truncation); stamped into every batch's
    /// metrics as a watermark. 0 = never.
    truncated_seq_watermark: u64,
}

fn io_err(e: io::Error) -> DynFdError {
    DynFdError::Io(e.to_string())
}

/// Path of the WAL file inside an engine directory (exposed so tests
/// and the fuzz harness can corrupt it between runs).
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

impl FdEngine {
    /// Creates a fresh durable engine in `dir` (created if missing),
    /// discarding any state a previous engine left there. The initial
    /// state is snapshotted immediately (sequence 0) so recovery always
    /// has a floor to replay from.
    pub fn create(dir: &Path, rel: DynamicRelation, config: DynFdConfig) -> DynFdResult<Self> {
        fs::create_dir_all(dir).map_err(io_err)?;
        // Clear leftovers from any prior engine in this directory.
        for entry in fs::read_dir(dir).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".snap") || name == SNAP_TMP {
                fs::remove_file(entry.path()).map_err(io_err)?;
            }
        }
        let wal = Wal::create(&wal_path(dir)).map_err(io_err)?;
        let engine = DynFd::new(rel, config);
        snapshot::write_snapshot(dir, 0, &engine, None).map_err(io_err)?;
        Ok(FdEngine {
            dir: dir.to_path_buf(),
            wal,
            engine,
            seq: 0,
            batches_since_snapshot: 0,
            crash: CrashPlan::default(),
            pending_replayed: 0,
            truncated_seq_watermark: 0,
        })
    }

    /// Recovers the engine persisted in `dir` with the default
    /// configuration. See [`FdEngine::recover_with_config`].
    pub fn recover(dir: &Path) -> DynFdResult<(Self, RecoveryReport)> {
        Self::recover_with_config(dir, DynFdConfig::default())
    }

    /// Opens a durable engine in `dir`: recovers the existing state when
    /// a WAL is present, creates a fresh engine from `rel` otherwise.
    /// This is the tenant-open path of the multi-tenant serve layer —
    /// re-opening a tenant directory must resume, never start over.
    /// Returns the recovery report when state was recovered (`None` for
    /// a fresh engine).
    pub fn recover_or_create(
        dir: &Path,
        rel: DynamicRelation,
        config: DynFdConfig,
    ) -> DynFdResult<(Self, Option<RecoveryReport>)> {
        if wal_path(dir).exists() {
            let (engine, report) = Self::recover_with_config(dir, config)?;
            Ok((engine, Some(report)))
        } else {
            Ok((Self::create(dir, rel, config)?, None))
        }
    }

    /// Recovers from the newest valid snapshot plus the WAL tail.
    ///
    /// The FD covers are configuration-invariant, but the §5.2
    /// violation *annotations* are not — pass the same configuration
    /// the crashed engine ran with to get a state logically identical
    /// (relation and covers bit-for-bit; annotations valid, see
    /// [`DynFd::logical_divergence`]) to a fresh replay under that
    /// configuration.
    ///
    /// Robustness guarantees:
    /// - a torn or corrupt WAL tail (bad magic, short header, impossible
    ///   length, CRC mismatch, undecodable payload, sequence jump) is
    ///   durably truncated at the last valid frame and reported as
    ///   [`DynFdError::WalCorrupt`] in the [`RecoveryReport`] — the
    ///   recovery itself still succeeds;
    /// - a logged frame whose batch replay *rejects* (crash between log
    ///   and rewind) is truncated the same way and reported in
    ///   [`RecoveryReport::rejected`];
    /// - corrupt snapshot files are skipped in favor of older valid
    ///   ones; a leftover `snapshot.tmp` is removed;
    /// - stale frames at or below the snapshot sequence (crash between
    ///   snapshot rename and WAL truncation) are skipped.
    ///
    /// Fails only when no valid snapshot exists
    /// ([`DynFdError::SnapshotCorrupt`]) or on real I/O errors.
    pub fn recover_with_config(
        dir: &Path,
        config: DynFdConfig,
    ) -> DynFdResult<(Self, RecoveryReport)> {
        let (state, snapshots_skipped) = snapshot::load_latest(dir).map_err(io_err)?;
        let state = state.ok_or_else(|| DynFdError::SnapshotCorrupt {
            detail: if snapshots_skipped.is_empty() {
                format!("no snapshot found in {}", dir.display())
            } else {
                format!(
                    "every snapshot in {} is corrupt: {}",
                    dir.display(),
                    snapshots_skipped.join("; ")
                )
            },
        })?;
        let snapshot_seq = state.seq;
        let mut engine = DynFd::from_saved_state(
            state.rel,
            state.fds,
            state.non_fds,
            &state.annotations,
            config,
        );

        let path = wal_path(dir);
        let scan = if path.exists() {
            Wal::scan(&path).map_err(io_err)?
        } else {
            // No WAL at all (e.g. deleted out from under us): treat as
            // empty — the snapshot alone is the state.
            crate::wal::WalScan {
                frames: Vec::new(),
                valid_end: 0,
                corruption: None,
            }
        };

        let mut replayed = 0usize;
        let mut stale = 0usize;
        let mut rejected: Option<(u64, DynFdError)> = None;
        let mut truncate_to = scan.valid_end;
        for frame in &scan.frames {
            if frame.seq <= snapshot_seq {
                stale += 1;
                continue;
            }
            match engine.apply_batch(&frame.batch) {
                Ok(_) => replayed += 1,
                Err(e) => {
                    // Deterministic re-rejection: the crash interrupted
                    // the rewind. Drop this frame and everything after.
                    rejected = Some((frame.seq, e));
                    truncate_to = frame.start;
                    break;
                }
            }
        }

        let corruption = scan.corruption.map(|c| DynFdError::WalCorrupt {
            seq: c.last_seq.map_or(snapshot_seq + 1, |s| s + 1),
            offset: c.offset,
        });

        // Make the truncation durable and position the WAL for append.
        let wal = if scan.valid_end == 0 && path.exists() {
            // Magic itself was damaged (or the file predates it):
            // nothing in the file is trustworthy; start a fresh log.
            Wal::create(&path).map_err(io_err)?
        } else if path.exists() {
            Wal::open(&path, truncate_to).map_err(io_err)?
        } else {
            Wal::create(&path).map_err(io_err)?
        };

        let seq = snapshot_seq + replayed as u64;
        let mut truncated_watermark = 0u64;
        if let Some(DynFdError::WalCorrupt { seq: s, .. }) = &corruption {
            truncated_watermark = truncated_watermark.max(*s);
        }
        if let Some((s, _)) = &rejected {
            truncated_watermark = truncated_watermark.max(*s);
        }

        let report = RecoveryReport {
            snapshot_seq,
            replayed_batches: replayed,
            stale_frames: stale,
            snapshots_skipped,
            corruption,
            rejected,
        };
        Ok((
            FdEngine {
                dir: dir.to_path_buf(),
                wal,
                engine,
                seq,
                batches_since_snapshot: replayed,
                crash: CrashPlan::default(),
                pending_replayed: replayed,
                truncated_seq_watermark: truncated_watermark,
            },
            report,
        ))
    }

    /// Durably logs and applies one batch.
    ///
    /// The frame is appended and `fdatasync`ed first; only then does the
    /// in-memory engine mutate. On rejection the in-memory state is
    /// rolled back by [`DynFd::apply_batch`] and the frame is durably
    /// rewound out of the WAL, so the failed batch can never replay.
    /// Successful batches trigger a snapshot every
    /// [`DynFdConfig::snapshot_every`] batches.
    ///
    /// The returned metrics carry the durability counters: `wal_bytes`,
    /// `fsyncs`, `snapshot_time`, `recovery_replayed_batches` (first
    /// batch after a recovery only), and `last_truncated_seq`.
    pub fn apply_batch(&mut self, batch: &Batch) -> DynFdResult<BatchResult> {
        let fsyncs_before = self.wal.fsync_count();
        let offset_before = self.wal.end_offset();
        let next_seq = self.seq + 1;
        let frame_len = self
            .wal
            .append(next_seq, batch, self.crash.wal_kill_at_byte)
            .map_err(io_err)?;
        self.note_frame_appended();
        match self.engine.apply_batch(batch) {
            Ok(mut result) => {
                self.seq = next_seq;
                self.batches_since_snapshot += 1;
                result.metrics.wal_bytes = frame_len as usize;
                let cadence = self.engine.config().snapshot_every;
                let mut snapshot_fsyncs = 0;
                if cadence > 0 && self.batches_since_snapshot >= cadence {
                    let start = Instant::now();
                    snapshot_fsyncs = self.snapshot().map_err(io_err)?;
                    result.metrics.snapshot_time = start.elapsed();
                }
                result.metrics.fsyncs =
                    (self.wal.fsync_count() - fsyncs_before + snapshot_fsyncs) as usize;
                result.metrics.recovery_replayed_batches =
                    std::mem::take(&mut self.pending_replayed);
                result.metrics.last_truncated_seq = self.truncated_seq_watermark;
                Ok(result)
            }
            Err(e) => {
                self.wal.rewind_to(offset_before).map_err(io_err)?;
                self.truncated_seq_watermark = self.truncated_seq_watermark.max(next_seq);
                Err(e)
            }
        }
    }

    /// Writes a snapshot of the current state and empties the WAL.
    /// Returns the `fsync` calls the snapshot write issued (the WAL
    /// truncation's sync is counted by the WAL handle itself).
    pub fn snapshot(&mut self) -> io::Result<u64> {
        let kill = self.crash.snapshot_kill_at_byte;
        let fsyncs = snapshot::write_snapshot(&self.dir, self.seq, &self.engine, kill)?;
        self.wal.truncate_all()?;
        self.batches_since_snapshot = 0;
        Ok(fsyncs)
    }

    /// Appends and syncs a frame for `batch` *without* applying it —
    /// the crash-simulation hook for "process died between the WAL
    /// append and the apply/rewind". The next [`FdEngine::recover`]
    /// either replays the batch (it was valid) or re-rejects and
    /// truncates it (it was not); continuing to use *this* instance
    /// after calling this is a logic error.
    pub fn log_without_apply(&mut self, batch: &Batch) -> DynFdResult<u64> {
        self.wal.append(self.seq + 1, batch, None).map_err(io_err)
    }

    /// Installs (or clears) the deterministic crash plan.
    pub fn set_crash_plan(&mut self, plan: CrashPlan) {
        self.crash = plan;
    }

    /// The wrapped in-memory engine (covers, annotations, relation).
    pub fn dynfd(&self) -> &DynFd {
        &self.engine
    }

    /// Mutable access to the wrapped in-memory engine. For harnesses
    /// that arm failpoints ([`DynFd::arm_failpoint`]) on a durable
    /// engine; mutating maintained *state* through this handle without
    /// going through [`FdEngine::apply_batch`] breaks the durability
    /// contract (the WAL would no longer replay to the same state).
    pub fn dynfd_mut(&mut self) -> &mut DynFd {
        &mut self.engine
    }

    /// Flushes and fsyncs the WAL tail (data + metadata). Appends are
    /// already `fdatasync`ed per batch; the clean-shutdown path calls
    /// this once more so file-length metadata after any rewind is
    /// durable too before the process exits.
    pub fn sync_all(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// Sequence number of the last successfully applied batch.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The engine directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current WAL size in bytes (magic + durable frames).
    pub fn wal_end_offset(&self) -> u64 {
        self.wal.end_offset()
    }

    /// Counts a frame against [`CrashPlan::kill_after_frames`], aborting
    /// when the budget reaches zero — after the durable append, before
    /// the apply.
    fn note_frame_appended(&mut self) {
        if let Some(n) = self.crash.kill_after_frames {
            if n <= 1 {
                std::process::abort(); // simulated crash post-fsync
            }
            self.crash.kill_after_frames = Some(n - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfd_common::{RecordId, Schema};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dynfd-engine-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seed_relation() -> DynamicRelation {
        DynamicRelation::from_rows(
            Schema::of("t", &["a", "b", "c"]),
            &[
                vec!["x", "1", "p"],
                vec!["x", "1", "q"],
                vec!["y", "2", "p"],
                vec!["z", "2", "q"],
            ],
        )
        .unwrap()
    }

    fn batches() -> Vec<Batch> {
        let mut b1 = Batch::new();
        b1.insert(vec!["w", "3", "p"]).delete(RecordId(0));
        let mut b2 = Batch::new();
        b2.update(RecordId(2), vec!["y", "2", "q"])
            .insert(vec!["x", "1", "p"]);
        let mut b3 = Batch::new();
        b3.delete(RecordId(1)).insert(vec!["v", "4", "r"]);
        vec![b1, b2, b3]
    }

    /// Fresh in-memory engine with the same batch prefix applied — the
    /// oracle recovery must match bit-for-bit.
    fn oracle(prefix: usize, config: DynFdConfig) -> DynFd {
        let mut engine = DynFd::new(seed_relation(), config);
        for batch in batches().iter().take(prefix) {
            engine.apply_batch(batch).unwrap();
        }
        engine
    }

    #[test]
    fn recover_after_clean_run_is_bit_identical() {
        let dir = tmp_dir("clean");
        let config = DynFdConfig::default();
        let mut engine = FdEngine::create(&dir, seed_relation(), config).unwrap();
        for batch in &batches() {
            engine.apply_batch(batch).unwrap();
        }
        drop(engine);
        let (recovered, report) = FdEngine::recover_with_config(&dir, config).unwrap();
        assert_eq!(report.snapshot_seq, 0);
        assert_eq!(report.replayed_batches, 3);
        assert!(report.corruption.is_none() && report.rejected.is_none());
        assert_eq!(recovered.seq(), 3);
        assert_eq!(
            oracle(3, config).logical_divergence(recovered.dynfd()),
            None,
            "recovered state must equal a fresh replay"
        );
        recovered.dynfd().verify_annotations().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_metrics_are_stamped() {
        let dir = tmp_dir("metrics");
        let mut engine = FdEngine::create(&dir, seed_relation(), DynFdConfig::default()).unwrap();
        let result = engine.apply_batch(&batches()[0]).unwrap();
        assert!(result.metrics.wal_bytes > 16, "frame bytes recorded");
        assert_eq!(result.metrics.fsyncs, 1, "one fdatasync per append");
        assert_eq!(result.metrics.last_truncated_seq, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_cadence_truncates_wal() {
        let dir = tmp_dir("cadence");
        let config = DynFdConfig {
            snapshot_every: 2,
            ..DynFdConfig::default()
        };
        let mut engine = FdEngine::create(&dir, seed_relation(), config).unwrap();
        let all = batches();
        engine.apply_batch(&all[0]).unwrap();
        assert!(engine.wal_end_offset() > 8);
        let result = engine.apply_batch(&all[1]).unwrap();
        assert_eq!(engine.wal_end_offset(), 8, "WAL emptied at snapshot");
        assert!(result.metrics.fsyncs > 1, "snapshot syncs counted");
        assert!(result.metrics.snapshot_time > std::time::Duration::ZERO);
        engine.apply_batch(&all[2]).unwrap();
        drop(engine);
        let (recovered, report) = FdEngine::recover_with_config(&dir, config).unwrap();
        assert_eq!(report.snapshot_seq, 2);
        assert_eq!(report.replayed_batches, 1);
        assert_eq!(
            oracle(3, config).logical_divergence(recovered.dynfd()),
            None
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejected_batch_is_rewound_and_never_replays() {
        let dir = tmp_dir("reject");
        let config = DynFdConfig::default();
        let mut engine = FdEngine::create(&dir, seed_relation(), config).unwrap();
        engine.apply_batch(&batches()[0]).unwrap();
        let wal_after_good = engine.wal_end_offset();
        let mut poison = Batch::new();
        poison.delete(RecordId(999)); // unknown record → rejection
        let err = engine.apply_batch(&poison).unwrap_err();
        assert!(err.is_rejection());
        assert_eq!(
            engine.wal_end_offset(),
            wal_after_good,
            "rejected frame rewound out of the log"
        );
        // The watermark surfaces in the next successful batch.
        let result = engine.apply_batch(&batches()[1]).unwrap();
        assert_eq!(result.metrics.last_truncated_seq, 2);
        drop(engine);
        let (recovered, report) = FdEngine::recover_with_config(&dir, config).unwrap();
        assert_eq!(report.replayed_batches, 2);
        assert!(report.rejected.is_none(), "rewound frame is simply gone");
        assert_eq!(
            oracle(2, config).logical_divergence(recovered.dynfd()),
            None
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_log_and_rewind_truncates_on_recovery() {
        let dir = tmp_dir("log-no-apply");
        let config = DynFdConfig::default();
        let mut engine = FdEngine::create(&dir, seed_relation(), config).unwrap();
        engine.apply_batch(&batches()[0]).unwrap();
        let mut poison = Batch::new();
        poison.delete(RecordId(999));
        engine.log_without_apply(&poison).unwrap();
        drop(engine); // simulated crash before apply/rewind
        let (recovered, report) = FdEngine::recover_with_config(&dir, config).unwrap();
        assert_eq!(report.replayed_batches, 1);
        let (seq, err) = report.rejected.expect("poison frame re-rejected");
        assert_eq!(seq, 2);
        assert!(err.is_rejection());
        assert_eq!(
            oracle(1, config).logical_divergence(recovered.dynfd()),
            None,
            "poison batch left no trace"
        );
        // The frame is durably gone: recovering again is clean.
        drop(recovered);
        let (recovered, report) = FdEngine::recover_with_config(&dir, config).unwrap();
        assert!(report.rejected.is_none());
        assert_eq!(
            oracle(1, config).logical_divergence(recovered.dynfd()),
            None
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_truncates_with_typed_error() {
        let dir = tmp_dir("corrupt-tail");
        let config = DynFdConfig::default();
        let mut engine = FdEngine::create(&dir, seed_relation(), config).unwrap();
        let all = batches();
        engine.apply_batch(&all[0]).unwrap();
        let boundary = engine.wal_end_offset();
        engine.apply_batch(&all[1]).unwrap();
        drop(engine);
        // Flip one byte inside the second frame's payload.
        let path = wal_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let target = boundary as usize + 12;
        bytes[target] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (recovered, report) = FdEngine::recover_with_config(&dir, config).unwrap();
        assert_eq!(report.replayed_batches, 1);
        match report.corruption {
            Some(DynFdError::WalCorrupt { seq, offset }) => {
                assert_eq!(seq, 2);
                assert_eq!(offset, boundary);
            }
            other => panic!("expected WalCorrupt, got {other:?}"),
        }
        assert_eq!(
            oracle(1, config).logical_divergence(recovered.dynfd()),
            None,
            "state equals fresh replay of the surviving prefix"
        );
        assert_eq!(recovered.wal_end_offset(), boundary, "tail truncated");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_metrics_stamp_first_batch() {
        let dir = tmp_dir("recovery-metrics");
        let config = DynFdConfig::default();
        let mut engine = FdEngine::create(&dir, seed_relation(), config).unwrap();
        let all = batches();
        engine.apply_batch(&all[0]).unwrap();
        engine.apply_batch(&all[1]).unwrap();
        drop(engine);
        let (mut recovered, _) = FdEngine::recover_with_config(&dir, config).unwrap();
        let result = recovered.apply_batch(&all[2]).unwrap();
        assert_eq!(result.metrics.recovery_replayed_batches, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_missing_dir_is_a_typed_error() {
        let dir = tmp_dir("missing");
        let err = FdEngine::recover(&dir).err().expect("missing dir fails");
        assert_eq!(err.exit_code(), 3, "missing directory is an I/O error");
        // An existing but empty directory is SnapshotCorrupt instead.
        fs::create_dir_all(&dir).unwrap();
        let err = FdEngine::recover(&dir).err().expect("empty dir fails");
        assert!(matches!(err, DynFdError::SnapshotCorrupt { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }
}
