//! Concurrent multi-tenant trace replay against `dynfd-serve`.
//!
//! The serve layer's headline claim is that concurrency is *invisible*
//! per tenant: an interleaved multi-tenant batch stream pushed through a
//! sharded worker pool leaves every tenant in exactly the state a plain
//! sequential replay of its own batches produces — same relation, same
//! covers, same §5.2 violation annotations, and (durably) the same WAL
//! bytes — at any worker count. [`check_concurrent_serve`] turns that
//! claim into a single checkable property:
//!
//! 1. generate one deterministic [`Trace`] per tenant
//!    (`Trace::for_case(seed, t)`);
//! 2. open every tenant on one [`ServeEngine`] and submit the tenants'
//!    batch streams round-robin interleaved (tenant 0 batch 0, tenant 1
//!    batch 0, …, tenant 0 batch 1, …) under the *blocking* admission
//!    policy, so nothing is shed and the submission order is total;
//! 3. quiesce, then compare each tenant against a fresh sequential
//!    replay with [`DynFd::state_divergence`] (bit-level: relation,
//!    both covers, violation annotations);
//! 4. durable runs additionally shut the engine down (drain + fsync)
//!    and compare each tenant's WAL file **byte for byte** against a
//!    sequential `FdEngine` replay into a scratch directory.
//!
//! Every reply is also accounted: each submitted batch must be answered
//! exactly once and successfully (generated traces never reject).

use crate::trace::Trace;
use dynfd_core::{DynFd, DynFdConfig};
use dynfd_persist::{wal_path, FdEngine};
use dynfd_serve::{AdmissionPolicy, ServeConfig, ServeEngine};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Aggregate counters from one [`check_concurrent_serve`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConcurrentStats {
    /// Tenants replayed.
    pub tenants: usize,
    /// Worker threads the serve engine ran.
    pub workers: usize,
    /// Batches applied across all tenants.
    pub batches: u64,
    /// Tenant states compared against the sequential oracle.
    pub states_compared: usize,
    /// WAL files compared byte-for-byte (durable runs only).
    pub wals_compared: usize,
}

/// The per-tenant traces a run of `(seed, tenants)` replays — exposed so
/// harnesses (e.g. the crash child and its parent) can regenerate the
/// identical workload on both sides of a process boundary.
pub fn tenant_traces(seed: u64, tenants: usize) -> Vec<(String, Trace)> {
    (0..tenants)
        .map(|t| (format!("t{t}"), Trace::for_case(seed, t as u64)))
        .collect()
}

/// Sequentially replays `trace` through a plain in-memory engine — the
/// oracle every served tenant is compared against.
pub fn sequential_oracle(trace: &Trace, config: DynFdConfig) -> Result<DynFd, String> {
    let mut dynfd = DynFd::new(trace.to_relation(), config);
    for (i, batch) in trace.to_batches().iter().enumerate() {
        dynfd
            .apply_batch(batch)
            .map_err(|e| format!("oracle replay rejected batch {i}: {e}"))?;
    }
    Ok(dynfd)
}

/// Replays `tenants` interleaved traces on a `workers`-thread serve
/// engine and verifies every tenant's final state (and, when
/// `durable_root` is given, its WAL bytes) is identical to a sequential
/// per-tenant replay. See the module docs for the exact protocol.
pub fn check_concurrent_serve(
    seed: u64,
    tenants: usize,
    workers: usize,
    durable_root: Option<&Path>,
) -> Result<ConcurrentStats, String> {
    let traces = tenant_traces(seed, tenants);
    let config = DynFdConfig::default();
    let total_batches: usize = traces.iter().map(|(_, t)| t.to_batches().len()).sum();

    let engine = Arc::new(ServeEngine::new(ServeConfig {
        workers,
        // The blocking policy makes the run lossless; a capacity well
        // above any single tenant's stream keeps submission non-blocking
        // in practice without changing the semantics.
        queue_capacity: 1024,
        policy: AdmissionPolicy::Block,
        root: durable_root.map(Path::to_path_buf),
        engine: config,
        ..ServeConfig::default()
    }));

    for (name, trace) in &traces {
        engine
            .open_tenant(name, trace.schema.clone(), &trace.initial_rows)
            .map_err(|e| format!("open {name}: {e}"))?;
    }

    // Round-robin interleave: per-tenant order is each tenant's batch
    // order, while the global stream maximally mixes tenants.
    let ok_replies = Arc::new(AtomicU64::new(0));
    let failed_replies = Arc::new(AtomicU64::new(0));
    let mut streams: Vec<(&str, std::vec::IntoIter<dynfd_relation::Batch>)> = traces
        .iter()
        .map(|(name, trace)| (name.as_str(), trace.to_batches().into_iter()))
        .collect();
    let mut request_id = 0u64;
    loop {
        let mut any = false;
        for (name, stream) in &mut streams {
            let Some(batch) = stream.next() else { continue };
            any = true;
            request_id += 1;
            let ok = Arc::clone(&ok_replies);
            let failed = Arc::clone(&failed_replies);
            engine
                .submit(name, request_id, batch, move |reply| {
                    match reply.outcome {
                        Ok(_) => ok.fetch_add(1, Ordering::SeqCst),
                        Err(_) => failed.fetch_add(1, Ordering::SeqCst),
                    };
                })
                .map_err(|e| format!("submit to {name}: {e}"))?;
        }
        if !any {
            break;
        }
    }

    engine.quiesce();
    if failed_replies.load(Ordering::SeqCst) != 0 {
        return Err(format!(
            "{} batches failed — generated traces must replay cleanly",
            failed_replies.load(Ordering::SeqCst)
        ));
    }
    if ok_replies.load(Ordering::SeqCst) != total_batches as u64 {
        return Err(format!(
            "reply accounting broken: {} submitted, {} acknowledged",
            total_batches,
            ok_replies.load(Ordering::SeqCst)
        ));
    }

    // Per-tenant bit-identity against the sequential oracle.
    let mut stats = ConcurrentStats {
        tenants,
        workers: engine.worker_count(),
        batches: total_batches as u64,
        ..ConcurrentStats::default()
    };
    for (name, trace) in &traces {
        let oracle = sequential_oracle(trace, config)?;
        let expected_seq = trace.to_batches().len() as u64;
        let seq = engine
            .tenant_seq(name)
            .map_err(|e| format!("seq of {name}: {e}"))?;
        if seq != expected_seq {
            return Err(format!(
                "tenant {name}: served seq {seq}, sequential replay applied {expected_seq}"
            ));
        }
        let divergence = engine
            .with_tenant(name, |served| oracle.state_divergence(served))
            .map_err(|e| format!("inspect {name}: {e}"))?;
        if let Some(divergence) = divergence {
            return Err(format!(
                "tenant {name} diverged from sequential replay at {workers} workers: {divergence}"
            ));
        }
        stats.states_compared += 1;
    }

    // Durable runs: drain + sync, then compare WAL bytes against a
    // sequential durable replay with the identical configuration.
    if let Some(root) = durable_root {
        let engine =
            Arc::try_unwrap(engine).map_err(|_| "engine still shared after quiesce".to_string())?;
        let report = engine.shutdown();
        if report.synced != report.tenants || !report.sync_errors.is_empty() {
            return Err(format!(
                "shutdown synced {} of {} tenants (errors: {:?})",
                report.synced, report.tenants, report.sync_errors
            ));
        }
        for (name, trace) in &traces {
            let scratch = root.join(format!("{name}.oracle"));
            let mut oracle_engine = FdEngine::create(&scratch, trace.to_relation(), config)
                .map_err(|e| format!("oracle engine for {name}: {e}"))?;
            for (i, batch) in trace.to_batches().iter().enumerate() {
                oracle_engine
                    .apply_batch(batch)
                    .map_err(|e| format!("oracle durable replay {name} batch {i}: {e}"))?;
            }
            drop(oracle_engine);
            let served_wal = std::fs::read(wal_path(&root.join(name)))
                .map_err(|e| format!("read served WAL of {name}: {e}"))?;
            let oracle_wal = std::fs::read(wal_path(&scratch))
                .map_err(|e| format!("read oracle WAL of {name}: {e}"))?;
            if served_wal != oracle_wal {
                let first_diff = served_wal
                    .iter()
                    .zip(&oracle_wal)
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| served_wal.len().min(oracle_wal.len()));
                return Err(format!(
                    "tenant {name}: WAL bytes diverge from sequential replay \
                     (served {} bytes, oracle {} bytes, first difference at byte {first_diff})",
                    served_wal.len(),
                    oracle_wal.len()
                ));
            }
            stats.wals_compared += 1;
        }
    }
    Ok(stats)
}
