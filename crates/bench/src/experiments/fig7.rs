//! Figure 7 — speedup of DynFD over repeated executions of HyFD.
//!
//! Batch sizes are *relative* to the initial dataset size: 1 % → 1000 %
//! of #Rows. For each dataset and ratio both systems process the same
//! batches (up to the paper's 10,000-change cap); speedup is the ratio
//! of total HyFD profiling time to total DynFD maintenance time.
//!
//! Expected shape vs. the paper: >10× speedups at small ratios,
//! crossover (speedup ≈ 1) around 100 % — where a batch rewrites the
//! whole dataset — `cpu` never ahead (62 rows: re-profiling is trivial),
//! and `artist` degenerate beyond 10 % (its ratios cover the entire
//! change history).

use crate::experiments::{Ctx, CHANGE_CAP};
use crate::report::{ratio, Table};
use crate::runner::{run_dynfd, run_hyfd_repeated};
use dynfd_core::DynFdConfig;

/// Relative batch sizes in percent of the initial row count.
pub const RATIOS: &[f64] = &[1.0, 5.0, 10.0, 50.0, 100.0, 1000.0];

/// At most this many batches are timed per (dataset, ratio). The
/// speedup is a per-batch ratio, so a 15-batch sample estimates it
/// faithfully while keeping the repeated-HyFD side (which re-profiles
/// the full relation every batch — tens of seconds each on `actor` and
/// `artist`) within a practical budget. Documented in EXPERIMENTS.md.
pub const MAX_BATCHES: usize = 15;

/// Runs the experiment and returns the rendered table
/// (rows = datasets, columns = ratios, cells = speedup).
pub fn run(ctx: &Ctx) -> Table {
    let mut header: Vec<String> = vec!["Dataset".into()];
    header.extend(RATIOS.iter().map(|r| format!("speedup@{r}%")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for name in ctx.names() {
        let data = ctx.dataset(name);
        let rows = data.initial_rows.len();
        let mut cells = vec![name.to_string()];
        for &pct in RATIOS {
            let batch_size = ((rows as f64 * pct / 100.0) as usize).max(1);
            let limit = CHANGE_CAP.min(batch_size.saturating_mul(MAX_BATCHES));
            let dynfd = run_dynfd(&data, batch_size, Some(limit), DynFdConfig::default());
            let hyfd = run_hyfd_repeated(&data, batch_size, Some(limit));
            let speedup = hyfd.total.as_secs_f64() / dynfd.total.as_secs_f64().max(1e-9);
            cells.push(ratio(speedup));
        }
        table.row(cells);
    }
    table
}
