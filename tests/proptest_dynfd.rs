//! The headline property: DynFD's maintained covers equal static
//! rediscovery on the materialized relation after *any* sequence of
//! batches, for randomly drawn pruning configurations — plus internal
//! invariants (antichains, cover inversion equivalence, annotation
//! validity) via `verify_consistency`.

use dynfd::common::{RecordId, Schema};
use dynfd::core::{DynFd, DynFdConfig, SearchMode};
use dynfd::relation::DynamicRelation;
use dynfd::relation::{Batch, ChangeOp};
use proptest::prelude::*;

const COLS: usize = 4;
const DOMAIN: u8 = 3;

fn arb_row() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec((0..DOMAIN).prop_map(|v| format!("v{v}")), COLS)
}

#[derive(Clone, Debug)]
enum ScriptOp {
    Insert(Vec<String>),
    DeleteNth(usize),
    UpdateNth(usize, Vec<String>),
}

fn arb_script() -> impl Strategy<Value = Vec<ScriptOp>> {
    proptest::collection::vec(
        prop_oneof![
            2 => arb_row().prop_map(ScriptOp::Insert),
            1 => (0usize..32).prop_map(ScriptOp::DeleteNth),
            1 => ((0usize..32), arb_row()).prop_map(|(i, r)| ScriptOp::UpdateNth(i, r)),
        ],
        1..30,
    )
}

fn arb_config() -> impl Strategy<Value = DynFdConfig> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(cluster, progressive, validation, dfs)| DynFdConfig {
            cluster_pruning: cluster,
            violation_search: if progressive {
                SearchMode::Progressive
            } else {
                SearchMode::Naive
            },
            validation_pruning: validation,
            depth_first_search: dfs,
            ..DynFdConfig::default()
        },
    )
}

fn to_batches(script: &[ScriptOp], initial: usize, batch_size: usize) -> Vec<Batch> {
    let mut live: Vec<RecordId> = (0..initial as u64).map(RecordId).collect();
    let mut next_id = initial as u64;
    let mut ops = Vec::new();
    for op in script {
        match op {
            ScriptOp::Insert(row) => {
                ops.push(ChangeOp::Insert(row.clone()));
                live.push(RecordId(next_id));
                next_id += 1;
            }
            ScriptOp::DeleteNth(i) => {
                if live.is_empty() {
                    continue;
                }
                let rid = live.remove(i % live.len());
                ops.push(ChangeOp::Delete(rid));
            }
            ScriptOp::UpdateNth(i, row) => {
                if live.is_empty() {
                    continue;
                }
                let rid = live.remove(i % live.len());
                ops.push(ChangeOp::Update(rid, row.clone()));
                live.push(RecordId(next_id));
                next_id += 1;
            }
        }
    }
    Batch::chunk(ops, batch_size)
}

proptest! {
    // Each case bootstraps + maintains + statically rediscovers; keep
    // the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dynfd_tracks_static_discovery(
        initial in proptest::collection::vec(arb_row(), 0..10),
        script in arb_script(),
        batch_size in 1usize..7,
        config in arb_config(),
    ) {
        let schema = Schema::anonymous("p", COLS);
        let rel = DynamicRelation::from_rows(schema, &initial).unwrap();
        let mut dynfd = DynFd::new(rel, config);
        for batch in to_batches(&script, initial.len(), batch_size) {
            dynfd.apply_batch(&batch).unwrap();
            let oracle = dynfd::staticfd::fdep::discover(dynfd.relation());
            prop_assert_eq!(
                dynfd.positive_cover(),
                &oracle,
                "config {} diverged from FDEP",
                config.strategy_label()
            );
        }
        if let Err(e) = dynfd.verify_consistency() {
            return Err(TestCaseError::fail(format!(
                "consistency ({}): {e}",
                config.strategy_label()
            )));
        }
    }

    #[test]
    fn batch_result_diff_is_exact(
        initial in proptest::collection::vec(arb_row(), 0..10),
        script in arb_script(),
        batch_size in 1usize..7,
    ) {
        let schema = Schema::anonymous("p", COLS);
        let rel = DynamicRelation::from_rows(schema, &initial).unwrap();
        let mut dynfd = DynFd::new(rel, DynFdConfig::default());
        let mut tracked: std::collections::BTreeSet<dynfd::common::Fd> =
            dynfd.minimal_fds().into_iter().collect();
        for batch in to_batches(&script, initial.len(), batch_size) {
            let result = dynfd.apply_batch(&batch).unwrap();
            // Replaying the reported delta over the previous snapshot
            // must yield the new snapshot.
            for fd in &result.removed {
                prop_assert!(tracked.remove(fd), "removed FD {:?} was not tracked", fd);
            }
            for fd in &result.added {
                prop_assert!(tracked.insert(*fd), "added FD {:?} already tracked", fd);
            }
            let now: std::collections::BTreeSet<dynfd::common::Fd> =
                dynfd.minimal_fds().into_iter().collect();
            prop_assert_eq!(&tracked, &now, "delta did not reconstruct the cover");
            prop_assert_eq!(result.metrics.added_fds, result.added.len());
            prop_assert_eq!(result.metrics.removed_fds, result.removed.len());
        }
    }

    #[test]
    fn configs_agree_with_each_other(
        initial in proptest::collection::vec(arb_row(), 2..10),
        script in arb_script(),
    ) {
        // All-pruning and no-pruning runs must produce identical covers
        // after every batch (determinism of the *result*, not the work).
        let schema = Schema::anonymous("p", COLS);
        let rel = DynamicRelation::from_rows(schema, &initial).unwrap();
        let mut a = DynFd::new(rel.clone(), DynFdConfig::default());
        let mut b = DynFd::new(rel, DynFdConfig::baseline());
        for batch in to_batches(&script, initial.len(), 5) {
            a.apply_batch(&batch).unwrap();
            b.apply_batch(&batch).unwrap();
            prop_assert_eq!(a.positive_cover(), b.positive_cover());
            prop_assert_eq!(a.negative_cover(), b.negative_cover());
        }
    }
}
