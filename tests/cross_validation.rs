//! The strongest end-to-end correctness check available without the
//! original authors' code: after every batch, DynFD's maintained
//! positive cover must be identical to what each of the three static
//! algorithms discovers from scratch on the materialized relation —
//! under every pruning configuration.

use dynfd::common::{RecordId, Schema};
use dynfd::core::{DynFd, DynFdConfig, SearchMode};
use dynfd::relation::{Batch, DynamicRelation};

/// Deterministic LCG stream.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

fn random_row(rng: &mut Lcg, cols: usize) -> Vec<String> {
    (0..cols)
        .map(|c| format!("v{}", rng.next() % (2 + 2 * c as u64)))
        .collect()
}

fn all_configs() -> Vec<DynFdConfig> {
    let mut configs = Vec::new();
    for cluster in [false, true] {
        for search in [SearchMode::Naive, SearchMode::Progressive] {
            for validation in [false, true] {
                for dfs in [false, true] {
                    configs.push(DynFdConfig {
                        cluster_pruning: cluster,
                        violation_search: search,
                        validation_pruning: validation,
                        depth_first_search: dfs,
                        ..DynFdConfig::default()
                    });
                }
            }
        }
    }
    configs
}

fn drive(
    seed: u64,
    cols: usize,
    initial: usize,
    batches: usize,
    ops_per_batch: usize,
    config: DynFdConfig,
) {
    let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
    let rows: Vec<Vec<String>> = (0..initial).map(|_| random_row(&mut rng, cols)).collect();
    let rel = DynamicRelation::from_rows(Schema::anonymous("x", cols), &rows).unwrap();
    let mut dynfd = DynFd::new(rel, config);
    let mut live: Vec<RecordId> = (0..initial as u64).map(RecordId).collect();
    let mut next_id = initial as u64;

    for batch_no in 0..batches {
        let mut batch = Batch::new();
        for _ in 0..ops_per_batch {
            match rng.next() % 3 {
                0 => {
                    batch.insert(random_row(&mut rng, cols));
                    live.push(RecordId(next_id));
                    next_id += 1;
                }
                1 if live.len() > 2 => {
                    let idx = (rng.next() as usize) % live.len();
                    batch.delete(live.swap_remove(idx));
                }
                _ if !live.is_empty() => {
                    let idx = (rng.next() as usize) % live.len();
                    batch.update(live.swap_remove(idx), random_row(&mut rng, cols));
                    live.push(RecordId(next_id));
                    next_id += 1;
                }
                _ => {
                    batch.insert(random_row(&mut rng, cols));
                    live.push(RecordId(next_id));
                    next_id += 1;
                }
            }
        }
        dynfd.apply_batch(&batch).expect("well-formed batch");

        let tane = dynfd::staticfd::tane::discover(dynfd.relation());
        assert_eq!(
            dynfd.positive_cover(),
            &tane,
            "seed {seed} batch {batch_no} config {}: DynFD vs TANE",
            config.strategy_label()
        );
    }
    // Final deep check including the negative cover and annotations.
    dynfd
        .verify_consistency()
        .unwrap_or_else(|e| panic!("seed {seed} config {}: {e}", config.strategy_label()));
    let fdep = dynfd::staticfd::fdep::discover(dynfd.relation());
    let hyfd = dynfd::staticfd::hyfd::discover(dynfd.relation());
    assert_eq!(dynfd.positive_cover(), &fdep, "DynFD vs FDEP");
    assert_eq!(dynfd.positive_cover(), &hyfd, "DynFD vs HyFD");
}

#[test]
fn every_config_tracks_static_discovery_small() {
    for config in all_configs() {
        drive(1, 4, 15, 4, 4, config);
    }
}

#[test]
fn default_config_many_seeds() {
    for seed in 0..12 {
        drive(seed, 5, 25, 5, 6, DynFdConfig::default());
    }
}

#[test]
fn baseline_config_many_seeds() {
    for seed in 0..8 {
        drive(seed + 100, 5, 25, 5, 6, DynFdConfig::baseline());
    }
}

#[test]
fn wider_relation_fewer_seeds() {
    for seed in 0..3 {
        drive(seed + 200, 7, 30, 4, 8, DynFdConfig::default());
    }
}

#[test]
fn large_batches_rewrite_most_of_the_relation() {
    // Batches bigger than the relation stress the churn paths.
    for seed in 0..4 {
        drive(seed + 300, 4, 8, 3, 20, DynFdConfig::default());
    }
}

#[test]
fn delete_heavy_streams() {
    // Skew the op mix towards deletes by seeding a large relation and
    // draining it.
    let cols = 5;
    let mut rng = Lcg(777);
    let rows: Vec<Vec<String>> = (0..40).map(|_| random_row(&mut rng, cols)).collect();
    let rel = DynamicRelation::from_rows(Schema::anonymous("x", cols), &rows).unwrap();
    for config in [DynFdConfig::default(), DynFdConfig::baseline()] {
        let mut dynfd = DynFd::new(rel.clone(), config);
        let mut live: Vec<RecordId> = (0..40).map(RecordId).collect();
        let mut lcg = Lcg(778);
        while live.len() > 4 {
            let mut batch = Batch::new();
            for _ in 0..6 {
                if live.len() <= 4 {
                    break;
                }
                let idx = (lcg.next() as usize) % live.len();
                batch.delete(live.swap_remove(idx));
            }
            dynfd.apply_batch(&batch).unwrap();
            let oracle = dynfd::staticfd::tane::discover(dynfd.relation());
            assert_eq!(
                dynfd.positive_cover(),
                &oracle,
                "config {}",
                config.strategy_label()
            );
        }
        dynfd.verify_consistency().unwrap();
    }
}
