//! Atomic full-state snapshots.
//!
//! A snapshot is the complete durable image of one engine at one batch
//! sequence number: schema, null policy, dictionaries (including dead
//! codes — restoration must be *bit-identical*, and value codes are
//! assigned by insertion order), the columnar record arena in physical
//! slot order together with its free-list (stack order preserved) and
//! generation map, both covers (in the human-readable `lattice::io`
//! text format), and the §5.2 violation annotations. Serializing the
//! *layout* rather than just the logical records matters: a restored
//! engine re-occupies exactly the slots the saved one held, so WAL
//! replay after restore makes the same free-list pops and arena growth
//! decisions as the uninterrupted run — the recovered arena is
//! bit-identical, not merely logically equal. PLIs are deliberately
//! absent: they are derived data, rebuilt deterministically from the
//! arena by [`DynamicRelation::from_arena_parts`].
//!
//! File layout: `magic "DYNFDSN2" | payload_len:u64 LE | crc:u32 LE |
//! payload`. Written to `snapshot.tmp`, fsynced, then atomically
//! renamed to `snapshot-{seq:016x}.snap` and the directory fsynced — a
//! crash leaves either the old snapshot set or the new one, never a
//! half-visible file (a stale `snapshot.tmp` is possible and harmless;
//! recovery ignores and removes it).

use crate::codec::{self, Reader};
use crate::crc::crc32;
use dynfd_common::{AttrSet, Fd, RecordId, Schema, MAX_ATTRS};
use dynfd_core::DynFd;
use dynfd_lattice::{io as cover_io, FdTree};
use dynfd_relation::{DynamicRelation, NullPolicy, ValueId, DEAD_RID};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::process::abort;

/// File magic, first 8 bytes of every snapshot.
pub const SNAP_MAGIC: [u8; 8] = *b"DYNFDSN2";

/// Name of the in-progress snapshot file (atomically renamed when
/// complete; a leftover one marks a crash mid-snapshot).
pub const SNAP_TMP: &str = "snapshot.tmp";

/// Everything a snapshot restores, decoded and validated.
pub struct SnapshotState {
    /// Batch sequence number the snapshot captures (0 = initial state).
    pub seq: u64,
    /// The relation, bit-identical to the instance that was saved.
    pub rel: DynamicRelation,
    /// Positive cover (minimal FDs).
    pub fds: FdTree,
    /// Negative cover (maximal non-FDs).
    pub non_fds: FdTree,
    /// §5.2 violation annotations.
    pub annotations: Vec<(Fd, (RecordId, RecordId))>,
}

/// File name of the snapshot at `seq`. Zero-padded hex so
/// lexicographic directory order equals sequence order.
pub fn snapshot_file_name(seq: u64) -> String {
    format!("snapshot-{seq:016x}.snap")
}

fn parse_snapshot_seq(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snapshot-")?.strip_suffix(".snap")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Serializes the full engine state at `seq` into a snapshot payload.
pub fn encode_snapshot(seq: u64, engine: &DynFd) -> Vec<u8> {
    let rel = engine.relation();
    let schema = rel.schema();
    let mut out = Vec::new();
    codec::put_u64(&mut out, seq);
    // Schema.
    codec::put_str(&mut out, schema.name());
    codec::put_u32(&mut out, schema.arity() as u32);
    for column in schema.columns() {
        codec::put_str(&mut out, column);
    }
    // Null policy.
    out.push(match rel.null_policy() {
        NullPolicy::AllowAll => 0,
        NullPolicy::RejectNulls => 1,
    });
    // Surrogate-id counter.
    codec::put_u64(&mut out, rel.next_id().0);
    // Dictionaries, dead codes included: codes are positional.
    for attr in 0..schema.arity() {
        let dict = rel.dictionary(attr);
        codec::put_u64(&mut out, dict.capacity() as u64);
        codec::put_u32(&mut out, dict.len() as u32);
        for value in dict.values() {
            codec::put_str(&mut out, value);
        }
    }
    // The record arena in physical slot order: tag 0 = dead slot (its
    // codes are canonically zero and not serialized), tag 1 = live slot
    // followed by rid and one code per column. Then the free-list in
    // stack order (LIFO position is meaningful) and the generation map.
    let slot_rids = rel.slot_rids();
    codec::put_u32(&mut out, slot_rids.len() as u32);
    for (slot, &rid) in slot_rids.iter().enumerate() {
        if rid == DEAD_RID {
            out.push(0);
        } else {
            out.push(1);
            codec::put_u64(&mut out, rid.0);
            for code in rel.row_at_slot(slot as u32).iter() {
                codec::put_u32(&mut out, code);
            }
        }
    }
    codec::put_u32(&mut out, rel.free_slots().len() as u32);
    for &slot in rel.free_slots() {
        codec::put_u32(&mut out, slot);
    }
    for &generation in rel.generations() {
        codec::put_u32(&mut out, generation);
    }
    // Both covers, reusing the established text format.
    codec::put_str(
        &mut out,
        &cover_io::write_cover(engine.positive_cover(), schema),
    );
    codec::put_str(
        &mut out,
        &cover_io::write_cover(engine.negative_cover(), schema),
    );
    // Violation annotations.
    let annotations = engine.violation_annotations();
    codec::put_u32(&mut out, annotations.len() as u32);
    for (fd, (a, b)) in annotations {
        let lhs: Vec<usize> = fd.lhs.iter().collect();
        codec::put_u32(&mut out, lhs.len() as u32);
        for attr in lhs {
            codec::put_u32(&mut out, attr as u32);
        }
        codec::put_u32(&mut out, fd.rhs as u32);
        codec::put_u64(&mut out, a.0);
        codec::put_u64(&mut out, b.0);
    }
    out
}

/// Parses and validates a snapshot payload. Every structural invariant
/// is checked *before* constructors that would panic on bad input
/// (`Schema::new`, `Fd::new`) are called — corrupt bytes must come back
/// as `Err`, never as a panic.
pub fn decode_snapshot(payload: &[u8]) -> Result<SnapshotState, String> {
    let mut r = Reader::new(payload);
    let seq = r.u64()?;
    // Schema, pre-validated (Schema::new panics on bad input).
    let name = r.str()?;
    let arity = r.u32()? as usize;
    if arity == 0 || arity > MAX_ATTRS {
        return Err(format!("schema arity {arity} out of range 1..={MAX_ATTRS}"));
    }
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        columns.push(r.str()?);
    }
    {
        let mut sorted = columns.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != columns.len() {
            return Err("duplicate column names in schema".into());
        }
    }
    let schema = Schema::new(name, columns);
    let null_policy = match r.u8()? {
        0 => NullPolicy::AllowAll,
        1 => NullPolicy::RejectNulls,
        other => return Err(format!("unknown null-policy tag {other}")),
    };
    let next_id = RecordId(r.u64()?);
    let mut dictionaries = Vec::with_capacity(arity);
    for attr in 0..arity {
        let capacity = r.u64()? as usize;
        let len = r.count(4)?;
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(r.str()?);
        }
        {
            let mut sorted = values.clone();
            sorted.sort();
            sorted.dedup();
            if sorted.len() != values.len() {
                return Err(format!("column {attr}: duplicate dictionary values"));
            }
        }
        dictionaries.push(dynfd_relation::Dictionary::from_parts(values, capacity));
    }
    // Arena slot table: 1 byte tag minimum per slot.
    let slots = r.count(1)?;
    let mut slot_table: Vec<(Option<RecordId>, Box<[ValueId]>)> = Vec::with_capacity(slots);
    for slot in 0..slots {
        match r.u8()? {
            0 => slot_table.push((None, Vec::new().into_boxed_slice())),
            1 => {
                let rid = RecordId(r.u64()?);
                let mut codes = Vec::with_capacity(arity);
                for _ in 0..arity {
                    codes.push(r.u32()?);
                }
                slot_table.push((Some(rid), codes.into_boxed_slice()));
            }
            other => return Err(format!("slot {slot}: unknown occupancy tag {other}")),
        }
    }
    let free_len = r.count(4)?;
    let mut free = Vec::with_capacity(free_len);
    for _ in 0..free_len {
        free.push(r.u32()?);
    }
    let mut generations = Vec::with_capacity(slots);
    for _ in 0..slots {
        generations.push(r.u32()?);
    }
    // from_arena_parts revalidates codes, rids, the id counter, and
    // that the free-list covers the dead slots exactly once.
    let rel = DynamicRelation::from_arena_parts(
        schema,
        null_policy,
        next_id,
        dictionaries,
        slot_table,
        free,
        generations,
    )
    .map_err(|e| format!("relation: {e}"))?;
    let fds = cover_io::read_cover(&r.str()?, rel.schema())
        .map_err(|e| format!("positive cover: {e}"))?;
    let non_fds = cover_io::read_cover(&r.str()?, rel.schema())
        .map_err(|e| format!("negative cover: {e}"))?;
    let annotation_count = r.count(16)?;
    let mut annotations = Vec::with_capacity(annotation_count);
    for i in 0..annotation_count {
        let lhs_len = r.count(4)?;
        let mut lhs = AttrSet::empty();
        for _ in 0..lhs_len {
            let attr = r.u32()? as usize;
            if attr >= rel.arity() {
                return Err(format!("annotation {i}: lhs attribute {attr} out of range"));
            }
            lhs.insert(attr);
        }
        let rhs = r.u32()? as usize;
        if rhs >= rel.arity() || lhs.contains(rhs) {
            return Err(format!("annotation {i}: invalid rhs {rhs}"));
        }
        let a = RecordId(r.u64()?);
        let b = RecordId(r.u64()?);
        annotations.push((Fd::new(lhs, rhs), (a, b)));
    }
    if !r.is_exhausted() {
        return Err(format!("{} undecoded trailing bytes", r.remaining()));
    }
    Ok(SnapshotState {
        seq,
        rel,
        fds,
        non_fds,
        annotations,
    })
}

/// Durably writes the snapshot for `seq` into `dir` and retires older
/// snapshot files. Returns the number of `fsync` calls issued.
///
/// `kill_at_byte` is the deterministic crash hook: when set, only that
/// many bytes of `snapshot.tmp` are written (durably) and the process
/// aborts — simulating a power cut mid-snapshot, before the rename.
pub fn write_snapshot(
    dir: &Path,
    seq: u64,
    engine: &DynFd,
    kill_at_byte: Option<u64>,
) -> io::Result<u64> {
    let payload = encode_snapshot(seq, engine);
    let mut bytes = Vec::with_capacity(SNAP_MAGIC.len() + 12 + payload.len());
    bytes.extend_from_slice(&SNAP_MAGIC);
    codec::put_u64(&mut bytes, payload.len() as u64);
    codec::put_u32(&mut bytes, crc32(&payload));
    bytes.extend_from_slice(&payload);

    let tmp = dir.join(SNAP_TMP);
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    if let Some(kill) = kill_at_byte {
        if (kill as usize) < bytes.len() {
            file.write_all(&bytes[..kill as usize])?;
            file.sync_all()?;
            abort(); // simulated power cut: torn snapshot.tmp on disk
        }
    }
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    let final_path = dir.join(snapshot_file_name(seq));
    fs::rename(&tmp, &final_path)?;
    let mut fsyncs = 1 + sync_dir(dir)?;
    // Older snapshots are now redundant; best-effort removal.
    for (old_seq, path) in list_snapshots(dir)? {
        if old_seq < seq {
            let _ = fs::remove_file(path);
        }
    }
    fsyncs += sync_dir(dir)?;
    Ok(fsyncs)
}

/// `fsync` on the directory itself, making renames/unlinks durable.
/// Returns 1 (the fsync count) — directories support `sync_all` on the
/// platforms this crate targets.
fn sync_dir(dir: &Path) -> io::Result<u64> {
    File::open(dir)?.sync_all()?;
    Ok(1)
}

/// All `snapshot-*.snap` files in `dir`, sorted ascending by sequence.
fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut snaps = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_snapshot_seq) {
            snaps.push((seq, entry.path()));
        }
    }
    snaps.sort_by_key(|&(seq, _)| seq);
    Ok(snaps)
}

/// Loads the newest snapshot in `dir` that validates, skipping (and
/// reporting) corrupt ones, and removes a leftover `snapshot.tmp` from
/// a crash mid-snapshot. Returns the state plus the number of corrupt
/// snapshot files that had to be skipped; `Err(None)` in the inner
/// result means the directory holds no snapshot at all.
pub fn load_latest(dir: &Path) -> io::Result<(Option<SnapshotState>, Vec<String>)> {
    let tmp = dir.join(SNAP_TMP);
    if tmp.exists() {
        // A crash mid-snapshot left the partial file; the rename never
        // happened, so it holds nothing the snapshot set does not.
        let _ = fs::remove_file(&tmp);
    }
    let mut skipped = Vec::new();
    for (seq, path) in list_snapshots(dir)?.into_iter().rev() {
        match read_snapshot_file(&path) {
            Ok(state) => {
                if state.seq != seq {
                    skipped.push(format!(
                        "{}: payload seq {} does not match file name",
                        path.display(),
                        state.seq
                    ));
                    continue;
                }
                return Ok((Some(state), skipped));
            }
            Err(detail) => skipped.push(format!("{}: {detail}", path.display())),
        }
    }
    Ok((None, skipped))
}

/// Reads and fully validates one snapshot file.
pub fn read_snapshot_file(path: &Path) -> Result<SnapshotState, String> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("read failed: {e}"))?;
    if bytes.len() < SNAP_MAGIC.len() + 12 {
        return Err("file shorter than header".into());
    }
    if bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err("bad file magic".into());
    }
    let mut r = Reader::new(&bytes[SNAP_MAGIC.len()..]);
    let payload_len = r.u64()? as usize;
    let crc = r.u32()?;
    let present = r.remaining();
    let payload = r.bytes(payload_len).map_err(|_| {
        format!("torn snapshot: header claims {payload_len} payload bytes, {present} present")
    })?;
    if !r.is_exhausted() {
        return Err(format!("{} trailing bytes after payload", r.remaining()));
    }
    let actual = crc32(payload);
    if actual != crc {
        return Err(format!(
            "CRC mismatch: stored {crc:#010x}, computed {actual:#010x}"
        ));
    }
    decode_snapshot(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfd_core::DynFdConfig;
    use dynfd_relation::Batch;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dynfd-snap-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn churned_engine() -> DynFd {
        let rel = DynamicRelation::from_rows(
            Schema::of("t", &["a", "b", "c"]),
            &[
                vec!["x", "1", "p"],
                vec!["x", "1", "q"],
                vec!["y", "2", "p"],
            ],
        )
        .unwrap();
        let mut engine = DynFd::new(rel, DynFdConfig::default());
        let mut batch = Batch::new();
        batch
            .insert(vec!["z", "3", "q"])
            .delete(RecordId(1))
            .update(RecordId(2), vec!["y", "2", "r"]);
        engine.apply_batch(&batch).unwrap();
        engine
    }

    fn restore(state: SnapshotState, config: DynFdConfig) -> DynFd {
        DynFd::from_saved_state(
            state.rel,
            state.fds,
            state.non_fds,
            &state.annotations,
            config,
        )
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let engine = churned_engine();
        let payload = encode_snapshot(17, &engine);
        let state = decode_snapshot(&payload).unwrap();
        assert_eq!(state.seq, 17);
        let restored = restore(state, *engine.config());
        assert_eq!(
            engine.state_divergence(&restored),
            None,
            "restored engine must be structurally identical"
        );
    }

    #[test]
    fn restored_engine_evolves_identically() {
        let mut engine = churned_engine();
        let payload = encode_snapshot(1, &engine);
        let mut restored = restore(decode_snapshot(&payload).unwrap(), *engine.config());
        let mut batch = Batch::new();
        batch.insert(vec!["x", "9", "p"]).delete(RecordId(0));
        let expected = engine.apply_batch(&batch).unwrap();
        let actual = restored.apply_batch(&batch).unwrap();
        assert_eq!(expected.added, actual.added);
        assert_eq!(expected.removed, actual.removed);
        // Covers and relation must track exactly; annotation witness
        // pairs may differ (the restored engine's PLI-intersection cache
        // is cold) but must stay valid.
        assert_eq!(engine.logical_divergence(&restored), None);
        restored.verify_annotations().unwrap();
    }

    #[test]
    fn write_load_roundtrip_and_retirement() {
        let dir = tmp_dir("roundtrip");
        let engine = churned_engine();
        write_snapshot(&dir, 3, &engine, None).unwrap();
        write_snapshot(&dir, 8, &engine, None).unwrap();
        let snaps = list_snapshots(&dir).unwrap();
        assert_eq!(
            snaps.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            vec![8],
            "older snapshot is retired"
        );
        let (state, skipped) = load_latest(&dir).unwrap();
        assert!(skipped.is_empty());
        assert_eq!(state.unwrap().seq, 8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_latest_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        let engine = churned_engine();
        write_snapshot(&dir, 3, &engine, None).unwrap();
        // Preserve the older snapshot across the retirement the next
        // write performs, then corrupt the newer one.
        let older = fs::read(dir.join(snapshot_file_name(3))).unwrap();
        let newer = dir.join(snapshot_file_name(9));
        write_snapshot(&dir, 9, &engine, None).unwrap();
        fs::write(dir.join(snapshot_file_name(3)), &older).unwrap();
        let mut bytes = fs::read(&newer).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newer, &bytes).unwrap();
        let (state, skipped) = load_latest(&dir).unwrap();
        assert_eq!(state.unwrap().seq, 3);
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].contains("CRC mismatch"), "{skipped:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_of_snapshot_is_rejected_cleanly() {
        let dir = tmp_dir("trunc");
        let engine = churned_engine();
        write_snapshot(&dir, 1, &engine, None).unwrap();
        let path = dir.join(snapshot_file_name(1));
        let full = fs::read(&path).unwrap();
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            assert!(
                read_snapshot_file(&path).is_err(),
                "prefix of {cut} bytes must not validate"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_is_ignored_and_removed() {
        let dir = tmp_dir("tmpfile");
        let engine = churned_engine();
        write_snapshot(&dir, 5, &engine, None).unwrap();
        fs::write(dir.join(SNAP_TMP), b"torn partial snapshot").unwrap();
        let (state, skipped) = load_latest(&dir).unwrap();
        assert_eq!(state.unwrap().seq, 5);
        assert!(skipped.is_empty());
        assert!(!dir.join(SNAP_TMP).exists(), "stale tmp file is cleaned up");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = tmp_dir("empty");
        let (state, skipped) = load_latest(&dir).unwrap();
        assert!(state.is_none());
        assert!(skipped.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
