//! A naive reference implementation of the cover interface.
//!
//! `NaiveCover` stores FDs in a flat, sorted `Vec` and answers every
//! query by scanning. It is O(n) to O(n²) where [`FdTree`](crate::FdTree)
//! is (poly-)logarithmic, but its correctness is obvious — which makes
//! it the ideal oracle for the property-test suite that drives both
//! structures with identical random operation sequences and demands
//! identical answers.

use dynfd_common::{AttrId, AttrSet, Fd};

/// Flat-scan implementation of the FD cover interface (test oracle).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NaiveCover {
    fds: Vec<Fd>,
}

impl NaiveCover {
    /// Creates an empty cover.
    pub fn new() -> Self {
        NaiveCover::default()
    }

    /// Number of stored FDs.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether no FD is stored.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Adds `lhs -> rhs`; `false` if already present.
    pub fn add(&mut self, lhs: AttrSet, rhs: AttrId) -> bool {
        let fd = Fd::new(lhs, rhs);
        match self.fds.binary_search(&fd) {
            Ok(_) => false,
            Err(pos) => {
                self.fds.insert(pos, fd);
                true
            }
        }
    }

    /// Removes `lhs -> rhs`; `false` if absent.
    pub fn remove(&mut self, lhs: AttrSet, rhs: AttrId) -> bool {
        match self.fds.binary_search(&Fd::new(lhs, rhs)) {
            Ok(pos) => {
                self.fds.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether exactly `lhs -> rhs` is stored.
    pub fn contains(&self, lhs: AttrSet, rhs: AttrId) -> bool {
        self.fds.binary_search(&Fd::new(lhs, rhs)).is_ok()
    }

    /// Whether some stored `lhs' ⊆ lhs` with this RHS exists.
    pub fn contains_generalization(&self, lhs: AttrSet, rhs: AttrId) -> bool {
        self.fds
            .iter()
            .any(|f| f.rhs == rhs && f.lhs.is_subset_of(&lhs))
    }

    /// All stored `lhs' ⊆ lhs` with this RHS.
    pub fn get_generalizations(&self, lhs: AttrSet, rhs: AttrId) -> Vec<AttrSet> {
        self.fds
            .iter()
            .filter(|f| f.rhs == rhs && f.lhs.is_subset_of(&lhs))
            .map(|f| f.lhs)
            .collect()
    }

    /// Whether some stored `lhs' ⊇ lhs` with this RHS exists.
    pub fn contains_specialization(&self, lhs: AttrSet, rhs: AttrId) -> bool {
        self.fds
            .iter()
            .any(|f| f.rhs == rhs && f.lhs.is_superset_of(&lhs))
    }

    /// All stored `lhs' ⊇ lhs` with this RHS.
    pub fn get_specializations(&self, lhs: AttrSet, rhs: AttrId) -> Vec<AttrSet> {
        self.fds
            .iter()
            .filter(|f| f.rhs == rhs && f.lhs.is_superset_of(&lhs))
            .map(|f| f.lhs)
            .collect()
    }

    /// Removes and returns all `lhs' ⊇ lhs` with this RHS.
    pub fn remove_specializations(&mut self, lhs: AttrSet, rhs: AttrId) -> Vec<AttrSet> {
        let out = self.get_specializations(lhs, rhs);
        self.fds
            .retain(|f| !(f.rhs == rhs && f.lhs.is_superset_of(&lhs)));
        out
    }

    /// Removes and returns all `lhs' ⊆ lhs` with this RHS.
    pub fn remove_generalizations(&mut self, lhs: AttrSet, rhs: AttrId) -> Vec<AttrSet> {
        let out = self.get_generalizations(lhs, rhs);
        self.fds
            .retain(|f| !(f.rhs == rhs && f.lhs.is_subset_of(&lhs)));
        out
    }

    /// All FDs at lattice level `level` (LHS cardinality).
    pub fn get_level(&self, level: usize) -> Vec<Fd> {
        self.fds
            .iter()
            .filter(|f| f.level() == level)
            .copied()
            .collect()
    }

    /// All stored FDs, sorted.
    pub fn all_fds(&self) -> Vec<Fd> {
        self.fds.clone()
    }
}

impl FromIterator<Fd> for NaiveCover {
    fn from_iter<T: IntoIterator<Item = Fd>>(iter: T) -> Self {
        let mut c = NaiveCover::new();
        for fd in iter {
            c.add(fd.lhs, fd.rhs);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(attrs: &[usize]) -> AttrSet {
        attrs.iter().copied().collect()
    }

    #[test]
    fn mirror_of_tree_semantics() {
        let mut c = NaiveCover::new();
        assert!(c.add(s(&[1, 2]), 0));
        assert!(!c.add(s(&[1, 2]), 0));
        assert!(c.contains(s(&[1, 2]), 0));
        assert!(c.contains_generalization(s(&[1, 2, 3]), 0));
        assert!(c.contains_specialization(s(&[1]), 0));
        assert!(!c.contains_specialization(s(&[3]), 0));
        assert_eq!(c.get_level(2).len(), 1);
        assert!(c.remove(s(&[1, 2]), 0));
        assert!(c.is_empty());
    }

    #[test]
    fn bulk_removals() {
        let mut c: NaiveCover = [(s(&[1]), 0), (s(&[1, 2]), 0), (s(&[3]), 0), (s(&[1]), 2)]
            .into_iter()
            .map(|(l, r)| Fd::new(l, r))
            .collect();
        let gone = c.remove_specializations(s(&[1]), 0);
        assert_eq!(gone.len(), 2);
        assert_eq!(c.len(), 2);
        let gone = c.remove_generalizations(s(&[1, 3]), 0);
        assert_eq!(gone, vec![s(&[3])]);
        assert!(c.contains(s(&[1]), 2));
    }
}
