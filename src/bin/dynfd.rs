//! `dynfd` — command-line FD profiling and maintenance.
//!
//! ```text
//! dynfd profile <data.csv>                         discover minimal FDs
//! dynfd keys    <data.csv>                         candidate keys + BCNF check
//! dynfd maintain <data.csv> <changes.log> [opts]   replay a change log
//! dynfd serve    <data.csv> <changes.log> --wal-dir <dir> [opts]
//!                                                  replay durably (WAL + snapshots)
//! dynfd serve    --multi [--root <dir>] [opts]     multi-tenant framed server on
//!                                                  stdin/stdout, or on a socket
//!                                                  with --listen
//! dynfd recover  <dir> [--save <f>] [--stats]      recover a WAL directory
//!
//! options for maintain and serve:
//!   --batch <n>     operations per batch (default 100)
//!   --cover <file>  bootstrap from a persisted cover instead of HyFD
//!                   (maintain only)
//!   --save <file>   persist the final cover
//!   --quiet         suppress per-batch FD deltas
//!   --stats         print aggregate work metrics (validations, pruning
//!                   counters, PLI-cache hits/misses/evictions/bytes;
//!                   serve adds WAL bytes, fsyncs, snapshot time, and
//!                   recovery counters)
//!
//! options for serve only:
//!   --wal-dir <dir>       durable state directory (required)
//!   --snapshot-every <n>  batches between snapshots (default 64,
//!                         0 = never snapshot after the initial one)
//!
//! options for serve --multi:
//!   --root <dir>          durable root: each tenant persists under
//!                         <dir>/<name>/ (omit for in-memory tenants)
//!   --workers <n>         worker threads / shards (default: one per core)
//!   --queue <n>           per-tenant in-flight bound (default 64)
//!   --block               block full queues (backpressure) instead of
//!                         shedding with error code 13
//!   --snapshot-every <n>  as above, applied to every tenant
//!   --tenant-bytes <n>    per-tenant resident-byte quota; a tenant over
//!                         it is cache-degraded, then refused with code
//!                         17 and a retry-after hint
//!   --tenant-cpu-ms <n>   per-tenant cumulative batch-CPU quota (code 17)
//!   --global-bytes <n>    pool-wide byte budget: over it, the fattest
//!                         tenant degrades and idle tenants are
//!                         LRU-evicted (snapshot + release)
//!   --deadline-ms <n>     default per-job deadline, refused with code 18
//!                         before apply (an Apply frame's own deadline
//!                         field overrides it)
//!   --listen <addr>       serve the same protocol over a socket instead
//!                         of stdin/stdout: a unix path (`/run/dynfd.sock`
//!                         or `unix:path`) or a TCP address
//!                         (`127.0.0.1:7333`); connections get session
//!                         resume (Hello + ack-replay window) and
//!                         slow-client shedding (code 21)
//!   --idle-ms <n>         per-connection idle budget: a connection that
//!                         sends nothing for this long is closed with a
//!                         typed notice (code 21 at a frame boundary,
//!                         code 4 mid-frame); on stdin this also arms the
//!                         read-deadline pump
//!   --max-frame <n>       per-connection frame-size bound in bytes
//!                         (default 16 MiB, the protocol ceiling)
//!   --stats               per-tenant + aggregate metrics on stderr at
//!                         exit (includes quota/deadline/eviction
//!                         counters)
//! ```
//!
//! `serve --multi` speaks the length-prefixed binary protocol of
//! [`dynfd::serve::wire`] on stdin/stdout (DESIGN.md §6g has the frame
//! and error-code tables), or over a socket with `--listen` (DESIGN.md
//! §6j). The run ends on stdin EOF, a shutdown frame, or ctrl-c — all
//! three stop accepting, notify connected clients with typed
//! `ShuttingDown` replies (code 16), drain every queued batch, and
//! fsync every tenant's WAL tail before the process exits.
//!
//! `serve` is crash-safe `maintain`: every batch is appended to a
//! checksummed write-ahead log and fsynced *before* it mutates the
//! engine, and the full state is snapshotted periodically. Rerunning
//! `serve` on a directory that already holds durable state *resumes*:
//! it recovers (snapshot + WAL tail), skips the batches already applied,
//! and replays only the remainder. `recover` performs the same recovery
//! standalone and prints the recovered cover.
//!
//! The change log uses the line format of
//! [`dynfd::relation::parse_changelog`]: `I|v1|v2|…`, `D|<id>`,
//! `U|<id>|v1|…`. Record ids are assigned in row order starting at 0.
//!
//! Every failure prints a one-line `dynfd: …` diagnostic to stderr and
//! exits nonzero with a code that identifies the error family: `2` for
//! usage errors, and the [`DynFdError::exit_code`] mapping for engine
//! errors (`3` I/O, `4` parse, `5` unknown record, `6` duplicate
//! record, `7` arity mismatch, `8` dictionary overflow, `9` null-policy
//! violation, `10` internal fault, `11` WAL corruption, `12` snapshot
//! corruption).

use dynfd::common::{DynError, Schema};
use dynfd::core::{DynFd, DynFdConfig, DynFdError, FdMonitor};
use dynfd::lattice::closure::{bcnf_violations, candidate_keys};
use dynfd::lattice::io::{read_cover, write_cover, write_cover_file};
use dynfd::persist::{wal_path, FdEngine, RecoveryReport};
use dynfd::relation::{parse_changelog, read_csv_file, Batch, DynamicRelation};
use dynfd::serve::{
    serve_connection_with, serve_listener, AdmissionPolicy, ChannelReader, ConnOptions, ListenAddr,
    ServeConfig, ServeEngine, SessionRegistry, TransportConfig,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// SIGINT-to-flag plumbing: the handler only sets an atomic; the serve
/// loops poll it at batch/frame boundaries so the WAL tail can be
/// drained and fsynced before the process exits (exit code 130).
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    /// Installs the handler (no libc dependency: `signal(2)` directly).
    pub fn install() {
        #[cfg(unix)]
        unsafe {
            extern "C" {
                fn signal(signum: i32, handler: usize) -> usize;
            }
            let _ = signal(
                2, /* SIGINT */
                on_sigint as extern "C" fn(i32) as usize,
            );
        }
    }

    /// Whether SIGINT has arrived since [`install`].
    pub fn received() -> bool {
        INTERRUPTED.load(Ordering::SeqCst)
    }
}

/// Exit code for an orderly SIGINT shutdown (128 + signal 2).
const EXIT_INTERRUPTED: u8 = 130;

/// A CLI failure: a one-line diagnostic plus the process exit code.
/// Usage errors exit 2 (and reprint the usage text); engine errors
/// carry the distinct per-family code of [`DynFdError::exit_code`].
struct CliError {
    code: u8,
    message: String,
    show_usage: bool,
}

impl CliError {
    /// A bad-invocation error: exit 2, usage text follows the
    /// diagnostic.
    fn usage(message: impl Into<String>) -> CliError {
        CliError {
            code: 2,
            message: message.into(),
            show_usage: true,
        }
    }

    /// An engine error with a context prefix (a path, a batch index).
    fn engine(context: impl std::fmt::Display, error: DynFdError) -> CliError {
        CliError {
            code: error.exit_code(),
            message: format!("{context}: {error}"),
            show_usage: false,
        }
    }
}

impl From<DynFdError> for CliError {
    fn from(error: DynFdError) -> CliError {
        CliError {
            code: error.exit_code(),
            message: error.to_string(),
            show_usage: false,
        }
    }
}

/// Wraps a relation-layer error from reading/parsing `path` with the
/// path as context, preserving the error family for the exit code.
fn with_path(path: &str, error: DynError) -> CliError {
    CliError::engine(path, DynFdError::from(error))
}

/// An `std::io::Error` while touching `path` → exit code 3.
fn io_error(path: &str, error: std::io::Error) -> CliError {
    CliError::engine(path, DynFdError::Io(error.to_string()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("profile") => cmd_profile(&args[1..]),
        Some("keys") => cmd_keys(&args[1..]),
        Some("maintain") => cmd_maintain(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("recover") => cmd_recover(&args[1..]),
        Some("--help" | "-h") | None => {
            eprintln!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(CliError::usage(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dynfd: {}", e.message);
            if e.show_usage {
                eprintln!("{}", USAGE);
            }
            ExitCode::from(e.code)
        }
    }
}

const USAGE: &str = "usage: dynfd profile <data.csv>
       dynfd keys <data.csv>
       dynfd maintain <data.csv> <changes.log> [--batch <n>] [--cover <f>] [--save <f>] [--quiet] [--stats]
       dynfd serve <data.csv> <changes.log> --wal-dir <dir> [--batch <n>] [--snapshot-every <n>] [--save <f>] [--quiet] [--stats]
       dynfd serve --multi [--listen <addr>] [--root <dir>] [--workers <n>] [--queue <n>] [--block] [--snapshot-every <n>] [--tenant-bytes <n>] [--tenant-cpu-ms <n>] [--global-bytes <n>] [--deadline-ms <n>] [--idle-ms <n>] [--max-frame <n>] [--stats]
       dynfd recover <dir> [--save <f>] [--stats]";

fn load(path: &str) -> Result<(Schema, DynamicRelation), CliError> {
    let table = read_csv_file(path).map_err(|e| with_path(path, e))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("relation")
        .to_string();
    let schema = Schema::new(name, table.header.clone());
    let rel =
        DynamicRelation::from_rows(schema.clone(), &table.rows).map_err(|e| with_path(path, e))?;
    Ok((schema, rel))
}

fn cmd_profile(args: &[String]) -> Result<(), CliError> {
    let [path] = args else {
        return Err(CliError::usage("profile takes one CSV path"));
    };
    let (schema, rel) = load(path)?;
    let fds = dynfd::staticfd::hyfd::discover(&rel);
    eprintln!(
        "# {} rows, {} columns, {} minimal FDs",
        rel.len(),
        rel.arity(),
        fds.len()
    );
    print!("{}", write_cover(&fds, &schema));
    Ok(())
}

fn cmd_keys(args: &[String]) -> Result<(), CliError> {
    let [path] = args else {
        return Err(CliError::usage("keys takes one CSV path"));
    };
    let (schema, rel) = load(path)?;
    if rel.arity() > 24 {
        return Err(CliError::usage(format!(
            "key enumeration is exponential; {} columns is too wide (max 24)",
            rel.arity()
        )));
    }
    let fds = dynfd::staticfd::hyfd::discover(&rel);
    let arity = schema.arity();
    let names = |set: dynfd::common::AttrSet| -> String {
        let v: Vec<&str> = set.iter().map(|a| schema.column_name(a)).collect();
        if v.is_empty() {
            "∅".into()
        } else {
            v.join(",")
        }
    };
    for key in candidate_keys(&fds, arity) {
        println!("key: {{{}}}", names(key));
    }
    let violations = bcnf_violations(&fds, arity);
    if violations.is_empty() {
        println!("BCNF: ok");
    } else {
        println!("BCNF violations:");
        for fd in violations {
            println!("  {}", fd.display(&schema));
        }
    }
    Ok(())
}

fn cmd_maintain(args: &[String]) -> Result<(), CliError> {
    let mut positional: Vec<&String> = Vec::new();
    let mut batch_size = 100usize;
    let mut cover_path: Option<String> = None;
    let mut save_path: Option<String> = None;
    let mut quiet = false;
    let mut stats = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--batch" => {
                batch_size = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError::usage("--batch needs a positive integer"))?;
            }
            "--cover" => {
                cover_path = Some(
                    it.next()
                        .ok_or_else(|| CliError::usage("--cover needs a path"))?
                        .clone(),
                )
            }
            "--save" => {
                save_path = Some(
                    it.next()
                        .ok_or_else(|| CliError::usage("--save needs a path"))?
                        .clone(),
                )
            }
            "--quiet" => quiet = true,
            "--stats" => stats = true,
            other if !other.starts_with('-') => positional.push(arg),
            other => return Err(CliError::usage(format!("unknown option {other:?}"))),
        }
    }
    let [data_path, log_path] = positional[..] else {
        return Err(CliError::usage("maintain takes a CSV and a change log"));
    };

    let (schema, rel) = load(data_path)?;
    let log_text = std::fs::read_to_string(log_path).map_err(|e| io_error(log_path, e))?;
    let ops = parse_changelog(&log_text, schema.arity()).map_err(|e| with_path(log_path, e))?;

    let mut dynfd = match &cover_path {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| io_error(p, e))?;
            let cover = read_cover(&text, &schema).map_err(|e| with_path(p, e))?;
            DynFd::with_cover(rel, cover, DynFdConfig::default())
        }
        None => DynFd::new(rel, DynFdConfig::default()),
    };
    eprintln!(
        "# bootstrapped: {} rows, {} minimal FDs; replaying {} changes in batches of {batch_size}",
        dynfd.relation().len(),
        dynfd.minimal_fds().len(),
        ops.len()
    );

    let mut monitor = FdMonitor::new(&dynfd.minimal_fds());
    let mut totals = dynfd::core::BatchMetrics::default();
    let total_batches = ops.len().div_ceil(batch_size);
    for (i, batch) in Batch::chunk(ops, batch_size).into_iter().enumerate() {
        let result = dynfd
            .apply_batch(&batch)
            .map_err(|e| CliError::engine(format_args!("batch {i}"), e))?;
        totals.absorb(&result.metrics);
        monitor.observe(&result);
        if !quiet && !result.is_unchanged() {
            println!("batch {i}/{total_batches}:");
            for fd in &result.removed {
                println!("  - {}", fd.display(&schema));
            }
            for fd in &result.added {
                println!("  + {}", fd.display(&schema));
            }
        }
    }

    eprintln!(
        "# done: {} rows, {} minimal FDs, {} robust over the whole run",
        dynfd.relation().len(),
        dynfd.minimal_fds().len(),
        monitor.robust_fds(monitor.batches_observed()).len()
    );
    if stats {
        eprintln!(
            "# stats: {total_batches} batches in {:?} (delete {:?}, insert {:?}), {} worker thread(s)",
            totals.wall_time, totals.delete_phase_time, totals.insert_phase_time, totals.threads_used,
        );
        eprintln!(
            "# stats: {} FD + {} non-FD validations ({} skipped by §5.2, {} clusters pruned, {} visited)",
            totals.fd_validations,
            totals.non_fd_validations,
            totals.validations_skipped,
            totals.clusters_pruned,
            totals.clusters_visited,
        );
        eprintln!(
            "# stats: pli-cache {} hits, {} misses, {} evictions, {} bytes resident",
            totals.cache_hits, totals.cache_misses, totals.cache_evictions, totals.cache_bytes,
        );
        eprintln!(
            "# stats: kernel {} ({} lanes), sampling {} probes, {} flagged, {} jobs skipped",
            dynfd_relation::kernel::active_kernel().name(),
            totals.kernel_lanes,
            totals.sampling_probes,
            totals.sampling_flagged,
            totals.sampling_skipped,
        );
    }
    if let Some(p) = save_path {
        std::fs::write(&p, write_cover(dynfd.positive_cover(), &schema))
            .map_err(|e| io_error(&p, e))?;
        eprintln!("# cover saved to {p}");
    }
    Ok(())
}

/// Prints the recovery report's interesting lines to stderr.
fn report_recovery(dir: &str, report: &RecoveryReport) {
    eprintln!(
        "# recovered {dir}: snapshot seq {}, {} WAL batches replayed{}",
        report.snapshot_seq,
        report.replayed_batches,
        if report.stale_frames > 0 {
            format!(", {} stale frames skipped", report.stale_frames)
        } else {
            String::new()
        }
    );
    for reason in &report.snapshots_skipped {
        eprintln!("# warning: skipped corrupt snapshot: {reason}");
    }
    if let Some(corruption) = &report.corruption {
        eprintln!("# warning: {corruption}");
    }
    if let Some((seq, err)) = &report.rejected {
        eprintln!("# warning: WAL frame {seq} re-rejected on replay ({err}) — truncated");
    }
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    if args.iter().any(|a| a == "--multi") {
        return cmd_serve_multi(args);
    }
    let mut positional: Vec<&String> = Vec::new();
    let mut wal_dir: Option<String> = None;
    let mut batch_size = 100usize;
    let mut snapshot_every = DynFdConfig::default().snapshot_every;
    let mut save_path: Option<String> = None;
    let mut quiet = false;
    let mut stats = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--wal-dir" => {
                wal_dir = Some(
                    it.next()
                        .ok_or_else(|| CliError::usage("--wal-dir needs a path"))?
                        .clone(),
                )
            }
            "--batch" => {
                batch_size = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError::usage("--batch needs a positive integer"))?;
            }
            "--snapshot-every" => {
                snapshot_every = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| CliError::usage("--snapshot-every needs an integer"))?;
            }
            "--save" => {
                save_path = Some(
                    it.next()
                        .ok_or_else(|| CliError::usage("--save needs a path"))?
                        .clone(),
                )
            }
            "--quiet" => quiet = true,
            "--stats" => stats = true,
            other if !other.starts_with('-') => positional.push(arg),
            other => return Err(CliError::usage(format!("unknown option {other:?}"))),
        }
    }
    let [data_path, log_path] = positional[..] else {
        return Err(CliError::usage("serve takes a CSV and a change log"));
    };
    let Some(dir) = wal_dir else {
        return Err(CliError::usage("serve requires --wal-dir"));
    };

    let (schema, rel) = load(data_path)?;
    let log_text = std::fs::read_to_string(log_path).map_err(|e| io_error(log_path, e))?;
    let ops = parse_changelog(&log_text, schema.arity()).map_err(|e| with_path(log_path, e))?;
    let config = DynFdConfig {
        snapshot_every,
        ..DynFdConfig::default()
    };

    // A WAL file in the directory means durable state from an earlier
    // run: recover and resume instead of starting over.
    let mut engine = if wal_path(Path::new(&dir)).exists() {
        let (engine, report) = FdEngine::recover_with_config(Path::new(&dir), config)
            .map_err(|e| CliError::engine(&dir, e))?;
        report_recovery(&dir, &report);
        let durable = engine.dynfd().relation().schema();
        if durable.columns() != schema.columns() {
            return Err(CliError::engine(
                &dir,
                DynFdError::Parse(format!(
                    "durable state is for columns {:?}, the CSV has {:?}",
                    durable.columns(),
                    schema.columns()
                )),
            ));
        }
        engine
    } else {
        FdEngine::create(Path::new(&dir), rel, config).map_err(|e| CliError::engine(&dir, e))?
    };

    let batches = Batch::chunk(ops, batch_size);
    let total_batches = batches.len();
    let already_applied = (engine.seq() as usize).min(total_batches);
    if already_applied > 0 {
        eprintln!(
            "# resuming: {already_applied} of {total_batches} batches already durable, replaying the rest"
        );
    }
    eprintln!(
        "# serving: {} rows, {} minimal FDs; {} batches of {batch_size} into {dir}",
        engine.dynfd().relation().len(),
        engine.dynfd().minimal_fds().len(),
        total_batches - already_applied,
    );

    sigint::install();
    let mut monitor = FdMonitor::new(&engine.dynfd().minimal_fds());
    let mut totals = dynfd::core::BatchMetrics::default();
    for (i, batch) in batches.iter().enumerate().skip(already_applied) {
        if sigint::received() {
            // Ctrl-c between batches: make the applied prefix durable
            // (data *and* metadata) before exiting, so a recovery sees
            // exactly the batches we acknowledged.
            engine.sync_all().map_err(|e| io_error(&dir, e))?;
            eprintln!(
                "# interrupted: WAL tail synced, durable through seq {}",
                engine.seq()
            );
            return Err(CliError {
                code: EXIT_INTERRUPTED,
                message: "interrupted (SIGINT); durable state is consistent".into(),
                show_usage: false,
            });
        }
        let result = engine
            .apply_batch(batch)
            .map_err(|e| CliError::engine(format_args!("batch {i}"), e))?;
        totals.absorb(&result.metrics);
        monitor.observe(&result);
        if !quiet && !result.is_unchanged() {
            println!("batch {i}/{total_batches}:");
            for fd in &result.removed {
                println!("  - {}", fd.display(&schema));
            }
            for fd in &result.added {
                println!("  + {}", fd.display(&schema));
            }
        }
    }

    // End-of-log is an exit path too: force the WAL tail (including
    // file metadata) down before reporting success.
    engine.sync_all().map_err(|e| io_error(&dir, e))?;
    eprintln!(
        "# done: {} rows, {} minimal FDs, durable through seq {}",
        engine.dynfd().relation().len(),
        engine.dynfd().minimal_fds().len(),
        engine.seq(),
    );
    if stats {
        eprintln!(
            "# stats: {} batches in {:?} (delete {:?}, insert {:?}), {} worker thread(s)",
            total_batches - already_applied,
            totals.wall_time,
            totals.delete_phase_time,
            totals.insert_phase_time,
            totals.threads_used,
        );
        eprintln!(
            "# stats: wal {} bytes appended, {} fsyncs, snapshots {} ms, \
             {} batches replayed on recovery, last truncated seq {}",
            totals.wal_bytes,
            totals.fsyncs,
            totals.snapshot_time.as_millis(),
            totals.recovery_replayed_batches,
            totals.last_truncated_seq,
        );
        eprintln!(
            "# stats: pli-cache {} hits, {} misses, {} evictions, {} bytes resident",
            totals.cache_hits, totals.cache_misses, totals.cache_evictions, totals.cache_bytes,
        );
        eprintln!(
            "# stats: kernel {} ({} lanes), sampling {} probes, {} flagged, {} jobs skipped",
            dynfd_relation::kernel::active_kernel().name(),
            totals.kernel_lanes,
            totals.sampling_probes,
            totals.sampling_flagged,
            totals.sampling_skipped,
        );
    }
    if let Some(p) = save_path {
        write_cover_file(Path::new(&p), engine.dynfd().positive_cover(), &schema)
            .map_err(|e| with_path(&p, e))?;
        eprintln!("# cover saved to {p}");
    }
    Ok(())
}

/// `serve --multi`: the multi-tenant framed server on stdin/stdout.
fn cmd_serve_multi(args: &[String]) -> Result<(), CliError> {
    let mut root: Option<PathBuf> = None;
    let mut workers = 0usize;
    let mut queue_capacity = 64usize;
    let mut policy = AdmissionPolicy::Shed;
    let mut snapshot_every = DynFdConfig::default().snapshot_every;
    let mut stats = false;
    let mut tenant_bytes: Option<u64> = None;
    let mut tenant_cpu_ms: Option<u64> = None;
    let mut global_bytes: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut listen: Option<String> = None;
    let mut idle_ms: Option<u64> = None;
    let mut max_frame: Option<u32> = None;
    let mut start_paused = false;
    let mut drain_kill_after: Option<u64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--multi" => {}
            "--listen" => {
                listen = Some(
                    it.next()
                        .ok_or_else(|| CliError::usage("--listen needs an address"))?
                        .clone(),
                );
            }
            "--idle-ms" => {
                idle_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| CliError::usage("--idle-ms needs a positive integer"))?,
                );
            }
            "--max-frame" => {
                max_frame = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| CliError::usage("--max-frame needs a positive integer"))?,
                );
            }
            // Hidden crash-harness hooks (tests/serve_socket.rs): start
            // with delivery paused, and abort the process after N more
            // jobs complete inside shutdown's drain window.
            "--start-paused" => start_paused = true,
            "--drain-kill-after" => {
                drain_kill_after = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| CliError::usage("--drain-kill-after needs an integer"))?,
                );
            }
            "--tenant-bytes" => {
                tenant_bytes = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| {
                            CliError::usage("--tenant-bytes needs a positive integer")
                        })?,
                );
            }
            "--tenant-cpu-ms" => {
                tenant_cpu_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| {
                            CliError::usage("--tenant-cpu-ms needs a positive integer")
                        })?,
                );
            }
            "--global-bytes" => {
                global_bytes = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| {
                            CliError::usage("--global-bytes needs a positive integer")
                        })?,
                );
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| CliError::usage("--deadline-ms needs a positive integer"))?,
                );
            }
            "--root" => {
                root = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| CliError::usage("--root needs a path"))?,
                ))
            }
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError::usage("--workers needs a positive integer"))?;
            }
            "--queue" => {
                queue_capacity = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError::usage("--queue needs a positive integer"))?;
            }
            "--block" => policy = AdmissionPolicy::Block,
            "--snapshot-every" => {
                snapshot_every = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| CliError::usage("--snapshot-every needs an integer"))?;
            }
            "--stats" => stats = true,
            other => {
                return Err(CliError::usage(format!(
                    "unknown serve --multi option {other:?}"
                )))
            }
        }
    }

    if let Some(dir) = &root {
        std::fs::create_dir_all(dir).map_err(|e| io_error(&dir.display().to_string(), e))?;
    }
    sigint::install();
    let engine = Arc::new(ServeEngine::new(ServeConfig {
        workers,
        queue_capacity,
        policy,
        root: root.clone(),
        engine: DynFdConfig {
            snapshot_every,
            ..DynFdConfig::default()
        },
        quota: dynfd::serve::TenantQuota {
            max_resident_bytes: tenant_bytes,
            max_cpu: tenant_cpu_ms.map(Duration::from_millis),
        },
        global_bytes_budget: global_bytes,
        default_deadline: deadline_ms.map(Duration::from_millis),
        start_paused,
        drain_kill_after,
        ..ServeConfig::default()
    }));
    eprintln!(
        "# serve --multi: {} workers, per-tenant queue {queue_capacity} ({}), root {}{}",
        engine.worker_count(),
        match policy {
            AdmissionPolicy::Shed => "shed",
            AdmissionPolicy::Block => "block",
        },
        root.as_deref().map_or_else(
            || "none (in-memory tenants)".to_string(),
            |d| d.display().to_string()
        ),
        listen
            .as_deref()
            .map_or_else(String::new, |a| format!(", listening on {a}")),
    );

    // Session resume (Hello + ack-replay window) is available on both
    // transports; connection options are shared.
    let options = ConnOptions {
        max_frame: max_frame.unwrap_or(dynfd::serve::wire::MAX_FRAME),
        idle: idle_ms.map(Duration::from_millis),
        sessions: Some(Arc::new(SessionRegistry::default())),
    };
    let report = if let Some(addr) = &listen {
        let addr = ListenAddr::parse(addr);
        let transport = serve_listener(
            &engine,
            &addr,
            TransportConfig {
                options,
                ..TransportConfig::default()
            },
            sigint::received,
        )
        .map_err(|e| io_error(&addr.to_string(), e))?;
        eprintln!(
            "# transport: {} connections, {} sessions ({} resumed), \
             {} slow-client sheds, {} idle kills",
            transport.connections,
            transport.sessions,
            transport.sessions_resumed,
            transport.slow_client_sheds,
            transport.idle_kills,
        );
        (transport.frames, transport.responses)
    } else if idle_ms.is_some() {
        // The idle budget needs read deadlines; stdin gets them from the
        // pump thread (a plain stdin read cannot time out).
        let reader = ChannelReader::spawn(std::io::stdin(), Duration::from_millis(25));
        let report = serve_connection_with(
            &engine,
            reader,
            std::io::stdout(),
            options,
            sigint::received,
        );
        (report.frames, report.responses)
    } else {
        let report = serve_connection_with(
            &engine,
            std::io::stdin().lock(),
            std::io::stdout(),
            options,
            sigint::received,
        );
        (report.frames, report.responses)
    };

    let interrupted = sigint::received();
    // Connection threads drop their engine clones as they unwind; a
    // straggler past the transport's drain deadline gets a short grace
    // before we give up.
    let mut engine = engine;
    let engine = {
        let mut tries = 0u32;
        loop {
            match Arc::try_unwrap(engine) {
                Ok(e) => break e,
                Err(shared) if tries < 200 => {
                    engine = shared;
                    tries += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    return Err(CliError::engine(
                        "serve --multi",
                        DynFdError::InvariantBreach {
                            phase: "shutdown",
                            detail: "engine still shared after connection end".into(),
                        },
                    ));
                }
            }
        }
    };
    if stats {
        for name in engine.tenant_names() {
            if let Ok(m) = engine.metrics(&name) {
                eprintln!(
                    "# tenant {name}: {} submitted, {} applied, {} rejected, {} shed, \
                     {} quota-rejected, {} deadline-rejected, {} degraded, \
                     +{}/-{} FDs, max depth {}, latency mean {:?} max {:?}",
                    m.submitted,
                    m.applied,
                    m.rejected,
                    m.shed,
                    m.quota_rejected,
                    m.deadline_rejected,
                    m.degraded_batches,
                    m.fds_added,
                    m.fds_removed,
                    m.max_depth,
                    m.latency_total
                        .checked_div((m.applied + m.rejected).max(1) as u32)
                        .unwrap_or_default(),
                    m.latency_max,
                );
            }
        }
        // The aggregate survives tenant eviction: it is the sum over
        // every tenant the engine ever served, not just the live set.
        let g = engine.global_metrics();
        eprintln!(
            "# global: {} submitted, {} applied, {} shed, {} quota-rejected, \
             {} deadline-rejected, {} closed-rejected, {} evictions, \
             {} live tenants, {} bytes resident",
            g.totals.submitted,
            g.totals.applied,
            g.totals.shed,
            g.totals.quota_rejected,
            g.totals.deadline_rejected,
            g.totals.closed_rejected,
            g.evictions,
            g.live_tenants,
            g.resident_bytes,
        );
    }
    let (frames, responses) = report;
    let shutdown = engine.shutdown();
    eprintln!(
        "# shutdown: {frames} frames, {responses} responses, {} tenants, {} WAL tails synced",
        shutdown.tenants, shutdown.synced
    );
    for (tenant, err) in &shutdown.sync_errors {
        eprintln!("# warning: tenant {tenant}: final sync failed: {err}");
    }
    for tenant in &shutdown.poisoned {
        eprintln!("# warning: tenant {tenant}: poisoned by an earlier panic, not synced");
    }
    if !shutdown.sync_errors.is_empty() {
        return Err(CliError {
            code: 3,
            message: format!(
                "{} tenant WAL tail(s) failed to sync",
                shutdown.sync_errors.len()
            ),
            show_usage: false,
        });
    }
    if interrupted {
        return Err(CliError {
            code: EXIT_INTERRUPTED,
            message: "interrupted (SIGINT); queues drained, WAL tails synced".into(),
            show_usage: false,
        });
    }
    Ok(())
}

fn cmd_recover(args: &[String]) -> Result<(), CliError> {
    let mut positional: Vec<&String> = Vec::new();
    let mut save_path: Option<String> = None;
    let mut stats = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--save" => {
                save_path = Some(
                    it.next()
                        .ok_or_else(|| CliError::usage("--save needs a path"))?
                        .clone(),
                )
            }
            "--stats" => stats = true,
            other if !other.starts_with('-') => positional.push(arg),
            other => return Err(CliError::usage(format!("unknown option {other:?}"))),
        }
    }
    let [dir] = positional[..] else {
        return Err(CliError::usage("recover takes one WAL directory"));
    };

    let (engine, report) =
        FdEngine::recover(Path::new(dir)).map_err(|e| CliError::engine(dir, e))?;
    report_recovery(dir, &report);
    let schema = engine.dynfd().relation().schema().clone();
    eprintln!(
        "# state: {} rows, {} columns, {} minimal FDs, durable through seq {}",
        engine.dynfd().relation().len(),
        engine.dynfd().relation().arity(),
        engine.dynfd().minimal_fds().len(),
        engine.seq(),
    );
    if stats {
        eprintln!(
            "# stats: wal ends at byte {}, {} snapshots skipped, corruption: {}",
            engine.wal_end_offset(),
            report.snapshots_skipped.len(),
            report
                .corruption
                .as_ref()
                .map_or("none".to_string(), |c| c.to_string()),
        );
    }
    print!("{}", write_cover(engine.dynfd().positive_cover(), &schema));
    if let Some(p) = save_path {
        write_cover_file(Path::new(&p), engine.dynfd().positive_cover(), &schema)
            .map_err(|e| with_path(&p, e))?;
        eprintln!("# cover saved to {p}");
    }
    Ok(())
}
