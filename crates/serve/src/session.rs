//! One framed client connection: the read-decode-dispatch loop.
//!
//! [`serve_connection_with`] reads frames off a byte stream, dispatches
//! them to a shared [`ServeEngine`], and writes typed responses back.
//! The same [`Dispatcher`] drives the legacy stdin/stdout transport,
//! every socket connection (`crate::transport`), and the testkit wire
//! fuzzer, so the protocol contract cannot drift between transports.
//! The contract the wire fuzzer pins:
//!
//! * every well-formed frame is answered **exactly once** — applies are
//!   answered asynchronously from the worker that ran them, everything
//!   else synchronously from the read loop;
//! * a frame whose payload does not decode is answered once with a
//!   typed parse error (best-effort request id) and the stream stays in
//!   sync;
//! * framing damage (torn or impossible length prefix) is answered once
//!   with a typed error and the loop stops — by definition the stream
//!   cannot be resynchronized;
//! * the server never crashes on wire input.
//!
//! Sessioned applies (`Hello` + non-zero `session_seq`) relax
//! "answered exactly once" in one direction only: a *re-sent* frame may
//! be answered from the ack-replay window instead of re-applied, so
//! responses become at-least-once while batch application stays
//! exactly-once (see `crate::resume`).
//!
//! Guards ([`ConnOptions`]): an enforced max-frame-size bound and an
//! idle/read-deadline budget. Idle enforcement needs a stream whose
//! reads time out — sockets arm `SO_RCVTIMEO`; for stdin-like blocking
//! readers, [`ChannelReader`] pumps the stream through a thread and
//! surfaces timeouts. An idle connection is killed with a typed code-21
//! reply instead of stalling silently; a read deadline that expires
//! *mid-frame* is torn framing and gets the typed parse reply.
//!
//! Responses from different tenants may interleave in any order (the
//! `request_id` is the correlation key); responses for one tenant are
//! written in application order because only its one shard produces them.

use crate::resume::{Route, SessionHandle, SessionRegistry};
use crate::server::ServeEngine;
use crate::wire::{self, FrameError, FrameIo, Request, Response, CODE_PARSE, MAX_FRAME};
use crate::{ServeError, CODE_SHUTTING_DOWN, CODE_SLOW_CLIENT};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a connection's responses go. The read loop and worker
/// completions both write through this; the stdin transport backs it
/// with a locked writer, the socket transport with a bounded outbox.
pub trait ResponseSink: Send + Sync {
    /// Delivers one response frame (best-effort: a sink whose client
    /// died may drop it).
    fn send(&self, resp: &Response);
}

/// Per-connection guardrails shared by every transport.
#[derive(Clone)]
pub struct ConnOptions {
    /// Hard bound on accepted frame payloads (clamped to the protocol's
    /// [`MAX_FRAME`]); larger prefixes are framing damage.
    pub max_frame: u32,
    /// Kill the connection (typed code-21 reply) after this much
    /// inactivity. `None` = wait forever. Takes effect only on streams
    /// whose reads time out (sockets, [`ChannelReader`]).
    pub idle: Option<Duration>,
    /// Session registry for exactly-once resume; `None` answers `Hello`
    /// frames with code 20.
    pub sessions: Option<Arc<SessionRegistry>>,
}

impl Default for ConnOptions {
    fn default() -> Self {
        ConnOptions {
            max_frame: MAX_FRAME,
            idle: None,
            sessions: None,
        }
    }
}

/// What one connection processed, returned when its stream ends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnectionReport {
    /// Frames read off the stream (well-formed or not).
    pub frames: u64,
    /// Responses written back.
    pub responses: u64,
    /// Whether the client asked for shutdown (the caller owns actually
    /// draining the engine).
    pub shutdown_requested: bool,
    /// Whether the idle budget killed the connection.
    pub idle_killed: bool,
}

/// A writer shared between the read loop and worker completions, with a
/// response counter for the exactly-once accounting.
struct SharedWriter<W> {
    writer: Mutex<W>,
    responses: AtomicU64,
}

impl<W: Write + Send> ResponseSink for SharedWriter<W> {
    /// Writes one response frame. Write failures are swallowed: the
    /// client is gone and tearing down the connection is the read
    /// loop's job (its next read fails), not a worker thread's.
    fn send(&self, resp: &Response) {
        let payload = wire::encode_response(resp);
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if wire::write_frame(&mut *writer, &payload).is_ok() {
            self.responses.fetch_add(1, Ordering::SeqCst);
        }
    }
}

pub(crate) fn error_response(request_id: u64, tenant: &str, err: &ServeError) -> Response {
    let code = err.wire_code().min(u8::MAX as u32) as u8;
    Response::error(request_id, tenant, code, err.to_string())
        .with_retry_after(err.retry_after_ms().unwrap_or(0))
}

/// What the dispatcher wants the read loop to do next.
pub(crate) enum Flow {
    /// Keep reading frames.
    Continue,
    /// Stream is done; `shutdown` says the client asked the whole
    /// server to drain.
    Stop {
        /// Whether a `Shutdown` frame (not just end-of-stream) ended it.
        shutdown: bool,
    },
}

/// Transport-independent request dispatch: decode, run against the
/// engine, route the response. One per connection.
pub(crate) struct Dispatcher {
    engine: Arc<ServeEngine>,
    registry: Option<Arc<SessionRegistry>>,
    session: Option<Arc<SessionHandle>>,
    sink: Arc<dyn ResponseSink>,
}

impl Dispatcher {
    pub(crate) fn new(
        engine: Arc<ServeEngine>,
        registry: Option<Arc<SessionRegistry>>,
        sink: Arc<dyn ResponseSink>,
    ) -> Dispatcher {
        Dispatcher {
            engine,
            registry,
            session: None,
            sink,
        }
    }

    /// Unbinds this connection from its session (a reconnect may
    /// already have re-bound it — then this is a no-op). Call when the
    /// stream ends.
    pub(crate) fn detach(&mut self) {
        if let Some(session) = self.session.take() {
            session.detach(&self.sink);
        }
    }

    fn handle_hello(&mut self, request_id: u64, session_id: &str) {
        let Some(registry) = self.registry.clone() else {
            let err = ServeError::SessionViolation {
                session: session_id.to_string(),
                tenant: String::new(),
                detail: "session resume is not enabled on this transport".into(),
            };
            self.sink.send(&error_response(request_id, "", &err));
            return;
        };
        if !crate::valid_tenant_name(session_id) {
            let err = ServeError::SessionViolation {
                session: session_id.to_string(),
                tenant: String::new(),
                detail: "invalid session id".into(),
            };
            self.sink.send(&error_response(request_id, "", &err));
            return;
        }
        // Re-binding the same connection to a new session releases the
        // old one first.
        self.detach();
        let (handle, epoch) = registry.attach(session_id, Arc::clone(&self.sink));
        self.session = Some(handle);
        // The epoch rides the `seq` field: 1 = new session, >1 = resumed.
        self.sink.send(&Response::ok(request_id, "", epoch, 0, 0));
    }

    fn submit_apply(
        &self,
        request_id: u64,
        tenant: String,
        deadline_ms: u64,
        session_seq: u64,
        batch: dynfd_relation::Batch,
    ) {
        // deadline_ms 0 = "server default" (possibly none).
        let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
        let session = if session_seq > 0 {
            let Some(session) = self.session.clone() else {
                let err = ServeError::SessionViolation {
                    session: String::new(),
                    tenant: tenant.clone(),
                    detail: format!("sessioned apply (seq {session_seq}) before hello"),
                };
                self.sink.send(&error_response(request_id, &tenant, &err));
                return;
            };
            match session.route(&tenant, session_seq) {
                Route::Fresh => Some(session),
                Route::Replay(resp) => {
                    self.engine.note_session_replay(&tenant);
                    self.sink.send(&resp);
                    return;
                }
                Route::InFlight => {
                    self.engine.note_session_dedup(&tenant);
                    return;
                }
                Route::Violation(detail) => {
                    let err = ServeError::SessionViolation {
                        session: session.id().to_string(),
                        tenant: tenant.clone(),
                        detail,
                    };
                    self.sink.send(&error_response(request_id, &tenant, &err));
                    return;
                }
            }
        } else {
            None
        };
        let completion_sink = Arc::clone(&self.sink);
        let completion_session = session.clone();
        let submitted =
            self.engine
                .submit_with_deadline(&tenant, request_id, batch, deadline, move |reply| {
                    let resp = match reply.outcome {
                        Ok(s) => {
                            Response::ok(reply.request_id, &reply.tenant, s.seq, s.added, s.removed)
                        }
                        Err(err) => error_response(reply.request_id, &reply.tenant, &err),
                    };
                    match &completion_session {
                        // Sessioned: settle into the replay window and route
                        // to wherever the session is attached *now*.
                        Some(session) => session.settle(&reply.tenant, session_seq, resp),
                        None => completion_sink.send(&resp),
                    }
                });
        // Admission failures are synchronous: the job was never queued,
        // so the reply is ours to write — and for a sessioned apply it
        // still settles (a retrying client assigns a fresh seq).
        if let Err(err) = submitted {
            let resp = error_response(request_id, &tenant, &err);
            match &session {
                Some(session) => session.settle(&tenant, session_seq, resp),
                None => self.sink.send(&resp),
            }
        }
    }

    /// Handles one frame payload.
    pub(crate) fn dispatch(&mut self, payload: &[u8]) -> Flow {
        match wire::decode_request(payload) {
            Ok(Request::Open {
                request_id,
                tenant,
                columns,
                rows,
            }) => {
                let schema = dynfd_common::Schema::new(tenant.clone(), columns);
                match self.engine.open_tenant(&tenant, schema, &rows) {
                    Ok(report) => self
                        .sink
                        .send(&Response::ok(request_id, &tenant, report.seq, 0, 0)),
                    Err(err) => self.sink.send(&error_response(request_id, &tenant, &err)),
                }
                Flow::Continue
            }
            Ok(Request::Apply {
                request_id,
                tenant,
                deadline_ms,
                session_seq,
                batch,
            }) => {
                self.submit_apply(request_id, tenant, deadline_ms, session_seq, batch);
                Flow::Continue
            }
            Ok(Request::Shutdown { request_id }) => {
                self.sink.send(&Response::ok(request_id, "", 0, 0, 0));
                Flow::Stop { shutdown: true }
            }
            Ok(Request::Close { request_id, tenant }) => {
                // Synchronous by design: the drain blocks the read
                // loop, so a client cannot race its own close with
                // later applies to the same tenant on this stream.
                match self.engine.close_tenant(&tenant) {
                    Ok(report) => self.sink.send(&Response::ok(
                        request_id,
                        &tenant,
                        report.seq.unwrap_or(0),
                        0,
                        0,
                    )),
                    Err(err) => self.sink.send(&error_response(request_id, &tenant, &err)),
                }
                Flow::Continue
            }
            Ok(Request::Hello {
                request_id,
                session_id,
            }) => {
                self.handle_hello(request_id, &session_id);
                Flow::Continue
            }
            Err((request_id, detail)) => {
                // Payload damage with intact framing: answer once,
                // keep reading — the stream is still in sync.
                self.sink.send(&Response::error(
                    request_id,
                    "",
                    CODE_PARSE,
                    format!("undecodable request: {detail}"),
                ));
                Flow::Continue
            }
        }
    }
}

/// What [`drive_connection`] observed before the stream ended.
pub(crate) struct DriveOutcome {
    pub(crate) frames: u64,
    pub(crate) shutdown_requested: bool,
    pub(crate) idle_killed: bool,
}

/// The transport-independent read loop: frames in, dispatch, guard
/// enforcement. Control notices (shutdown/idle/damage) go through
/// `sink` like every other response. Does **not** quiesce or detach —
/// the caller owns teardown order.
pub(crate) fn drive_connection<R: Read>(
    reader: R,
    sink: &Arc<dyn ResponseSink>,
    dispatcher: &mut Dispatcher,
    options: &ConnOptions,
    stop: impl Fn() -> bool,
) -> DriveOutcome {
    let mut io = FrameIo::with_max_frame(reader, options.max_frame);
    let mut outcome = DriveOutcome {
        frames: 0,
        shutdown_requested: false,
        idle_killed: false,
    };
    let mut last_progress = 0u64;
    let mut quiet_since = Instant::now();
    loop {
        if stop() {
            sink.send(&Response::error(
                0,
                "",
                CODE_SHUTTING_DOWN.min(u8::MAX as u32) as u8,
                "server draining; re-send unacked frames after reconnect",
            ));
            break;
        }
        match io.read() {
            Ok(None) => break,
            Ok(Some(payload)) => {
                outcome.frames += 1;
                last_progress = io.bytes_read();
                quiet_since = Instant::now();
                match dispatcher.dispatch(&payload) {
                    Flow::Continue => {}
                    Flow::Stop { shutdown } => {
                        outcome.shutdown_requested = shutdown;
                        break;
                    }
                }
            }
            Err(err) if err.is_timeout() => {
                // A deadline tick, not damage: the partial frame (if
                // any) is parked inside `io` and resumes next read.
                if io.bytes_read() != last_progress {
                    last_progress = io.bytes_read();
                    quiet_since = Instant::now();
                    continue;
                }
                let Some(idle) = options.idle else { continue };
                if quiet_since.elapsed() < idle {
                    continue;
                }
                outcome.idle_killed = true;
                if io.mid_frame() {
                    // The frame stalled mid-flight: torn by deadline.
                    sink.send(&Response::error(
                        0,
                        "",
                        CODE_PARSE,
                        format!("read deadline mid-frame after {}ms idle", idle.as_millis()),
                    ));
                } else {
                    sink.send(&Response::error(
                        0,
                        "",
                        CODE_SLOW_CLIENT.min(u8::MAX as u32) as u8,
                        format!("idle for {}ms; closing connection", idle.as_millis()),
                    ));
                }
                break;
            }
            Err(err @ (FrameError::Torn { .. } | FrameError::Oversized { .. })) => {
                // Framing damage: answer once, then stop — there is no
                // frame boundary left to resynchronize on.
                outcome.frames += 1;
                sink.send(&Response::error(0, "", CODE_PARSE, err.to_string()));
                break;
            }
            Err(FrameError::Io(_)) => break,
        }
    }
    outcome
}

/// Serves one framed connection against `engine` until the stream ends,
/// framing breaks, a guard trips, the client requests shutdown, or
/// `stop` reports true between frames (the CLI's SIGINT hook; pass
/// `|| false` when unused). When `stop` ends the loop the client gets a
/// typed `ShuttingDown` notice (code 16, id 0) before the stream closes.
///
/// Before returning, the engine is quiesced so every in-flight apply
/// has written its response — the writer is never dropped with replies
/// outstanding.
pub fn serve_connection_with<R: Read, W: Write + Send + 'static>(
    engine: &Arc<ServeEngine>,
    reader: R,
    writer: W,
    options: ConnOptions,
    stop: impl Fn() -> bool,
) -> ConnectionReport {
    let shared = Arc::new(SharedWriter {
        writer: Mutex::new(writer),
        responses: AtomicU64::new(0),
    });
    let sink: Arc<dyn ResponseSink> = Arc::clone(&shared) as Arc<dyn ResponseSink>;
    let mut dispatcher = Dispatcher::new(
        Arc::clone(engine),
        options.sessions.clone(),
        Arc::clone(&sink),
    );
    let outcome = drive_connection(reader, &sink, &mut dispatcher, &options, stop);
    // Let every queued apply finish (and write its response) before the
    // report claims the connection is done — and before detaching, so
    // sessioned completions still reach this connection's writer. A
    // paused engine never goes idle (crash-harness runs queue work that
    // only the shutdown drain delivers), so skip the wait there.
    if !engine.is_paused() {
        engine.quiesce();
    }
    dispatcher.detach();
    ConnectionReport {
        frames: outcome.frames,
        responses: shared.responses.load(Ordering::SeqCst),
        shutdown_requested: outcome.shutdown_requested,
        idle_killed: outcome.idle_killed,
    }
}

/// [`serve_connection_with`] under default options — the legacy
/// single-connection entry point (protocol-wide frame bound, no idle
/// kill, no session resume).
pub fn serve_connection<R: Read, W: Write + Send + 'static>(
    engine: &Arc<ServeEngine>,
    reader: R,
    writer: W,
    stop: impl Fn() -> bool,
) -> ConnectionReport {
    serve_connection_with(engine, reader, writer, ConnOptions::default(), stop)
}

/// Adapts a blocking reader (stdin) into one whose reads time out, so
/// the idle guard and the stop flag get polled even when no bytes
/// arrive. A pump thread performs the blocking reads and forwards
/// chunks over a bounded channel; `read` surfaces `WouldBlock` after
/// `tick` without data. The pump thread exits at EOF, on error, or when
/// the `ChannelReader` is dropped mid-stream (next send fails); a pump
/// blocked inside `read(2)` with no traffic lingers until process exit,
/// which is the only option short of closing the fd out from under it.
pub struct ChannelReader {
    rx: mpsc::Receiver<io::Result<Vec<u8>>>,
    buf: Vec<u8>,
    pos: usize,
    tick: Duration,
    done: bool,
}

impl ChannelReader {
    /// Pumps `reader` through a named thread; `tick` is the poll
    /// granularity (how often a blocked `read` yields `WouldBlock`),
    /// not the idle budget — that lives in [`ConnOptions::idle`].
    pub fn spawn<R: Read + Send + 'static>(mut reader: R, tick: Duration) -> ChannelReader {
        let (tx, rx) = mpsc::sync_channel::<io::Result<Vec<u8>>>(8);
        // Spawn failure (resource exhaustion) degrades to instant EOF;
        // the connection report simply shows zero frames.
        let _ = std::thread::Builder::new()
            .name("dynfd-conn-pump".into())
            .spawn(move || {
                let mut chunk = [0u8; 16 * 1024];
                loop {
                    match reader.read(&mut chunk) {
                        Ok(0) => {
                            let _ = tx.send(Ok(Vec::new()));
                            return;
                        }
                        Ok(n) => {
                            if tx.send(Ok(chunk[..n].to_vec())).is_err() {
                                return;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            });
        ChannelReader {
            rx,
            buf: Vec::new(),
            pos: 0,
            tick: tick.max(Duration::from_millis(1)),
            done: false,
        }
    }
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.pos < self.buf.len() {
            let n = (self.buf.len() - self.pos).min(out.len());
            out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            return Ok(n);
        }
        if self.done {
            return Ok(0);
        }
        match self.rx.recv_timeout(self.tick) {
            Ok(Ok(chunk)) if chunk.is_empty() => {
                self.done = true;
                Ok(0)
            }
            Ok(Ok(chunk)) => {
                self.buf = chunk;
                self.pos = 0;
                self.read(out)
            }
            Ok(Err(e)) => {
                self.done = true;
                Err(e)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "read tick"))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.done = true;
                Ok(0)
            }
        }
    }
}
