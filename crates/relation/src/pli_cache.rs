//! Memoized PLI intersections shared across candidates and batches.
//!
//! Both lattice phases validate many candidates per level whose LHS
//! attribute sets overlap heavily, and the underlying PLIs barely change
//! between batches — yet the validator recomputes the same lazy
//! intersections from scratch for every candidate. This module caches
//! *two-attribute* intersected partitions keyed by their [`AttrSet`]:
//!
//! * Single-attribute partitions already exist as the relation's PLIs,
//!   so caching them would duplicate state.
//! * Two-attribute intersections are the shared prefixes of the arity-2
//!   and arity-3 lattice levels, where validation spends most of its
//!   time. A candidate `{a,b,c} -> r` that finds `{a,b}` cached only has
//!   to refine by `c` inside the cached (mostly singleton-free)
//!   clusters.
//! * Two value codes pack exactly into one `u64` — the same packed
//!   cluster-signature scheme as the validator's
//!   [`ValidatorScratch`](crate::ValidatorScratch) group maps — so
//!   cluster membership is exact (codes, not hashes) and patching is
//!   O(1) per touched record.
//!
//! # Maintenance
//!
//! Entries are **patched in place** per batch: a deleted record is
//! removed from its cluster (clusters demote to singletons at size 1),
//! an inserted record joins the cluster of its signature (singletons
//! promote to clusters at size 2). Only when a record referenced by the
//! patch cannot be resolved against the relation — which indicates the
//! entry and the relation have diverged, e.g. after an external rebuild
//! — is the entry **invalidated** instead. A rolled-back batch clears
//! the whole cache: entries were already patched to the state the
//! rollback threw away.
//!
//! # Sharing and determinism
//!
//! Validation workers never lock the cache. Each level takes an
//! immutable [`PliCacheSnapshot`] (cheap: `Arc` clones per entry),
//! workers record their probes and newly built partitions as
//! [`CacheEffects`], and the coordinator merges the effects back **in
//! job order** at the level barrier. Hit/miss counters, LRU ticks, and
//! evictions are therefore a pure function of the job list — identical
//! for every worker count, preserving the engine's bit-for-bit
//! parallel-determinism contract.
//!
//! # Eviction
//!
//! The cache holds a configurable byte budget (approximate, counted
//! from cluster/index sizes). When the budget is exceeded, entries are
//! evicted least-recently-used first; ties break on the key's total
//! order so eviction is deterministic.

use crate::relation::DynamicRelation;
use dynfd_common::{AttrSet, RecordId};
use std::collections::HashMap;
use std::sync::Arc;

/// One memoized two-attribute intersected partition.
///
/// Holds every live record of the relation at build time, split into
/// non-singleton *clusters* (records sharing both value codes) and
/// *singletons*. The packed `u64` signature — code of the smaller
/// attribute in the high half — indexes both, so per-record patches are
/// O(log cluster) without touching the relation's PLIs.
#[derive(Clone, Debug)]
pub struct CachedPartition {
    /// Smaller attribute of the key (high half of the signature).
    a: usize,
    /// Larger attribute of the key (low half of the signature).
    b: usize,
    /// Non-singleton clusters with their signature, in deterministic
    /// build/creation order; members sorted ascending.
    clusters: Vec<(u64, Vec<RecordId>)>,
    /// Signature → slot in `clusters`.
    index: HashMap<u64, u32>,
    /// Signature → the single record carrying it.
    singletons: HashMap<u64, RecordId>,
    /// Record → its signature, for patching deletes without the (already
    /// removed) record's values.
    member_sig: HashMap<RecordId, u64>,
    /// Size of the largest cluster, maintained exactly.
    max_len: usize,
}

impl CachedPartition {
    /// Builds the partition for `{a, b}` (with `a < b`) over all live
    /// records of `rel`.
    ///
    /// Iterates the PLI of `a` — clusters in value order, ids ascending
    /// — so the cluster creation order is deterministic and independent
    /// of any hash-map iteration order.
    ///
    /// # Panics
    ///
    /// Panics if `a >= b` or either attribute is out of range.
    pub fn build(rel: &DynamicRelation, a: usize, b: usize) -> CachedPartition {
        assert!(a < b, "cache keys are canonical: a < b");
        let mut part = CachedPartition {
            a,
            b,
            clusters: Vec::new(),
            index: HashMap::new(),
            singletons: HashMap::new(),
            member_sig: HashMap::new(),
            max_len: 0,
        };
        let col_b = rel.column(b);
        let slot_rids = rel.slot_rids();
        for (va, cluster) in rel.pli(a).iter() {
            let hi = (va as u64) << 32;
            for &slot in cluster {
                // Streams two flat arrays per member (the b-column and
                // the slot→rid table); clusters iterate in rid order, so
                // creation order matches the row-store build exactly.
                part.add_member(hi | col_b[slot as usize] as u64, slot_rids[slot as usize]);
            }
        }
        part
    }

    /// The two-attribute key this partition was built for.
    pub fn key(&self) -> AttrSet {
        let mut key = AttrSet::single(self.a);
        key.insert(self.b);
        key
    }

    /// Iterates the non-singleton clusters (members ascending by id) in
    /// deterministic creation order.
    pub fn clusters(&self) -> impl Iterator<Item = &[RecordId]> {
        self.clusters.iter().map(|(_, c)| c.as_slice())
    }

    /// Number of non-singleton clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// The rid-sorted member list of cluster `idx`, in the same
    /// deterministic creation order [`CachedPartition::clusters`] uses.
    pub fn cluster_rids(&self, idx: usize) -> &[RecordId] {
        &self.clusters[idx].1
    }

    /// Sampling-prober refinement step: intersects the newest `tail_cap`
    /// members of cluster `idx` with a raw PLI cluster through the shared
    /// vectorized kernel ([`crate::kernel`] via
    /// [`crate::intersect_clusters`]), appending the surviving arena
    /// slots in rid order. `slot_scratch` is caller-provided working
    /// memory for the rid → slot translation, so repeated probes stay
    /// allocation-free.
    pub fn refine_tail_with_pli(
        &self,
        idx: usize,
        tail_cap: usize,
        rel: &DynamicRelation,
        pli_cluster: &[u32],
        slot_scratch: &mut Vec<u32>,
        out: &mut Vec<u32>,
    ) {
        let rids = self.cluster_rids(idx);
        let tail = &rids[rids.len().saturating_sub(tail_cap)..];
        slot_scratch.clear();
        slot_scratch.extend(tail.iter().map(|&rid| {
            rel.slot_of(rid)
                .expect("cached partition references live record")
        }));
        crate::pli::intersect_clusters(slot_scratch, pli_cluster, rel.slot_rids(), out);
    }

    /// Number of records that are alone in their cluster.
    pub fn singleton_count(&self) -> usize {
        self.singletons.len()
    }

    /// Total records tracked (clustered + singleton).
    pub fn member_count(&self) -> usize {
        self.member_sig.len()
    }

    /// Size of the largest cluster (1 if only singletons, 0 if empty).
    pub fn max_cluster_len(&self) -> usize {
        self.max_len
    }

    /// Approximate resident size in bytes, for budget accounting. Counts
    /// the id payloads plus amortized hash-map and `Vec` overheads; the
    /// exact allocator numbers don't matter as long as the measure is
    /// monotone in the real footprint.
    pub fn approx_bytes(&self) -> usize {
        let clustered = self.member_count() - self.singleton_count();
        128 + self.member_sig.len() * 24
            + self.singletons.len() * 24
            + self.index.len() * 16
            + self.clusters.len() * 56
            + clustered * 8
    }

    /// Adds `rid` with signature `sig`: joins its cluster, promotes a
    /// matching singleton, or starts a new singleton.
    fn add_member(&mut self, sig: u64, rid: RecordId) {
        self.member_sig.insert(rid, sig);
        if let Some(&slot) = self.index.get(&sig) {
            let cluster = &mut self.clusters[slot as usize].1;
            // New ids are assigned monotonically, so this is a push in
            // the common case; the binary search keeps re-builds after
            // out-of-order restores correct too.
            if let Err(pos) = cluster.binary_search(&rid) {
                cluster.insert(pos, rid);
            }
            self.max_len = self.max_len.max(cluster.len());
        } else if let Some(prev) = self.singletons.remove(&sig) {
            let slot = self.clusters.len() as u32;
            let pair = if prev < rid {
                vec![prev, rid]
            } else {
                vec![rid, prev]
            };
            self.clusters.push((sig, pair));
            self.index.insert(sig, slot);
            self.max_len = self.max_len.max(2);
        } else {
            self.singletons.insert(sig, rid);
            self.max_len = self.max_len.max(1);
        }
    }

    /// Removes `rid`, demoting its cluster to a singleton when only one
    /// member remains. Returns `false` if the record was not tracked.
    fn remove_member(&mut self, rid: RecordId) -> bool {
        let Some(sig) = self.member_sig.remove(&rid) else {
            return false;
        };
        if let Some(&slot) = self.index.get(&sig) {
            let slot = slot as usize;
            let cluster = &mut self.clusters[slot].1;
            let was_max = cluster.len() == self.max_len;
            if let Ok(pos) = cluster.binary_search(&rid) {
                cluster.remove(pos);
            }
            if cluster.len() == 1 {
                let survivor = cluster[0];
                self.index.remove(&sig);
                self.singletons.insert(sig, survivor);
                self.clusters.swap_remove(slot);
                if slot < self.clusters.len() {
                    // Re-point the slot of the cluster that swap_remove
                    // moved into the vacated position.
                    let moved_sig = self.clusters[slot].0;
                    self.index.insert(moved_sig, slot as u32);
                }
            }
            if was_max {
                self.recompute_max();
            }
        } else {
            self.singletons.remove(&sig);
            if self.clusters.is_empty() && self.singletons.is_empty() {
                self.max_len = 0;
            }
        }
        true
    }

    fn recompute_max(&mut self) {
        let clustered = self.clusters.iter().map(|(_, c)| c.len()).max();
        self.max_len = clustered
            .unwrap_or(0)
            .max(usize::from(!self.singletons.is_empty()));
    }
}

/// Lifetime counters of a [`PliCache`]. Per-batch deltas are taken by
/// subtracting two snapshots ([`CacheStats::delta_since`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Validations that found a cached subset of their LHS.
    pub hits: usize,
    /// Validations (arity ≥ 2) that probed and found nothing.
    pub misses: usize,
    /// Entries evicted by the byte budget or invalidated by a patch
    /// failure.
    pub evictions: usize,
}

impl CacheStats {
    /// The counters accumulated since `earlier` was captured.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// What one cache-aware validation did to (or wants from) the cache.
/// Collected per job and merged back in job order at the level barrier,
/// keeping cache state and counters independent of the worker count.
#[derive(Clone, Debug, Default)]
pub struct CacheEffects {
    /// The cached key the validation pivoted on, if any.
    pub hit: Option<AttrSet>,
    /// Whether an arity ≥ 2 candidate probed the snapshot and found no
    /// usable subset.
    pub miss: bool,
    /// A partition the validation built for itself, offered to the cache
    /// for future levels. The first offer for a key wins; duplicates
    /// (parallel jobs missing the same key against the same frozen
    /// snapshot) are dropped.
    pub built: Option<(AttrSet, Arc<CachedPartition>)>,
}

impl CacheEffects {
    /// Whether the validation interacted with the cache at all.
    pub fn is_empty(&self) -> bool {
        self.hit.is_none() && !self.miss && self.built.is_none()
    }
}

/// An immutable view of the cache taken at a level barrier. Cloning the
/// snapshot (or handing `&PliCacheSnapshot` to scoped workers) shares
/// the partitions by `Arc` — no copies, no locks.
#[derive(Clone, Debug, Default)]
pub struct PliCacheSnapshot {
    entries: HashMap<AttrSet, Arc<CachedPartition>>,
}

impl PliCacheSnapshot {
    /// An empty snapshot (what a disabled cache hands out).
    pub fn empty() -> Self {
        PliCacheSnapshot::default()
    }

    /// The cached partition for `key`, if resident.
    pub fn get(&self, key: &AttrSet) -> Option<&Arc<CachedPartition>> {
        self.entries.get(key)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[derive(Clone, Debug)]
struct CacheEntry {
    part: Arc<CachedPartition>,
    /// LRU tick of the last hit (or the insertion), strictly increasing
    /// across all touches, so eviction order is total.
    last_used: u64,
}

/// The [`AttrSet`]-keyed store of memoized PLI intersections.
///
/// See the module docs for the key scheme, maintenance, sharing, and
/// eviction rules.
#[derive(Clone, Debug)]
pub struct PliCache {
    entries: HashMap<AttrSet, CacheEntry>,
    budget: usize,
    tick: u64,
    stats: CacheStats,
}

impl PliCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        PliCache {
            entries: HashMap::new(),
            budget: budget_bytes,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Replaces the byte budget, evicting immediately if the cache is
    /// now over it.
    pub fn set_budget(&mut self, budget_bytes: usize) {
        self.budget = budget_bytes;
        self.evict_to_budget();
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Approximate resident bytes across all entries.
    pub fn bytes(&self) -> usize {
        self.entries.values().map(|e| e.part.approx_bytes()).sum()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: &AttrSet) -> bool {
        self.entries.contains_key(key)
    }

    /// Lifetime hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every entry (used when the relation state the entries were
    /// patched against is rolled back or rebuilt).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Takes the immutable per-level view handed to validation workers.
    pub fn snapshot(&self) -> PliCacheSnapshot {
        PliCacheSnapshot {
            entries: self
                .entries
                .iter()
                .map(|(k, e)| (*k, Arc::clone(&e.part)))
                .collect(),
        }
    }

    /// Merges the per-job effects of one level back, **in job order**:
    /// hits refresh LRU ticks, misses count, and built partitions are
    /// inserted first-offer-wins. Ends with an eviction pass down to the
    /// budget. Deterministic for a given job list regardless of how many
    /// workers produced the effects.
    pub fn merge(&mut self, effects: &[CacheEffects]) {
        for e in effects {
            if let Some(key) = e.hit {
                self.stats.hits += 1;
                self.touch(&key);
            }
            if e.miss {
                self.stats.misses += 1;
            }
            if let Some((key, part)) = &e.built {
                if self.entries.contains_key(key) {
                    // An earlier job (in job order) already offered this
                    // key; treat the duplicate as a touch.
                    self.touch(key);
                } else {
                    self.tick += 1;
                    self.entries.insert(
                        *key,
                        CacheEntry {
                            part: Arc::clone(part),
                            last_used: self.tick,
                        },
                    );
                }
            }
        }
        self.evict_to_budget();
    }

    /// Patches every entry for one applied batch: `deleted` records
    /// leave their clusters, `inserted` records (still live in `rel`)
    /// join the cluster of their signature. An entry whose patch cannot
    /// resolve a record against the relation is invalidated. Ends with
    /// an eviction pass (inserts grow entries).
    pub fn apply_batch(
        &mut self,
        rel: &DynamicRelation,
        deleted: &[RecordId],
        inserted: &[RecordId],
    ) {
        let mut dead: Vec<AttrSet> = Vec::new();
        for (key, entry) in self.entries.iter_mut() {
            let part = Arc::make_mut(&mut entry.part);
            for &rid in deleted {
                part.remove_member(rid);
            }
            let mut patched = true;
            for &rid in inserted {
                match rel.packed_sig(rid, part.a, part.b) {
                    Some(sig) => part.add_member(sig, rid),
                    None => {
                        // The "inserted" record is not live: the entry
                        // and the relation have diverged — invalidate.
                        patched = false;
                        break;
                    }
                }
            }
            if !patched {
                dead.push(*key);
            }
        }
        dead.sort_unstable();
        for key in dead {
            self.entries.remove(&key);
            self.stats.evictions += 1;
        }
        self.evict_to_budget();
    }

    fn touch(&mut self, key: &AttrSet) {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(key) {
            e.last_used = self.tick;
        }
    }

    /// Evicts least-recently-used entries (ties broken by key order)
    /// until the resident size fits the budget.
    fn evict_to_budget(&mut self) {
        let mut total = self.bytes();
        while total > self.budget && !self.entries.is_empty() {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.last_used, **k))
                .map(|(k, _)| *k)
                .expect("non-empty cache has a minimum");
            if let Some(entry) = self.entries.remove(&victim) {
                total -= entry.part.approx_bytes().min(total);
                self.stats.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfd_common::Schema;

    fn rel(rows: &[&[&str]]) -> DynamicRelation {
        let arity = rows.first().map_or(2, |r| r.len());
        let schema = Schema::anonymous("t", arity);
        let rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(|s| s.to_string()).collect())
            .collect();
        DynamicRelation::from_rows(schema, &rows).unwrap()
    }

    fn key(a: usize, b: usize) -> AttrSet {
        [a, b].into_iter().collect()
    }

    fn paper() -> DynamicRelation {
        rel(&[
            &["Max", "Jones", "14482", "Potsdam"],
            &["Max", "Miller", "14482", "Potsdam"],
            &["Max", "Jones", "10115", "Berlin"],
            &["Anna", "Scott", "13591", "Berlin"],
        ])
    }

    #[test]
    fn build_groups_by_both_attributes() {
        let r = paper();
        // {firstname, zip}: records 0 and 1 share (Max, 14482).
        let p = CachedPartition::build(&r, 0, 2);
        assert_eq!(p.key(), key(0, 2));
        assert_eq!(p.cluster_count(), 1);
        assert_eq!(p.clusters().next().unwrap(), &[RecordId(0), RecordId(1)]);
        assert_eq!(p.singleton_count(), 2);
        assert_eq!(p.member_count(), 4);
        assert_eq!(p.max_cluster_len(), 2);
    }

    #[test]
    fn patch_insert_promotes_and_extends() {
        let mut r = paper();
        let p = CachedPartition::build(&r, 0, 3);
        // {firstname, city}: cluster (Max, Potsdam) = {0,1}; singletons 2, 3.
        assert_eq!(p.cluster_count(), 1);

        let mut cache = PliCache::new(usize::MAX);
        cache.merge(&[CacheEffects {
            built: Some((key(0, 3), Arc::new(p))),
            ..CacheEffects::default()
        }]);

        // New (Anna, Berlin) record joins record 3's singleton.
        let rid = r.insert_row(&["Anna", "Gray", "13591", "Berlin"]).unwrap();
        cache.apply_batch(&r, &[], &[rid]);
        let snap = cache.snapshot();
        let p = snap.get(&key(0, 3)).unwrap();
        assert_eq!(p.cluster_count(), 2);
        assert_eq!(p.singleton_count(), 1);
        assert!(p.clusters().any(|c| c == [RecordId(3), rid]));
    }

    #[test]
    fn patch_delete_demotes_clusters() {
        let mut r = paper();
        let p = CachedPartition::build(&r, 0, 3);
        let mut cache = PliCache::new(usize::MAX);
        cache.merge(&[CacheEffects {
            built: Some((key(0, 3), Arc::new(p))),
            ..CacheEffects::default()
        }]);
        r.delete_record(RecordId(0)).unwrap();
        cache.apply_batch(&r, &[RecordId(0)], &[]);
        let snap = cache.snapshot();
        let p = snap.get(&key(0, 3)).unwrap();
        assert_eq!(p.cluster_count(), 0, "cluster {{0,1}} demoted");
        assert_eq!(p.singleton_count(), 3);
        assert_eq!(p.member_count(), 3);
        assert_eq!(p.max_cluster_len(), 1);
    }

    #[test]
    fn patched_partition_matches_fresh_build() {
        let mut r = paper();
        let mut cache = PliCache::new(usize::MAX);
        cache.merge(&[CacheEffects {
            built: Some((key(1, 3), Arc::new(CachedPartition::build(&r, 1, 3)))),
            ..CacheEffects::default()
        }]);
        // A batch that deletes, updates (delete+insert), and inserts.
        r.delete_record(RecordId(2)).unwrap();
        let new1 = r.insert_row(&["Eve", "Jones", "14482", "Berlin"]).unwrap();
        let new2 = r.insert_row(&["Ana", "Jones", "10115", "Berlin"]).unwrap();
        cache.apply_batch(&r, &[RecordId(2)], &[new1, new2]);

        let fresh = CachedPartition::build(&r, 1, 3);
        let snap = cache.snapshot();
        let patched = snap.get(&key(1, 3)).unwrap();
        let mut a: Vec<&[RecordId]> = patched.clusters().collect();
        let mut b: Vec<&[RecordId]> = fresh.clusters().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "same clusters regardless of patch vs rebuild");
        assert_eq!(patched.singleton_count(), fresh.singleton_count());
        assert_eq!(patched.max_cluster_len(), fresh.max_cluster_len());
    }

    #[test]
    fn lru_eviction_is_deterministic_and_budgeted() {
        let r = paper();
        let parts: Vec<(AttrSet, Arc<CachedPartition>)> = [(0, 1), (0, 2), (1, 2)]
            .iter()
            .map(|&(a, b)| (key(a, b), Arc::new(CachedPartition::build(&r, a, b))))
            .collect();
        let one_entry = parts[0].1.approx_bytes();

        let mut cache = PliCache::new(one_entry * 2 + 64);
        for (k, p) in &parts {
            cache.merge(&[CacheEffects {
                built: Some((*k, Arc::clone(p))),
                ..CacheEffects::default()
            }]);
        }
        // Budget fits two entries: the least recently inserted ({0,1})
        // was evicted.
        assert_eq!(cache.len(), 2);
        assert!(!cache.contains(&key(0, 1)));
        assert!(cache.contains(&key(0, 2)) && cache.contains(&key(1, 2)));
        assert_eq!(cache.stats().evictions, 1);

        // A hit refreshes the tick: {0,2} survives the next insertion.
        cache.merge(&[CacheEffects {
            hit: Some(key(0, 2)),
            ..CacheEffects::default()
        }]);
        cache.merge(&[CacheEffects {
            built: Some((key(0, 1), Arc::clone(&parts[0].1))),
            ..CacheEffects::default()
        }]);
        assert!(cache.contains(&key(0, 2)), "recently hit entry survives");
        assert!(!cache.contains(&key(1, 2)), "LRU entry evicted");
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn merge_is_first_offer_wins_and_counts() {
        let r = paper();
        let p1 = Arc::new(CachedPartition::build(&r, 0, 1));
        let p2 = Arc::new(CachedPartition::build(&r, 0, 1));
        let mut cache = PliCache::new(usize::MAX);
        cache.merge(&[
            CacheEffects {
                miss: true,
                built: Some((key(0, 1), Arc::clone(&p1))),
                ..CacheEffects::default()
            },
            CacheEffects {
                miss: true,
                built: Some((key(0, 1), Arc::clone(&p2))),
                ..CacheEffects::default()
            },
        ]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().misses, 2);
        let snap = cache.snapshot();
        assert!(Arc::ptr_eq(snap.get(&key(0, 1)).unwrap(), &p1));
    }

    #[test]
    fn zero_budget_keeps_nothing() {
        let r = paper();
        let mut cache = PliCache::new(0);
        cache.merge(&[CacheEffects {
            built: Some((key(0, 1), Arc::new(CachedPartition::build(&r, 0, 1)))),
            ..CacheEffects::default()
        }]);
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn snapshot_is_isolated_from_later_patches() {
        let mut r = paper();
        let mut cache = PliCache::new(usize::MAX);
        cache.merge(&[CacheEffects {
            built: Some((key(0, 3), Arc::new(CachedPartition::build(&r, 0, 3)))),
            ..CacheEffects::default()
        }]);
        let snap = cache.snapshot();
        let before = snap.get(&key(0, 3)).unwrap().member_count();
        let rid = r.insert_row(&["New", "Row", "00000", "Nowhere"]).unwrap();
        cache.apply_batch(&r, &[], &[rid]);
        // The old snapshot still sees the pre-patch partition (the patch
        // copied on write); a fresh snapshot sees the new member.
        assert_eq!(snap.get(&key(0, 3)).unwrap().member_count(), before);
        let fresh = cache.snapshot();
        assert_eq!(fresh.get(&key(0, 3)).unwrap().member_count(), before + 1);
    }

    #[test]
    fn stats_delta() {
        let a = CacheStats {
            hits: 10,
            misses: 4,
            evictions: 2,
        };
        let b = CacheStats {
            hits: 7,
            misses: 4,
            evictions: 1,
        };
        assert_eq!(
            a.delta_since(&b),
            CacheStats {
                hits: 3,
                misses: 0,
                evictions: 1,
            }
        );
    }
}
