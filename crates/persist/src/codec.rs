//! Hand-rolled binary encoding shared by the WAL and snapshot formats.
//!
//! All integers are little-endian and fixed-width; strings and byte
//! blobs are `u32` length-prefixed. There is no serde in this workspace
//! (offline build), and none is needed: the encoded types are few and
//! stable, and a hand-rolled decoder lets every length be validated
//! against the remaining input before anything is allocated — the
//! property that makes torn-tail and bit-flip recovery safe.

use dynfd_common::RecordId;
use dynfd_relation::{Batch, ChangeOp};

/// Decode failure: a human-readable description of what did not parse.
/// Callers wrap it into the appropriate typed error
/// (`DynFdError::WalCorrupt` / `DynFdError::SnapshotCorrupt`).
pub type DecodeError = String;

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked cursor over an encoded byte slice. Every accessor
/// fails with a [`DecodeError`] instead of panicking when the input is
/// shorter than the encoding claims — corrupt input must surface as a
/// typed error, never as an index-out-of-bounds.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(format!(
                "need {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid UTF-8 string: {e}"))
    }

    /// Reads a `u32` element count and sanity-checks it against the
    /// bytes actually remaining (each element needs at least
    /// `min_elem_bytes`), so a corrupt count cannot trigger a huge
    /// allocation before the short read would be noticed.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(format!(
                "element count {n} impossible with {} bytes remaining",
                self.remaining()
            ));
        }
        Ok(n)
    }
}

/// Op tags of the batch encoding. Stable on-disk values — never renumber.
const TAG_INSERT: u8 = 0;
const TAG_DELETE: u8 = 1;
const TAG_UPDATE: u8 = 2;

fn put_row(out: &mut Vec<u8>, row: &[String]) {
    put_u32(out, row.len() as u32);
    for value in row {
        put_str(out, value);
    }
}

fn read_row(r: &mut Reader<'_>) -> Result<Vec<String>, DecodeError> {
    let n = r.count(4)?; // each value carries at least its length prefix
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(r.str()?);
    }
    Ok(row)
}

/// Serializes a [`Batch`] (op count, then tagged ops in order).
pub fn encode_batch(out: &mut Vec<u8>, batch: &Batch) {
    put_u32(out, batch.len() as u32);
    for op in batch.ops() {
        match op {
            ChangeOp::Insert(row) => {
                out.push(TAG_INSERT);
                put_row(out, row);
            }
            ChangeOp::Delete(rid) => {
                out.push(TAG_DELETE);
                put_u64(out, rid.0);
            }
            ChangeOp::Update(rid, row) => {
                out.push(TAG_UPDATE);
                put_u64(out, rid.0);
                put_row(out, row);
            }
        }
    }
}

/// Parses a [`Batch`] written by [`encode_batch`].
pub fn decode_batch(r: &mut Reader<'_>) -> Result<Batch, DecodeError> {
    let n = r.count(1)?;
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let tag = r.u8()?;
        let op = match tag {
            TAG_INSERT => ChangeOp::Insert(read_row(r)?),
            TAG_DELETE => ChangeOp::Delete(RecordId(r.u64()?)),
            TAG_UPDATE => {
                let rid = RecordId(r.u64()?);
                ChangeOp::Update(rid, read_row(r)?)
            }
            other => return Err(format!("op {i}: unknown tag {other}")),
        };
        ops.push(op);
    }
    Ok(Batch::from_ops(ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> Batch {
        let mut b = Batch::new();
        b.insert(vec!["x", "", "naïve ünïcode"])
            .delete(RecordId(42))
            .update(RecordId(7), vec!["a", "b", "c"]);
        b
    }

    #[test]
    fn batch_roundtrip() {
        let batch = sample_batch();
        let mut bytes = Vec::new();
        encode_batch(&mut bytes, &batch);
        let mut r = Reader::new(&bytes);
        let back = decode_batch(&mut r).unwrap();
        assert_eq!(back, batch);
        assert!(r.is_exhausted());
    }

    #[test]
    fn empty_batch_roundtrip() {
        let mut bytes = Vec::new();
        encode_batch(&mut bytes, &Batch::new());
        let back = decode_batch(&mut Reader::new(&bytes)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        let mut bytes = Vec::new();
        encode_batch(&mut bytes, &sample_batch());
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                decode_batch(&mut r).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 1);
        bytes.push(9); // no such tag
        assert!(decode_batch(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn absurd_count_rejected_without_allocation() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, u32::MAX); // claims 4 billion ops in 0 bytes
        let err = decode_batch(&mut Reader::new(&bytes)).unwrap_err();
        assert!(err.contains("impossible"), "{err}");
    }

    #[test]
    fn reader_reports_offsets() {
        let mut r = Reader::new(&[1, 2, 3]);
        r.bytes(2).unwrap();
        let err = r.bytes(5).unwrap_err();
        assert!(err.contains("offset 2"), "{err}");
    }
}
