//! Queueing primitives of the worker pool: a pausable multi-producer
//! shard queue and a counting admission gate.
//!
//! The pool's backpressure story is two-level. Admission happens at the
//! *tenant*: each tenant owns a [`Gate`] bounding its in-flight batches
//! (acquired at submit, released when the worker finishes), so one
//! tenant flooding the server can never occupy more than its configured
//! share of queue space. The [`ShardQueue`] underneath is a plain FIFO
//! per worker shard — its occupancy is bounded by the sum of the tenant
//! capacities mapped to that shard, so it needs no capacity of its own.
//! FIFO order per shard is what makes the whole layer deterministic:
//! a tenant's batches are only ever enqueued from its submitter in
//! program order and only ever popped by its single owning shard, so
//! per-tenant application order is submission order at *any* worker
//! count.
//!
//! Everything is std-only (`Mutex` + `Condvar`); lock poisoning is
//! tolerated by design — a panicking worker must not wedge the queue
//! for every other tenant, so poisoned locks are re-entered with the
//! data as-is (the queue's state is a plain `VecDeque`, valid at every
//! instant the lock is held).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Re-enters a possibly poisoned lock: the protected state is structurally
/// valid at every point a panic could have interrupted it (see module docs).
fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

struct ShardInner<T> {
    items: VecDeque<T>,
    closed: bool,
    paused: bool,
}

/// A pausable, closable FIFO feeding one worker shard.
pub(crate) struct ShardQueue<T> {
    inner: Mutex<ShardInner<T>>,
    ready: Condvar,
}

impl<T> ShardQueue<T> {
    /// An open queue; `paused` workers block on [`ShardQueue::pop`] even
    /// when items are ready (the deterministic-burst test hook).
    pub fn new(paused: bool) -> Self {
        ShardQueue {
            inner: Mutex::new(ShardInner {
                items: VecDeque::new(),
                closed: false,
                paused,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues `item`; fails (returning it) once the queue is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = recover(self.inner.lock());
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item. Returns `None` only when the queue is
    /// closed *and* drained — closing never discards queued work.
    pub fn pop(&self) -> Option<T> {
        let mut inner = recover(self.inner.lock());
        loop {
            if !inner.paused || inner.closed {
                if let Some(item) = inner.items.pop_front() {
                    return Some(item);
                }
                if inner.closed {
                    return None;
                }
            }
            inner = recover(self.ready.wait(inner));
        }
    }

    /// Pauses or resumes delivery (queued items are retained either way).
    pub fn set_paused(&self, paused: bool) {
        recover(self.inner.lock()).paused = paused;
        self.ready.notify_all();
    }

    /// Whether delivery is currently paused.
    pub fn is_paused(&self) -> bool {
        recover(self.inner.lock()).paused
    }

    /// Closes the queue: no new pushes, pops drain the backlog (pausing
    /// is overridden so a close always drains) and then return `None`.
    pub fn close(&self) {
        recover(self.inner.lock()).closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued (diagnostics only — racy by nature).
    pub fn len(&self) -> usize {
        recover(self.inner.lock()).items.len()
    }
}

/// A counting admission gate: at most `capacity` acquisitions in flight.
/// The capacity is passed per call (it lives in the server config) so
/// the gate itself stays a dumb counter.
pub(crate) struct Gate {
    depth: Mutex<usize>,
    changed: Condvar,
}

impl Gate {
    pub fn new() -> Self {
        Gate {
            depth: Mutex::new(0),
            changed: Condvar::new(),
        }
    }

    /// Non-blocking admission: `Ok(new_depth)` on success, `Err(depth)`
    /// when the tenant is already at capacity (the load-shedding path).
    pub fn try_acquire(&self, capacity: usize) -> Result<usize, usize> {
        let mut depth = recover(self.depth.lock());
        if *depth >= capacity {
            return Err(*depth);
        }
        *depth += 1;
        Ok(*depth)
    }

    /// Blocking admission: waits until a slot frees up (the backpressure
    /// path). Returns the new depth.
    pub fn acquire_blocking(&self, capacity: usize) -> usize {
        let mut depth = recover(self.depth.lock());
        while *depth >= capacity {
            depth = recover(self.changed.wait(depth));
        }
        *depth += 1;
        *depth
    }

    /// Releases one slot (worker side, after the batch finished).
    pub fn release(&self) {
        let mut depth = recover(self.depth.lock());
        *depth = depth.saturating_sub(1);
        drop(depth);
        self.changed.notify_all();
    }

    /// Current in-flight count.
    pub fn depth(&self) -> usize {
        *recover(self.depth.lock())
    }

    /// Blocks until the gate is fully idle (depth 0) — the quiesce
    /// primitive the deterministic tests use between phases.
    pub fn wait_idle(&self) {
        let mut depth = recover(self.depth.lock());
        while *depth > 0 {
            depth = recover(self.changed.wait(depth));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_survives_pause_and_close() {
        let q: ShardQueue<u32> = ShardQueue::new(true);
        for i in 0..5 {
            q.push(i).expect("open queue accepts");
        }
        assert_eq!(q.len(), 5);
        q.close();
        // Closed overrides paused: the backlog drains in order.
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.push(99).is_err(), "closed queue rejects pushes");
    }

    #[test]
    fn pop_blocks_until_push_across_threads() {
        let q: Arc<ShardQueue<u32>> = Arc::new(ShardQueue::new(false));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(7).expect("open");
        assert_eq!(consumer.join().expect("no panic"), Some(7));
    }

    #[test]
    fn gate_sheds_at_capacity_and_blocks_until_release() {
        let gate = Arc::new(Gate::new());
        assert_eq!(gate.try_acquire(2), Ok(1));
        assert_eq!(gate.try_acquire(2), Ok(2));
        assert_eq!(gate.try_acquire(2), Err(2), "at capacity: shed");
        let g2 = Arc::clone(&gate);
        let blocked = std::thread::spawn(move || g2.acquire_blocking(2));
        std::thread::sleep(std::time::Duration::from_millis(10));
        gate.release();
        assert_eq!(blocked.join().expect("no panic"), 2);
        gate.release();
        gate.release();
        assert_eq!(gate.depth(), 0);
        gate.wait_idle();
    }
}
