//! # dynfd-common
//!
//! Shared primitives for the DynFD reproduction:
//!
//! * [`AttrSet`] — a fixed-width, `Copy` bitset over attribute (column)
//!   indices. Every left-hand side of a functional dependency in the
//!   system is an `AttrSet`.
//! * [`Fd`] — a functional dependency `lhs -> rhs` with a single
//!   right-hand-side attribute, following the paper's Definition 1.1.
//! * [`Schema`] — column names and arity of a relation.
//! * [`RecordId`] — the monotonically increasing surrogate key DynFD
//!   assigns to records (Section 3.1 of the paper): row positions are not
//!   stable in a dynamic relation, so records are identified by ids that
//!   never get reused.
//! * [`DynError`] — the crate family's error type.
//!
//! The crate is dependency-light on purpose: everything above it
//! (relation substrate, lattice, static discovery, DynFD itself) shares
//! these vocabulary types.

#![warn(missing_docs)]

mod attrset;
mod error;
mod fd;
mod ids;
mod schema;

pub use attrset::{AttrSet, AttrSetIter, MAX_ATTRS};
pub use error::{DynError, Result};
pub use fd::{AttrId, Fd};
pub use ids::RecordId;
pub use schema::Schema;
