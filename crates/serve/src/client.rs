//! Client-side session helper: synchronous submit with
//! jittered-exponential-backoff retry.
//!
//! The engine's governance rejections (overload, quota, eviction
//! window) carry a machine-readable `retry_after_ms` hint that grows
//! with the tenant's consecutive-rejection streak. A compliant client
//! treats the hint as a *floor*: it sleeps `max(hint, base × 2^retry)`
//! plus bounded jitter, so a fleet of rejected clients neither hammers
//! the server (the hint floor) nor stampedes back in lockstep (the
//! jitter). Rejections without a hint — missed deadlines, unknown
//! tenants, engine rejections, shutdown — are the caller's problem and
//! are returned immediately.
//!
//! The jitter PRNG is a seeded splitmix64, so a fixed
//! [`RetryPolicy::seed`] makes the whole retry schedule reproducible —
//! the property the overload-governance proptests replay.

use crate::server::{ApplySummary, ServeEngine};
use crate::ServeError;
use dynfd_relation::Batch;
use std::sync::mpsc;
use std::time::Duration;

/// Backoff schedule for [`submit_with_retry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-retry backoff (doubles per consecutive rejection).
    pub base: Duration,
    /// Ceiling on a single computed backoff (the server hint may still
    /// exceed it — the hint always wins as a floor).
    pub cap: Duration,
    /// Total attempts, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(640),
            max_attempts: 8,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

/// What one [`submit_with_retry`] call did end to end.
#[derive(Debug)]
pub struct RetryReport {
    /// Attempts made (>= 1).
    pub attempts: u32,
    /// Total time slept between attempts.
    pub backoff_total: Duration,
    /// Retry-after hints observed, in order — the overload-governance
    /// proptests assert these are monotone under sustained pressure.
    pub hints_ms: Vec<u64>,
    /// The final outcome: the applied batch's summary, or the error
    /// that was not retryable (or exhausted the attempt budget).
    pub outcome: Result<ApplySummary, ServeError>,
}

impl RetryReport {
    /// Whether the batch was eventually applied.
    pub fn succeeded(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// splitmix64 step: a tiny, seedable, statistically fine generator for
/// jitter — no dependency, fully deterministic per [`RetryPolicy::seed`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Submits `batch` and blocks for the reply, retrying governance
/// rejections per `policy`. Each retry sleeps
/// `max(server hint, base × 2^retry, capped) + jitter` where the jitter
/// is uniform over half the computed backoff (decorrelates clients
/// that were rejected together). Non-governance errors and exhausted
/// attempts are returned in the report without further retries.
pub fn submit_with_retry(
    engine: &ServeEngine,
    tenant: &str,
    request_id: u64,
    batch: &Batch,
    deadline: Option<Duration>,
    policy: &RetryPolicy,
) -> RetryReport {
    let mut rng = policy.seed;
    let mut report = RetryReport {
        attempts: 0,
        backoff_total: Duration::ZERO,
        hints_ms: Vec::new(),
        outcome: Err(ServeError::ShuttingDown),
    };
    let attempts = policy.max_attempts.max(1);
    for retry in 0..attempts {
        report.attempts = retry + 1;
        let (tx, rx) = mpsc::channel();
        let submitted = engine.submit_with_deadline(
            tenant,
            request_id,
            batch.clone(),
            deadline,
            move |reply| {
                // The submitter may have given up; a dead receiver is
                // fine, the reply is simply dropped.
                let _ = tx.send(reply.outcome);
            },
        );
        let outcome = match submitted {
            // Admitted: the completion fires exactly once.
            Ok(()) => match rx.recv() {
                Ok(outcome) => outcome,
                Err(_) => Err(ServeError::ShuttingDown),
            },
            Err(rejected) => Err(rejected),
        };
        let hint = match &outcome {
            Err(e) => e.retry_after_ms(),
            Ok(_) => None,
        };
        let Some(hint_ms) = hint else {
            report.outcome = outcome;
            return report;
        };
        report.hints_ms.push(hint_ms);
        if retry + 1 == attempts {
            report.outcome = outcome;
            return report;
        }
        let exp = policy
            .base
            .saturating_mul(1u32 << retry.min(16))
            .min(policy.cap);
        let floor = Duration::from_millis(hint_ms).max(exp);
        let jitter_range = (floor / 2).as_millis().min(u64::MAX as u128) as u64;
        let jitter = if jitter_range == 0 {
            0
        } else {
            splitmix64(&mut rng) % jitter_range
        };
        let sleep = floor + Duration::from_millis(jitter);
        report.backoff_total += sleep;
        std::thread::sleep(sleep);
        report.outcome = outcome;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stream_is_deterministic_per_seed() {
        let mut a = 42u64;
        let mut b = 42u64;
        let first: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let second: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(first, second);
        let mut c = 43u64;
        let third: Vec<u64> = (0..8).map(|_| splitmix64(&mut c)).collect();
        assert_ne!(first, third);
    }

    #[test]
    fn default_policy_backoff_is_bounded() {
        let p = RetryPolicy::default();
        // base × 2^7 = 640ms hits the cap exactly; deeper retries must
        // not overflow or exceed it.
        let exp = p.base.saturating_mul(1u32 << 16).min(p.cap);
        assert_eq!(exp, p.cap);
    }
}
