//! PLI-based FD candidate validation (paper Sections 3.1 and 4.2).
//!
//! The validator implements the classic HyFD validation scheme on top of
//! the incremental substrate:
//!
//! * the PLI of one *pivot* LHS attribute indexes sets of tuples;
//! * within each pivot cluster, records are grouped by their remaining
//!   LHS value codes (a lazy PLI intersection);
//! * members of a group are checked against the RHS attribute codes —
//!   two group members with different RHS codes are a violation;
//! * all RHS candidates sharing the LHS are validated **simultaneously**
//!   in one pass;
//! * validation of an RHS **terminates early** at its first violation.
//!
//! On top of this, the dynamic setting adds *cluster pruning*
//! (Section 4.2): when validating a previously-valid FD after a batch of
//! inserts, every pair of old records still satisfies the FD, so only
//! pivot clusters containing at least one newly inserted record need to
//! be checked. Because surrogate ids increase monotonically and clusters
//! are sorted by record id, "contains a new record" is the O(1) test
//! `rid(cluster.last()) >= first id of the batch`.
//!
//! # Memory shape
//!
//! The scan works directly on the columnar arena: a cluster is a
//! contiguous `u32` slot slice, and checking an RHS streams
//! `column[slot]` — flat `u32` gathers instead of a boxed-slice
//! dereference per record. Grouping runs through open-addressed tables
//! keyed by packed `u64` signatures (no `HashMap`, no per-record
//! allocation, no SipHash), and every grouped cluster first takes an
//! EAIFD-style **constancy pre-pass**: each still-active RHS column is
//! streamed over the cluster and abandoned the moment a second distinct
//! value appears. A cluster whose active RHS columns are all constant
//! cannot contain a violation under *any* LHS refinement, so the group
//! table is skipped entirely — on mostly-valid covers (the steady state)
//! validation degenerates to sequential column scans.

use crate::dictionary::ValueId;
use crate::pli_cache::{CacheEffects, CachedPartition, PliCacheSnapshot};
use crate::relation::DynamicRelation;
use dynfd_common::{AttrId, AttrSet, Fd, RecordId};
use std::sync::Arc;

/// Knobs for a validation call.
#[derive(Clone, Copy, Debug, Default)]
pub struct ValidationOptions {
    /// Cluster-pruning watermark: if set, pivot clusters whose largest
    /// record id is below this are skipped. **Only sound when every
    /// record pair below the watermark is known to satisfy the candidate
    /// already** — i.e. when re-validating FDs that were valid before the
    /// current batch of inserts (Section 4.2).
    pub min_new_id: Option<RecordId>,
}

impl ValidationOptions {
    /// No pruning: validate against the entire relation.
    pub fn full() -> Self {
        ValidationOptions { min_new_id: None }
    }

    /// Cluster pruning against records inserted at or after `first_new`.
    pub fn delta(first_new: RecordId) -> Self {
        ValidationOptions {
            min_new_id: Some(first_new),
        }
    }
}

/// Per-RHS validation verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RhsOutcome {
    /// No violating pair found: `lhs -> rhs` holds.
    Valid,
    /// The two records disagree on the RHS while agreeing on the LHS.
    /// The pair doubles as the *surrogate violation* cached by DynFD's
    /// validation pruning (Section 5.2).
    Violated(RecordId, RecordId),
}

impl RhsOutcome {
    /// Whether the candidate was found valid.
    pub fn is_valid(&self) -> bool {
        matches!(self, RhsOutcome::Valid)
    }
}

/// Counters describing the work one validation call performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValidationStats {
    /// Pivot clusters actually grouped and checked.
    pub clusters_visited: usize,
    /// Pivot clusters skipped by cluster pruning.
    pub clusters_pruned: usize,
    /// Pivot clusters skipped because they were singletons.
    pub singletons_skipped: usize,
    /// Record-to-representative comparisons performed.
    pub comparisons: usize,
}

impl ValidationStats {
    /// Accumulates another call's counters into this one.
    pub fn absorb(&mut self, other: &ValidationStats) {
        self.clusters_visited += other.clusters_visited;
        self.clusters_pruned += other.clusters_pruned;
        self.singletons_skipped += other.singletons_skipped;
        self.comparisons += other.comparisons;
    }
}

/// Result of validating all FDs `lhs -> r` for `r ∈ rhs_set`.
#[derive(Clone, Debug)]
pub struct ValidationResult {
    /// The shared left-hand side.
    pub lhs: AttrSet,
    /// One verdict per requested RHS, ascending by attribute id.
    pub outcomes: Vec<(AttrId, RhsOutcome)>,
    /// Work counters.
    pub stats: ValidationStats,
}

impl ValidationResult {
    /// The verdict for a specific RHS.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` was not part of the validated set.
    pub fn outcome(&self, rhs: AttrId) -> RhsOutcome {
        self.outcomes
            .iter()
            .find(|(r, _)| *r == rhs)
            .map(|(_, o)| *o)
            .expect("rhs was not validated")
    }

    /// Whether every requested RHS turned out valid.
    pub fn all_valid(&self) -> bool {
        self.outcomes.iter().all(|(_, o)| o.is_valid())
    }

    /// Iterates the RHS attributes that were found violated, with their
    /// violating pairs.
    pub fn violations(&self) -> impl Iterator<Item = (AttrId, RecordId, RecordId)> + '_ {
        self.outcomes.iter().filter_map(|(r, o)| match o {
            RhsOutcome::Violated(a, b) => Some((*r, *a, *b)),
            RhsOutcome::Valid => None,
        })
    }
}

/// Sentinel representative in [`GroupTable`] marking an empty bucket.
const EMPTY_REP: u32 = u32::MAX;

/// Open-addressed group table: flat `(signature, representative-slot)`
/// buckets with linear probing at ≤50% load. Replaces the former
/// `HashMap` group maps — no SipHash, no per-record heap key, one
/// contiguous allocation reused across clusters and calls.
///
/// Two keying modes share the table:
/// * **packed** — the signature *is* the remaining-LHS codes packed into
///   one `u64`, so signature equality is group equality;
/// * **wide** — the signature is a hash of ≥3 codes, so a signature
///   match additionally verifies the codes through the columns.
#[derive(Clone, Debug, Default)]
struct GroupTable {
    buckets: Vec<(u64, u32)>,
    mask: usize,
}

impl GroupTable {
    /// Mixes a key into a bucket index.
    #[inline]
    fn index_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    /// Clears and resizes for a cluster of `members` records.
    fn reset(&mut self, members: usize) {
        let cap = (members * 2).next_power_of_two().max(8);
        self.buckets.clear();
        self.buckets.resize(cap, (0, EMPTY_REP));
        self.mask = cap - 1;
    }

    /// Looks up `key`'s group, inserting `slot` as representative when
    /// the group is new. Returns the existing representative otherwise.
    /// `same(rep_slot)` confirms a candidate bucket really is this
    /// record's group (always true in packed mode, a code check in wide
    /// mode).
    #[inline]
    fn probe(&mut self, key: u64, slot: u32, mut same: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut idx = self.index_of(key);
        loop {
            let bucket = &mut self.buckets[idx];
            if bucket.1 == EMPTY_REP {
                *bucket = (key, slot);
                return None;
            }
            if bucket.0 == key && same(bucket.1) {
                return Some(bucket.1);
            }
            idx = (idx + 1) & self.mask;
        }
    }
}

/// Reusable working memory for [`validate_with`].
///
/// A validation call needs a group table (the lazy PLI intersection), a
/// slot-translation buffer for cached partitions, and an
/// attribute→outcome-slot index. Allocating these per call dominates the
/// cost of validating the many small candidates of a lattice level;
/// threading one scratch through a whole level (or one per worker
/// thread) makes the steady state allocation-free.
#[derive(Clone, Debug, Default)]
pub struct ValidatorScratch {
    /// Open-addressed group table shared by the packed and wide paths.
    table: GroupTable,
    /// Slot buffer: cached partitions store record ids; their clusters
    /// are translated to arena slots here before the columnar scan.
    slot_buf: Vec<u32>,
    /// Per-cluster list of active RHS attributes that are *not* constant
    /// over the cluster (the survivors of the constancy pre-pass).
    live_rhs: Vec<AttrId>,
    /// `slot_of_attr[r]` is the index of RHS attribute `r` in the
    /// current call's `outcomes`, replacing linear scans per violation.
    slot_of_attr: Vec<u32>,
}

impl ValidatorScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        ValidatorScratch::default()
    }
}

/// Packs the remaining-LHS value codes of the record at `slot` into one
/// `u64` key (callable only when at most two attributes remain).
#[inline]
fn packed_key(rest: &[AttrId], columns: &[Vec<ValueId>], slot: u32) -> u64 {
    debug_assert!((1..=2).contains(&rest.len()));
    let hi = columns[rest[0]][slot as usize] as u64;
    let lo = if rest.len() == 2 {
        columns[rest[1]][slot as usize] as u64
    } else {
        0
    };
    hi << 32 | lo
}

/// FNV-1a over the remaining-LHS codes of the record at `slot` (wide
/// path: ≥3 remaining attributes, code vector does not fit a `u64`).
#[inline]
fn wide_key(rest: &[AttrId], columns: &[Vec<ValueId>], slot: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &a in rest {
        h = (h ^ columns[a][slot as usize] as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Validates the FD candidates `lhs -> r` for every `r ∈ rhs_set`
/// simultaneously against `rel`.
///
/// Convenience wrapper over [`validate_with`] that allocates a fresh
/// [`ValidatorScratch`]; hot paths validating many candidates should
/// reuse one scratch instead.
///
/// # Panics
///
/// Panics if `rhs_set` intersects `lhs` (trivial candidates) or is empty.
pub fn validate(
    rel: &DynamicRelation,
    lhs: AttrSet,
    rhs_set: AttrSet,
    opts: &ValidationOptions,
) -> ValidationResult {
    validate_with(rel, lhs, rhs_set, opts, &mut ValidatorScratch::new())
}

/// [`validate`] with caller-provided working memory.
///
/// Behaviour and outputs are identical to [`validate`]; only the
/// allocation profile differs.
///
/// # Panics
///
/// Panics if `rhs_set` intersects `lhs` (trivial candidates) or is empty.
pub fn validate_with(
    rel: &DynamicRelation,
    lhs: AttrSet,
    rhs_set: AttrSet,
    opts: &ValidationOptions,
    scratch: &mut ValidatorScratch,
) -> ValidationResult {
    assert!(!rhs_set.is_empty(), "validate called with no RHS");
    assert!(lhs.is_disjoint(&rhs_set), "trivial candidate: rhs ∈ lhs");

    if lhs.is_empty() {
        return validate_empty_lhs(rel, rhs_set);
    }

    let mut stats = ValidationStats::default();
    let mut outcomes: Vec<(AttrId, RhsOutcome)> =
        rhs_set.iter().map(|r| (r, RhsOutcome::Valid)).collect();
    let mut active = rhs_set;
    prepare_slots(scratch, rel.arity(), &outcomes);

    // Pivot: the LHS attribute whose PLI has the smallest maximal
    // cluster — the most refined single-attribute partition, giving the
    // smallest groups to intersect. Ties break towards the smaller
    // attribute id for determinism.
    let pivot = lhs
        .iter()
        .min_by_key(|&a| (rel.pli(a).max_cluster_len(), a))
        .expect("non-empty lhs");
    let rest: Vec<AttrId> = lhs.iter().filter(|&a| a != pivot).collect();
    let rhs_attrs: Vec<AttrId> = rhs_set.to_vec();
    let slot_rids = rel.slot_rids();

    for (_, cluster) in rel.pli(pivot).iter() {
        if cluster.len() < 2 {
            stats.singletons_skipped += 1;
            continue;
        }
        if let Some(min_new) = opts.min_new_id {
            // Rid-sorted cluster: the last slot holds the newest record.
            let last = *cluster.last().expect("non-empty cluster");
            if slot_rids[last as usize] < min_new {
                stats.clusters_pruned += 1;
                continue;
            }
        }
        stats.clusters_visited += 1;
        if scan_one_cluster(
            rel,
            cluster,
            &rest,
            &rhs_attrs,
            scratch,
            &mut outcomes,
            &mut active,
            &mut stats,
        ) {
            break;
        }
    }

    ValidationResult {
        lhs,
        outcomes,
        stats,
    }
}

/// Validates `lhs -> r` for every `r ∈ rhs_set`, pivoting on the most
/// refined *available* partition: the best cached intersection from
/// `cache` covering a 2-subset of the LHS, or the best single-attribute
/// PLI when no cached entry beats it (paper-lineage heuristic; see the
/// [`crate::pli_cache`] module docs).
///
/// Returns the validation result plus the [`CacheEffects`] the caller
/// must merge back into the owning [`crate::PliCache`] at the level
/// barrier:
///
/// * probing the snapshot and pivoting on a cached entry records a
///   *hit*;
/// * probing with no cached subset records a *miss* — and, when the
///   validation is unpruned, the intersection the validator builds for
///   the LHS's two most refined attributes is handed back for caching.
///   Cluster-pruned calls ([`ValidationOptions::delta`]) never build:
///   they touch only clusters containing new records, so paying a full
///   O(n) build there would invert the optimization.
///
/// Verdicts are identical to [`validate_with`] per RHS; only the
/// violating *witness pairs* (and the work counters) may differ, because
/// a different pivot scans clusters in a different order and early
/// termination stops at the first violation it meets.
///
/// # Panics
///
/// Panics if `rhs_set` intersects `lhs` (trivial candidates) or is empty.
pub fn validate_cached(
    rel: &DynamicRelation,
    lhs: AttrSet,
    rhs_set: AttrSet,
    opts: &ValidationOptions,
    scratch: &mut ValidatorScratch,
    cache: &PliCacheSnapshot,
) -> (ValidationResult, CacheEffects) {
    let mut effects = CacheEffects::default();
    if lhs.len() < 2 {
        // Single-attribute (or empty) LHS: the PLI itself is the
        // partition; the cache stores only 2-attribute intersections.
        return (validate_with(rel, lhs, rhs_set, opts, scratch), effects);
    }
    assert!(!rhs_set.is_empty(), "validate called with no RHS");
    assert!(lhs.is_disjoint(&rhs_set), "trivial candidate: rhs ∈ lhs");

    match probe_snapshot(rel, lhs, cache) {
        SnapshotProbe::NoPair => unreachable!("lhs.len() >= 2 checked above"),
        SnapshotProbe::Hit(key, part) => {
            effects.hit = Some(key);
            let result = validate_on_partition(rel, lhs, rhs_set, key, part, opts, scratch);
            (result, effects)
        }
        // A cached subset exists but some single-attribute PLI is more
        // refined: the plain pivot heuristic wins; neither hit nor miss.
        SnapshotProbe::Resident => (validate_with(rel, lhs, rhs_set, opts, scratch), effects),
        SnapshotProbe::Absent => {
            effects.miss = true;
            if opts.min_new_id.is_some() {
                return (validate_with(rel, lhs, rhs_set, opts, scratch), effects);
            }
            // Build the intersection of the LHS's two most refined
            // attributes, validate on it directly (the build *is* the
            // grouping work), and offer it to the cache.
            let mut pair = lhs.to_vec();
            pair.sort_unstable_by_key(|&a| (rel.pli(a).max_cluster_len(), a));
            let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            let part = Arc::new(CachedPartition::build(rel, a, b));
            let key = part.key();
            let result = validate_on_partition(rel, lhs, rhs_set, key, &part, opts, scratch);
            effects.built = Some((key, part));
            (result, effects)
        }
    }
}

/// What probing the snapshot for a usable 2-subset partition found.
/// Shared by [`validate_cached`] and [`probe_cache_effects`] so the two
/// can never disagree about a job's cache interaction.
enum SnapshotProbe<'a> {
    /// `lhs.len() < 2`: the cache stores only 2-attribute intersections.
    NoPair,
    /// The most refined resident 2-subset beats every single-attribute
    /// PLI of the LHS — the validator pivots on it (a cache *hit*).
    Hit(AttrSet, &'a Arc<CachedPartition>),
    /// Some 2-subset is resident but a single-attribute PLI is more
    /// refined: the plain pivot wins; neither hit nor miss.
    Resident,
    /// No 2-subset of the LHS is resident (a *miss*).
    Absent,
}

/// Probes every 2-subset of `lhs`, keeping the most refined cached
/// partition (smallest maximal cluster, key order breaking ties), then
/// compares it against the best single-attribute PLI.
fn probe_snapshot<'a>(
    rel: &DynamicRelation,
    lhs: AttrSet,
    cache: &'a PliCacheSnapshot,
) -> SnapshotProbe<'a> {
    if lhs.len() < 2 {
        return SnapshotProbe::NoPair;
    }
    let attrs = lhs.to_vec();
    let mut best: Option<(AttrSet, &Arc<CachedPartition>)> = None;
    for (i, &a) in attrs.iter().enumerate() {
        for &b in &attrs[i + 1..] {
            let key = AttrSet::from_iter([a, b]);
            if let Some(part) = cache.get(&key) {
                let better = match best {
                    None => true,
                    Some((bk, bp)) => (part.max_cluster_len(), key) < (bp.max_cluster_len(), bk),
                };
                if better {
                    best = Some((key, part));
                }
            }
        }
    }
    let best_single = attrs
        .iter()
        .map(|&a| rel.pli(a).max_cluster_len())
        .min()
        .expect("non-empty lhs");
    match best {
        Some((key, part)) if part.max_cluster_len() <= best_single => SnapshotProbe::Hit(key, part),
        Some(_) => SnapshotProbe::Resident,
        None => SnapshotProbe::Absent,
    }
}

/// Reconstructs the exact [`CacheEffects`] that [`validate_cached`] would
/// record for this job *without validating* — the sampling-guided
/// scheduler uses this for jobs it proves redundant, so the merged cache
/// state stays bit-identical to the unordered run.
///
/// Returns `None` when the real call would *build* a partition (an
/// unpruned miss): such a job must actually run, because skipping it
/// would change what gets offered to the cache.
pub fn probe_cache_effects(
    rel: &DynamicRelation,
    lhs: AttrSet,
    opts: &ValidationOptions,
    cache: &PliCacheSnapshot,
) -> Option<CacheEffects> {
    let mut effects = CacheEffects::default();
    match probe_snapshot(rel, lhs, cache) {
        SnapshotProbe::NoPair | SnapshotProbe::Resident => Some(effects),
        SnapshotProbe::Hit(key, _) => {
            effects.hit = Some(key);
            Some(effects)
        }
        SnapshotProbe::Absent => {
            effects.miss = true;
            if opts.min_new_id.is_some() {
                Some(effects)
            } else {
                None
            }
        }
    }
}

/// Shared core of [`validate_cached`]'s hit/build paths: scan the
/// cached partition's clusters, refining by the LHS attributes outside
/// the cached key. Cached clusters store record ids (they must survive
/// slot reuse between patches); each is translated to arena slots before
/// the columnar scan.
fn validate_on_partition(
    rel: &DynamicRelation,
    lhs: AttrSet,
    rhs_set: AttrSet,
    key: AttrSet,
    part: &CachedPartition,
    opts: &ValidationOptions,
    scratch: &mut ValidatorScratch,
) -> ValidationResult {
    let mut stats = ValidationStats::default();
    let mut outcomes: Vec<(AttrId, RhsOutcome)> =
        rhs_set.iter().map(|r| (r, RhsOutcome::Valid)).collect();
    let mut active = rhs_set;
    prepare_slots(scratch, rel.arity(), &outcomes);

    // Singletons were stripped at build/patch time; account for them
    // without iterating (each is one skipped one-record cluster).
    stats.singletons_skipped += part.singleton_count();
    let rest: Vec<AttrId> = lhs.difference(&key).to_vec();
    let rhs_attrs: Vec<AttrId> = rhs_set.to_vec();

    let mut slot_buf = std::mem::take(&mut scratch.slot_buf);
    for cluster in part.clusters() {
        if cluster.len() < 2 {
            stats.singletons_skipped += 1;
            continue;
        }
        if let Some(min_new) = opts.min_new_id {
            if *cluster.last().expect("non-empty cluster") < min_new {
                stats.clusters_pruned += 1;
                continue;
            }
        }
        stats.clusters_visited += 1;
        slot_buf.clear();
        slot_buf.extend(cluster.iter().map(|&rid| {
            rel.slot_of(rid)
                .expect("cached partition references live record")
        }));
        if scan_one_cluster(
            rel,
            &slot_buf,
            &rest,
            &rhs_attrs,
            scratch,
            &mut outcomes,
            &mut active,
            &mut stats,
        ) {
            break;
        }
    }
    scratch.slot_buf = slot_buf;

    ValidationResult {
        lhs,
        outcomes,
        stats,
    }
}

/// Sizes and fills `scratch.slot_of_attr` so that violations resolve
/// their outcome slot in O(1) (`outcomes` is ascending by attribute id).
fn prepare_slots(scratch: &mut ValidatorScratch, arity: usize, outcomes: &[(AttrId, RhsOutcome)]) {
    if scratch.slot_of_attr.len() < arity {
        scratch.slot_of_attr.resize(arity, u32::MAX);
    }
    for (i, &(r, _)) in outcomes.iter().enumerate() {
        scratch.slot_of_attr[r] = i as u32;
    }
}

/// The validation inner loop for one pivot cluster (a rid-sorted slice
/// of arena slots): group the cluster by the `rest` value codes — the
/// lazy PLI intersection — and compare group members against their
/// representative on every still-active RHS. Returns `true` when every
/// RHS has been resolved, letting the caller stop scanning entirely.
///
/// Witness pairs are deterministic and layout-independent: the
/// representative of a group is its first member in cluster order, and
/// the reported violator of an RHS is the first member that disagrees
/// with its representative — both invariant under the open-addressed
/// table and the constancy pre-pass (a constant RHS column can produce
/// no violation, so skipping it never changes which pair is found).
#[allow(clippy::too_many_arguments)]
fn scan_one_cluster(
    rel: &DynamicRelation,
    cluster: &[u32],
    rest: &[AttrId],
    rhs_attrs: &[AttrId],
    scratch: &mut ValidatorScratch,
    outcomes: &mut [(AttrId, RhsOutcome)],
    active: &mut AttrSet,
    stats: &mut ValidationStats,
) -> bool {
    let columns = rel.columns();
    let slot_rids = rel.slot_rids();
    let ValidatorScratch {
        table,
        live_rhs,
        slot_of_attr,
        ..
    } = scratch;

    if rest.is_empty() {
        // Single-attribute LHS — the bulk of a typical positive cover:
        // every cluster member is one group, so each active RHS is a
        // straight column stream over the cluster, abandoned at the first
        // disagreement with the representative (EAIFD early exit).
        let rep_slot = cluster[0];
        for &r in rhs_attrs {
            if !active.contains(r) {
                continue;
            }
            let col: &[ValueId] = &columns[r];
            let rep_code = col[rep_slot as usize];
            for &slot in &cluster[1..] {
                stats.comparisons += 1;
                if col[slot as usize] != rep_code {
                    active.remove(r);
                    outcomes[slot_of_attr[r] as usize].1 = RhsOutcome::Violated(
                        slot_rids[rep_slot as usize],
                        slot_rids[slot as usize],
                    );
                    break;
                }
            }
            if active.is_empty() {
                return true;
            }
        }
        return false;
    }

    // Constancy pre-pass: an RHS whose column is constant over the whole
    // cluster cannot be violated inside it, whatever the grouping. Each
    // scan is a contiguous gather abandoned at the first second value.
    live_rhs.clear();
    for &r in rhs_attrs {
        if !active.contains(r) {
            continue;
        }
        let col: &[ValueId] = &columns[r];
        let first = col[cluster[0] as usize];
        if cluster[1..].iter().any(|&s| col[s as usize] != first) {
            live_rhs.push(r);
        }
    }
    if live_rhs.is_empty() {
        return false;
    }

    table.reset(cluster.len());
    // Compares the record at `slot` against its group representative on
    // every surviving RHS; returns true when all RHS are resolved.
    macro_rules! compare {
        ($rep_slot:expr, $slot:expr) => {{
            stats.comparisons += 1;
            let mut done = false;
            for &r in live_rhs.iter() {
                if active.contains(r)
                    && columns[r][$rep_slot as usize] != columns[r][$slot as usize]
                {
                    active.remove(r);
                    outcomes[slot_of_attr[r] as usize].1 = RhsOutcome::Violated(
                        slot_rids[$rep_slot as usize],
                        slot_rids[$slot as usize],
                    );
                    if active.is_empty() {
                        done = true;
                        break;
                    }
                }
            }
            done
        }};
    }

    if rest.len() <= 2 {
        // Packed path: the remaining-LHS key fits one u64 exactly, so a
        // signature match *is* group membership.
        for &slot in cluster {
            let key = packed_key(rest, columns, slot);
            if let Some(rep_slot) = table.probe(key, slot, |_| true) {
                if compare!(rep_slot, slot) {
                    return true;
                }
            }
        }
    } else {
        // Wide path: the signature is a hash of the remaining-LHS codes;
        // a match verifies the codes through the columns.
        for &slot in cluster {
            let key = wide_key(rest, columns, slot);
            let found = table.probe(key, slot, |rep_slot| {
                rest.iter()
                    .all(|&a| columns[a][rep_slot as usize] == columns[a][slot as usize])
            });
            if let Some(rep_slot) = found {
                if compare!(rep_slot, slot) {
                    return true;
                }
            }
        }
    }
    false
}

/// `∅ -> A` holds iff column A is constant over the live records; the
/// per-column PLI answers this in O(1) via its cluster count.
fn validate_empty_lhs(rel: &DynamicRelation, rhs_set: AttrSet) -> ValidationResult {
    let outcomes = rhs_set
        .iter()
        .map(|r| {
            let pli = rel.pli(r);
            let outcome = if pli.cluster_count() <= 1 {
                RhsOutcome::Valid
            } else {
                // At least two clusters exist: pick one witness from each.
                let mut it = pli.iter();
                let (_, c1) = it.next().expect("first cluster");
                let (_, c2) = it.next().expect("second cluster");
                RhsOutcome::Violated(rel.rid_at_slot(c1[0]), rel.rid_at_slot(c2[0]))
            };
            (r, outcome)
        })
        .collect();
    ValidationResult {
        lhs: AttrSet::empty(),
        outcomes,
        stats: ValidationStats::default(),
    }
}

/// Convenience wrapper validating a single [`Fd`].
pub fn validate_fd(rel: &DynamicRelation, fd: &Fd, opts: &ValidationOptions) -> RhsOutcome {
    validate(rel, fd.lhs, AttrSet::single(fd.rhs), opts).outcome(fd.rhs)
}

/// How many of a sampled cluster's newest members the violation prober
/// inspects. New records sit at a rid-sorted cluster's tail, so the tail
/// is where an insert-phase violation lives if one exists.
const PROBE_TAIL: usize = 32;

/// How many clusters (per budgeted sample) the prober may walk past
/// looking for a dirty one before giving up.
const PROBE_SCAN_FACTOR: usize = 8;

/// Deterministic, thread-invariant violation probe for one validation
/// job (the EAIFD-style sampling score).
///
/// Samples up to `budget` *dirty* clusters (clusters holding at least
/// one record with rid ≥ `first_new`) of the job's most refined
/// partition — the best cached 2-subset when the snapshot has one,
/// mirroring [`validate_cached`]'s pivot choice, else the most refined
/// single-attribute PLI. On the raw-PLI path the dirty clusters are
/// found through `new_slots` (the batch's surviving inserted arena
/// slots): each sampled slot's pivot-attribute cluster holds a new
/// record *by construction*, so the probe never wastes its scan budget
/// walking clean clusters no matter how large the dictionary grows.
/// `seed` only rotates which slots get sampled; for each cluster, the
/// newest record is taken as reference, the cluster tail is refined to
/// the reference's full-LHS group (one [`crate::kernel`]-vectorized
/// cluster intersection plus scalar residual filters), and each RHS
/// attribute is checked for a disagreement inside that group.
///
/// The returned score counts `(cluster, rhs)` disagreements found.
/// Every disagreement is witnessed by a real record pair agreeing on the
/// LHS, so a positive score proves the job invalid; a zero score proves
/// nothing. The probe reads only the frozen relation and the snapshot —
/// no cache effects, no RNG, no dependence on thread count — so scores
/// are a pure function of `(rel, job, first_new, new_slots, budget,
/// seed)` and the sampling-guided schedule derived from them is
/// deterministic.
#[allow(clippy::too_many_arguments)]
pub fn probe_violation_score(
    rel: &DynamicRelation,
    lhs: AttrSet,
    rhs_set: AttrSet,
    first_new: RecordId,
    new_slots: &[u32],
    budget: usize,
    seed: u64,
    cache: &PliCacheSnapshot,
) -> u32 {
    if lhs.is_empty() || rhs_set.is_empty() || budget == 0 {
        return 0;
    }
    if let SnapshotProbe::Hit(key, part) = probe_snapshot(rel, lhs, cache) {
        return probe_on_partition(rel, lhs, rhs_set, first_new, budget, seed, key, part);
    }
    probe_on_pli(rel, lhs, rhs_set, new_slots, budget, seed)
}

/// Raw-PLI probe path: pivot on the most refined single-attribute PLI
/// and sample the newly inserted records' own clusters.
///
/// A circular scan over the pivot's cluster list (what
/// [`probe_on_partition`] still does — cached partitions carry no
/// slot→cluster index to exploit) goes blind at scale: fresh dictionary
/// values append at one end of a large cluster list, so a seeded window
/// of a few dozen clusters almost never lands on a dirty one. The new
/// records' slots *are* the dirt, and `pivot column value → cluster` is
/// an O(1) lookup, so the probe walks a seeded window of `new_slots`
/// instead. Several slots may map to the same cluster; re-probing it is
/// wasted but harmless work, bounded by the small budget.
fn probe_on_pli(
    rel: &DynamicRelation,
    lhs: AttrSet,
    rhs_set: AttrSet,
    new_slots: &[u32],
    budget: usize,
    seed: u64,
) -> u32 {
    if new_slots.is_empty() {
        return 0;
    }
    let pivot = lhs
        .iter()
        .min_by_key(|&a| (rel.pli(a).max_cluster_len(), a))
        .expect("non-empty lhs");
    let pli = rel.pli(pivot);
    let pivot_col = rel.column(pivot);
    let slot_rids = rel.slot_rids();
    // The most refined non-pivot attribute refines the sampled tail via
    // the shared kernel; any residual attributes filter scalar-wise.
    let refine = lhs
        .iter()
        .filter(|&a| a != pivot)
        .min_by_key(|&a| (rel.pli(a).max_cluster_len(), a));
    let residual: Vec<AttrId> = lhs
        .iter()
        .filter(|&a| a != pivot && Some(a) != refine)
        .collect();
    let start = (seed as usize) % new_slots.len();
    let scan_cap = budget * PROBE_SCAN_FACTOR + 64;
    let (mut sampled, mut score) = (0usize, 0u32);
    let mut subgroup: Vec<u32> = Vec::new();
    for step in 0..new_slots.len().min(scan_cap) {
        if sampled >= budget {
            break;
        }
        let slot = new_slots[(start + step) % new_slots.len()];
        let Some(cluster) = pli.cluster(pivot_col[slot as usize]) else {
            continue;
        };
        if cluster.len() < 2 {
            continue; // the new record is alone under this pivot value
        }
        let last = cluster[cluster.len() - 1];
        sampled += 1;
        subgroup.clear();
        if let Some(b) = refine {
            let value = rel.column(b)[last as usize];
            let Some(b_cluster) = rel.pli(b).cluster(value) else {
                continue;
            };
            let tail = &cluster[cluster.len().saturating_sub(PROBE_TAIL)..];
            crate::pli::intersect_clusters(tail, b_cluster, slot_rids, &mut subgroup);
        } else {
            subgroup.extend_from_slice(&cluster[cluster.len().saturating_sub(PROBE_TAIL)..]);
        }
        for &c in &residual {
            let col = rel.column(c);
            let want = col[last as usize];
            subgroup.retain(|&s| col[s as usize] == want);
        }
        if subgroup.len() < 2 {
            continue;
        }
        score += count_rhs_disagreements(rel, &subgroup, last, rhs_set);
    }
    score
}

/// Cached-partition probe path: the snapshot's best 2-subset already
/// groups the sampled records by two LHS attributes at once.
#[allow(clippy::too_many_arguments)]
fn probe_on_partition(
    rel: &DynamicRelation,
    lhs: AttrSet,
    rhs_set: AttrSet,
    first_new: RecordId,
    budget: usize,
    seed: u64,
    key: AttrSet,
    part: &CachedPartition,
) -> u32 {
    let total = part.cluster_count();
    if total == 0 {
        return 0;
    }
    let rest_set = lhs.difference(&key);
    let refine = rest_set
        .iter()
        .min_by_key(|&a| (rel.pli(a).max_cluster_len(), a));
    let residual: Vec<AttrId> = rest_set.iter().filter(|&a| Some(a) != refine).collect();
    let start = (seed as usize) % total;
    let scan_cap = budget * PROBE_SCAN_FACTOR + 64;
    let (mut sampled, mut score) = (0usize, 0u32);
    let mut slot_scratch: Vec<u32> = Vec::new();
    let mut subgroup: Vec<u32> = Vec::new();
    for step in 0..total.min(scan_cap) {
        if sampled >= budget {
            break;
        }
        let idx = (start + step) % total;
        let rids = part.cluster_rids(idx);
        if rids.len() < 2 {
            continue;
        }
        let last_rid = rids[rids.len() - 1];
        if last_rid < first_new {
            continue;
        }
        sampled += 1;
        let ref_slot = rel
            .slot_of(last_rid)
            .expect("cached partition references live record");
        subgroup.clear();
        if let Some(b) = refine {
            let value = rel.column(b)[ref_slot as usize];
            let Some(b_cluster) = rel.pli(b).cluster(value) else {
                continue;
            };
            part.refine_tail_with_pli(
                idx,
                PROBE_TAIL,
                rel,
                b_cluster,
                &mut slot_scratch,
                &mut subgroup,
            );
        } else {
            // The cached key covers the whole LHS: the cluster already is
            // the full-LHS group; translate its tail to arena slots.
            let tail = &rids[rids.len().saturating_sub(PROBE_TAIL)..];
            subgroup.extend(tail.iter().map(|&rid| {
                rel.slot_of(rid)
                    .expect("cached partition references live record")
            }));
        }
        for &c in &residual {
            let col = rel.column(c);
            let want = col[ref_slot as usize];
            subgroup.retain(|&s| col[s as usize] == want);
        }
        if subgroup.len() < 2 {
            continue;
        }
        score += count_rhs_disagreements(rel, &subgroup, ref_slot, rhs_set);
    }
    score
}

/// Counts RHS attributes on which some subgroup member disagrees with
/// the reference slot — each one a genuine violation of `lhs -> rhs`.
fn count_rhs_disagreements(
    rel: &DynamicRelation,
    subgroup: &[u32],
    ref_slot: u32,
    rhs_set: AttrSet,
) -> u32 {
    let mut found = 0;
    for r in rhs_set.iter() {
        let col = rel.column(r);
        let want = col[ref_slot as usize];
        if subgroup.iter().any(|&s| col[s as usize] != want) {
            found += 1;
        }
    }
    found
}

/// The *agree set* of two records: all attributes on which they hold the
/// same value. For any attribute `y` outside the agree set `X`, the pair
/// witnesses the non-FD `X -> y` (paper Section 4.3).
pub fn agree_set(rel: &DynamicRelation, a: RecordId, b: RecordId) -> Option<AttrSet> {
    let ra = rel.compressed(a)?;
    let rb = rel.compressed(b)?;
    let mut set = AttrSet::empty();
    for (attr, (x, y)) in ra.iter().zip(rb.iter()).enumerate() {
        if x == y {
            set.insert(attr);
        }
    }
    Some(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfd_common::Schema;

    fn rel(rows: &[&[&str]]) -> DynamicRelation {
        let arity = rows.first().map_or(2, |r| r.len());
        let schema = Schema::anonymous("t", arity);
        let rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(|s| s.to_string()).collect())
            .collect();
        DynamicRelation::from_rows(schema, &rows).unwrap()
    }

    fn paper() -> DynamicRelation {
        rel(&[
            &["Max", "Jones", "14482", "Potsdam"],
            &["Max", "Miller", "14482", "Potsdam"],
            &["Max", "Jones", "10115", "Berlin"],
            &["Anna", "Scott", "13591", "Berlin"],
        ])
    }

    fn lhs(attrs: &[usize]) -> AttrSet {
        attrs.iter().copied().collect()
    }

    #[test]
    fn paper_minimal_fds_hold_initially() {
        // Figure 2: l→f, z→f, z→c, fc→z, lc→z are the minimal FDs.
        let r = paper();
        let full = ValidationOptions::full();
        for (x, a) in [
            (lhs(&[1]), 0),    // l -> f
            (lhs(&[2]), 0),    // z -> f
            (lhs(&[2]), 3),    // z -> c
            (lhs(&[0, 3]), 2), // fc -> z
            (lhs(&[1, 3]), 2), // lc -> z
        ] {
            assert!(
                validate_fd(&r, &Fd::new(x, a), &full).is_valid(),
                "{x:?}->{a} should hold"
            );
        }
    }

    #[test]
    fn paper_non_fds_are_violated() {
        // Figure 2 red cells: f→c, c→f, fl→z, ... are invalid initially.
        let r = paper();
        let full = ValidationOptions::full();
        for (x, a) in [
            (lhs(&[0]), 3),       // f -> c
            (lhs(&[3]), 0),       // c -> f
            (lhs(&[0, 1]), 2),    // fl -> z
            (lhs(&[0, 1]), 3),    // fl -> c
            (lhs(&[0, 2, 3]), 1), // fzc -> l
        ] {
            let out = validate_fd(&r, &Fd::new(x, a), &full);
            assert!(!out.is_valid(), "{x:?}->{a} should be violated");
        }
    }

    #[test]
    fn violating_pair_actually_violates() {
        let r = paper();
        let out = validate_fd(&r, &Fd::new(lhs(&[0]), 3), &ValidationOptions::full());
        let RhsOutcome::Violated(a, b) = out else {
            panic!("expected violation")
        };
        let ra = r.compressed(a).unwrap();
        let rb = r.compressed(b).unwrap();
        assert_eq!(ra[0], rb[0], "pair must agree on lhs");
        assert_ne!(ra[3], rb[3], "pair must disagree on rhs");
    }

    #[test]
    fn simultaneous_rhs_validation() {
        let r = paper();
        // lhs = {zip}: zip -> firstname valid, zip -> lastname invalid,
        // zip -> city valid.
        let res = validate(&r, lhs(&[2]), lhs(&[0, 1, 3]), &ValidationOptions::full());
        assert!(res.outcome(0).is_valid());
        assert!(!res.outcome(1).is_valid());
        assert!(res.outcome(3).is_valid());
        assert_eq!(res.violations().count(), 1);
    }

    #[test]
    fn empty_lhs_constant_column() {
        let r = rel(&[&["x", "1"], &["x", "2"], &["x", "2"]]);
        let res = validate(
            &r,
            AttrSet::empty(),
            lhs(&[0, 1]),
            &ValidationOptions::full(),
        );
        assert!(res.outcome(0).is_valid(), "column 0 constant");
        assert!(!res.outcome(1).is_valid(), "column 1 varies");
        let RhsOutcome::Violated(a, b) = res.outcome(1) else {
            panic!()
        };
        assert_ne!(r.compressed(a).unwrap()[1], r.compressed(b).unwrap()[1]);
    }

    #[test]
    fn tiny_relations_satisfy_everything() {
        let empty = DynamicRelation::new(Schema::anonymous("t", 3));
        let res = validate(&empty, lhs(&[0]), lhs(&[1, 2]), &ValidationOptions::full());
        assert!(res.all_valid());

        let one = rel(&[&["a", "b", "c"]]);
        assert!(validate(&one, lhs(&[0]), lhs(&[1]), &ValidationOptions::full()).all_valid());
        assert!(validate(
            &one,
            AttrSet::empty(),
            lhs(&[0]),
            &ValidationOptions::full()
        )
        .all_valid());
    }

    #[test]
    fn cluster_pruning_skips_old_clusters() {
        let mut r = paper();
        // Insert a record whose firstname "Anna" joins record 3's cluster.
        r.insert_row(&["Anna", "Scott", "13591", "Berlin"]).unwrap();
        // Validate f -> c with pruning: the Max cluster {0,1,2} is old
        // (max id 2 < 4) and must be skipped even though it violates.
        let res = validate(
            &r,
            lhs(&[0]),
            AttrSet::single(3),
            &ValidationOptions::delta(RecordId(4)),
        );
        assert_eq!(res.stats.clusters_pruned, 1);
        assert_eq!(res.stats.clusters_visited, 1);
        // The Anna cluster is consistent, so under pruning the FD looks
        // valid — which is the *intended* semantics: pruning is only used
        // on candidates known valid over the old records.
        assert!(res.outcome(3).is_valid());
    }

    #[test]
    fn cluster_pruning_still_sees_new_violations() {
        let mut r = paper();
        let first_new = r.next_id();
        // New record violates z -> c: shares zip 14482 with ids 0,1 but
        // has a different city.
        r.insert_row(&["Eve", "Stone", "14482", "Leipzig"]).unwrap();
        let res = validate(
            &r,
            lhs(&[2]),
            AttrSet::single(3),
            &ValidationOptions::delta(first_new),
        );
        let RhsOutcome::Violated(a, b) = res.outcome(3) else {
            panic!("z -> c must be violated by the insert")
        };
        assert!(
            a == RecordId(4) || b == RecordId(4),
            "violation involves the new record"
        );
    }

    #[test]
    fn early_termination_counts_less_work() {
        // Column 1 mirrors column 0 except everywhere-different column 2.
        let rows: Vec<Vec<String>> = (0..100)
            .map(|i| {
                vec![
                    format!("g{}", i / 10),
                    format!("h{}", i / 10),
                    format!("u{i}"),
                ]
            })
            .collect();
        let r = DynamicRelation::from_rows(Schema::anonymous("t", 3), &rows).unwrap();
        // lhs {0} -> rhs {2}: every cluster violates immediately.
        let res = validate(
            &r,
            lhs(&[0]),
            AttrSet::single(2),
            &ValidationOptions::full(),
        );
        assert!(!res.outcome(2).is_valid());
        // Early termination: at most one comparison needed.
        assert_eq!(res.stats.comparisons, 1);
    }

    #[test]
    fn constancy_pre_pass_matches_grouped_verdicts() {
        // Mixed clusters: some all-constant on the RHS (pre-pass skips
        // the group table), some not (grouped scan finds the violation).
        let rows: Vec<Vec<String>> = (0..60)
            .map(|i| {
                vec![
                    format!("p{}", i / 12), // pivot: clusters of 12
                    format!("q{}", i / 4),  // rest attr
                    format!("r{}", i % 2),  // rest attr
                    if i / 12 == 3 {
                        format!("x{i}") // cluster 3: RHS varies per record
                    } else {
                        format!("c{}", i / 12) // constant per pivot cluster
                    },
                ]
            })
            .collect();
        let r = DynamicRelation::from_rows(Schema::anonymous("t", 4), &rows).unwrap();
        let res = validate(
            &r,
            lhs(&[0, 1, 2]),
            AttrSet::single(3),
            &ValidationOptions::full(),
        );
        // Cluster 3 groups records agreeing on all of q, r — e.g. rows
        // 36 and 38 share (p3, q9, r0) but differ on column 3.
        assert!(!res.outcome(3).is_valid());
        let RhsOutcome::Violated(a, b) = res.outcome(3) else {
            panic!()
        };
        let (ra, rb) = (r.compressed(a).unwrap(), r.compressed(b).unwrap());
        for l in [0, 1, 2] {
            assert_eq!(ra[l], rb[l]);
        }
        assert_ne!(ra[3], rb[3]);

        // All-constant RHS per group: valid, and the pre-pass means no
        // comparisons at all were needed in fully-constant clusters.
        let res = validate(
            &r,
            lhs(&[0, 1]),
            AttrSet::single(2),
            &ValidationOptions::full(),
        );
        assert!(!res.outcome(2).is_valid());
    }

    #[test]
    fn agree_sets() {
        let r = paper();
        // Records 0 and 1: agree on firstname, zip, city; differ lastname.
        assert_eq!(
            agree_set(&r, RecordId(0), RecordId(1)).unwrap().to_vec(),
            vec![0, 2, 3]
        );
        // Records 0 and 3 share nothing.
        assert!(agree_set(&r, RecordId(0), RecordId(3)).unwrap().is_empty());
        // Self-agreement is everything.
        assert_eq!(agree_set(&r, RecordId(2), RecordId(2)).unwrap().len(), 4);
        // Dead record → None.
        assert_eq!(agree_set(&r, RecordId(0), RecordId(42)), None);
    }

    #[test]
    #[should_panic(expected = "trivial candidate")]
    fn trivial_candidate_panics() {
        let r = paper();
        let _ = validate(
            &r,
            lhs(&[0, 1]),
            AttrSet::single(0),
            &ValidationOptions::full(),
        );
    }

    /// Every arity-2/3 candidate over the paper relation gets the same
    /// verdicts from the cached path — on a cold snapshot (miss+build)
    /// and on the warm snapshot the merge produced (hit).
    #[test]
    fn cached_path_matches_plain_verdicts() {
        use crate::pli_cache::PliCache;

        let r = paper();
        let full = ValidationOptions::full();
        let mut scratch = ValidatorScratch::new();
        let mut cache = PliCache::new(usize::MAX);

        let mut candidates = Vec::new();
        for a in 0..4usize {
            for b in a + 1..4 {
                let x: AttrSet = [a, b].into_iter().collect();
                for c in 0..4 {
                    if !x.contains(c) {
                        candidates.push((x, AttrSet::single(c)));
                        candidates.push((x.with(c), AttrSet::full(4).difference(&x.with(c))));
                    }
                }
            }
        }
        let candidates: Vec<_> = candidates
            .into_iter()
            .filter(|(_, rhs)| !rhs.is_empty())
            .collect();

        for round in 0..2 {
            let snap = cache.snapshot();
            let mut effects = Vec::new();
            for &(x, rhs) in &candidates {
                let plain = validate_with(&r, x, rhs, &full, &mut scratch);
                let (cached, eff) = validate_cached(&r, x, rhs, &full, &mut scratch, &snap);
                for (attr, out) in &plain.outcomes {
                    assert_eq!(
                        cached.outcome(*attr).is_valid(),
                        out.is_valid(),
                        "round {round}: {x:?} -> {attr} verdict diverged"
                    );
                }
                // Any reported witness must genuinely violate.
                for (attr, a, b) in cached.violations() {
                    let ra = r.compressed(a).expect("live witness");
                    let rb = r.compressed(b).expect("live witness");
                    assert!(x.iter().all(|l| ra[l] == rb[l]), "witness agrees on lhs");
                    assert_ne!(ra[attr], rb[attr], "witness disagrees on rhs");
                }
                effects.push(eff);
            }
            if round == 0 {
                assert!(
                    effects.iter().any(|e| e.built.is_some()),
                    "cold run builds partitions"
                );
            } else {
                assert!(
                    effects.iter().any(|e| e.hit.is_some()),
                    "warm run hits the cache"
                );
                assert!(
                    effects.iter().all(|e| e.built.is_none()),
                    "warm run rebuilds nothing"
                );
            }
            cache.merge(&effects);
        }
        assert!(cache.stats().hits > 0 && cache.stats().misses > 0);
    }

    /// Cluster-pruned (insert-phase) validations probe but never build:
    /// the effects record a miss and no partition.
    #[test]
    fn cached_path_skips_build_under_pruning() {
        use crate::pli_cache::PliCache;

        let mut r = paper();
        let first_new = r.next_id();
        r.insert_row(&["Eve", "Stone", "14482", "Leipzig"]).unwrap();
        let cache = PliCache::new(usize::MAX);
        let snap = cache.snapshot();
        let (res, eff) = validate_cached(
            &r,
            lhs(&[0, 2]),
            AttrSet::single(3),
            &ValidationOptions::delta(first_new),
            &mut ValidatorScratch::new(),
            &snap,
        );
        assert!(eff.miss && eff.built.is_none() && eff.hit.is_none());
        // Same verdict as the plain pruned validation.
        let plain = validate(
            &r,
            lhs(&[0, 2]),
            AttrSet::single(3),
            &ValidationOptions::delta(first_new),
        );
        assert_eq!(res.outcome(3).is_valid(), plain.outcome(3).is_valid());
    }

    #[test]
    fn validation_after_deletes() {
        let mut r = paper();
        // f -> c is violated by (0,2). Delete record 2 → Max cluster all
        // Potsdam → f -> c becomes valid.
        r.delete_record(RecordId(2)).unwrap();
        assert!(validate_fd(&r, &Fd::new(lhs(&[0]), 3), &ValidationOptions::full()).is_valid());
    }

    #[test]
    fn validation_survives_slot_churn() {
        // Verdicts and witnesses key on record ids even when slot reuse
        // scrambles the arena relative to rid order.
        let mut r = paper();
        r.delete_record(RecordId(0)).unwrap();
        r.delete_record(RecordId(2)).unwrap();
        // Reuses slots LIFO: rid 4 takes record 2's slot, rid 5 record 0's.
        r.insert_row(&["Max", "Jones", "10115", "Berlin"]).unwrap();
        r.insert_row(&["Max", "Jones", "14482", "Potsdam"]).unwrap();
        r.check_arena_invariants().unwrap();
        // Same logical content as the paper relation (ids shifted):
        // f -> c still violated, z -> c still valid.
        let out = validate_fd(&r, &Fd::new(lhs(&[0]), 3), &ValidationOptions::full());
        let RhsOutcome::Violated(a, b) = out else {
            panic!("f -> c must stay violated")
        };
        let (ra, rb) = (r.compressed(a).unwrap(), r.compressed(b).unwrap());
        assert_eq!(ra[0], rb[0]);
        assert_ne!(ra[3], rb[3]);
        assert!(a < b, "witness pair ordered by scan order (rid order)");
        assert!(validate_fd(&r, &Fd::new(lhs(&[2]), 3), &ValidationOptions::full()).is_valid());
    }
}
