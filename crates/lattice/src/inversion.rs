//! Cover inversion — Algorithm 1 of the paper.
//!
//! Classic *dependency induction* derives the positive cover from a
//! negative cover; DynFD needs the **opposite** direction at bootstrap
//! time: given the minimal FDs (e.g. produced by HyFD), compute all
//! maximal non-FDs. The paper presents the first algorithm for this
//! step; this module implements it verbatim.

use crate::FdTree;
use dynfd_common::AttrSet;

/// Derives the negative cover (all maximal non-FDs) from a positive
/// cover of minimal FDs over an `arity`-column relation (Algorithm 1).
///
/// Starting from the most pessimistic assumption — for every attribute
/// `A`, the most specific candidate `R \ {A} -> A` is a non-FD — every
/// valid minimal FD successively refines the cover: any non-FD that is a
/// specialization of a valid FD is in fact valid, so it is replaced by
/// its direct generalizations (dropping one attribute of the valid FD's
/// LHS at a time), kept only when maximal.
///
/// The result is exact: `nonFds` contains precisely the maximal LHS sets
/// `Y` per RHS `A` such that `Y -> A` is *not* implied by `fds`.
pub fn invert_positive_cover(fds: &FdTree, arity: usize) -> FdTree {
    let mut non_fds = FdTree::new();
    // Lines 2-4: initialize with the most specific non-FDs.
    for a in 0..arity {
        non_fds.add(AttrSet::full(arity).without(a), a);
    }
    // Lines 5-13: refine with every valid minimal FD.
    for fd in fds.all_fds() {
        let violated = non_fds.get_specializations(fd.lhs, fd.rhs);
        for nf_lhs in violated {
            non_fds.remove(nf_lhs, fd.rhs);
            for l in fd.lhs.iter() {
                // Dropping an attribute outside fd.lhs would leave the
                // candidate a specialization of fd, hence valid.
                non_fds.add_maximal(nf_lhs.without(l), fd.rhs);
            }
        }
    }
    non_fds
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfd_common::Fd;

    fn s(attrs: &[usize]) -> AttrSet {
        attrs.iter().copied().collect()
    }

    fn tree(fds: &[(&[usize], usize)]) -> FdTree {
        fds.iter().map(|&(l, r)| Fd::new(s(l), r)).collect()
    }

    /// Implication check: `lhs -> rhs` follows from a positive cover iff
    /// some stored generalization exists.
    fn implied(fds: &FdTree, lhs: AttrSet, rhs: usize) -> bool {
        fds.contains_generalization(lhs, rhs)
    }

    /// Brute-force negative cover: enumerate all non-trivial candidates,
    /// keep the non-implied ones, reduce to maximal elements.
    fn brute_force_invert(fds: &FdTree, arity: usize) -> FdTree {
        let mut non_fds: Vec<Fd> = Vec::new();
        for rhs in 0..arity {
            for mask in 0..(1usize << arity) {
                let lhs: AttrSet = (0..arity).filter(|&a| mask >> a & 1 == 1).collect();
                if lhs.contains(rhs) || implied(fds, lhs, rhs) {
                    continue;
                }
                non_fds.push(Fd::new(lhs, rhs));
            }
        }
        let maximal: Vec<Fd> = non_fds
            .iter()
            .filter(|fd| !non_fds.iter().any(|o| fd.is_generalization_of(o)))
            .copied()
            .collect();
        maximal.into_iter().collect()
    }

    #[test]
    fn paper_worked_example() {
        // Section 3.2: minimal FDs of Table 1 (f=0, l=1, z=2, c=3):
        // l→f, z→f, z→c, fc→z, lc→z. Expected maximal non-FDs:
        // fzc→l, fl→z, fl→c, c→f, c→z.
        let fds = tree(&[(&[1], 0), (&[2], 0), (&[2], 3), (&[0, 3], 2), (&[1, 3], 2)]);
        let non_fds = invert_positive_cover(&fds, 4);
        let expect = tree(&[
            (&[0, 2, 3], 1), // fzc -> l
            (&[0, 1], 2),    // fl -> z
            (&[0, 1], 3),    // fl -> c
            (&[3], 0),       // c -> f
            (&[3], 2),       // c -> z
        ]);
        assert_eq!(non_fds, expect);
    }

    #[test]
    fn empty_positive_cover_yields_most_specific_non_fds() {
        let non_fds = invert_positive_cover(&FdTree::new(), 3);
        let expect = tree(&[(&[1, 2], 0), (&[0, 2], 1), (&[0, 1], 2)]);
        assert_eq!(non_fds, expect);
    }

    #[test]
    fn all_fds_hold_yields_empty_negative_cover() {
        // ∅ -> A for every A: everything is implied.
        let fds = tree(&[(&[], 0), (&[], 1), (&[], 2)]);
        let non_fds = invert_positive_cover(&fds, 3);
        assert!(non_fds.is_empty());
    }

    #[test]
    fn key_only_cover() {
        // Attribute 0 is a key: 0 -> 1, 0 -> 2 (and nothing else holds).
        let fds = tree(&[(&[0], 1), (&[0], 2)]);
        let non_fds = invert_positive_cover(&fds, 3);
        assert_eq!(non_fds, brute_force_invert(&fds, 3));
        // Specifically: {1,2} -> 0 stays the maximal non-FD for RHS 0,
        // and for RHS 1 the maximal non-FD is {2} (any set containing 0
        // is valid).
        assert!(non_fds.contains(s(&[1, 2]), 0));
        assert!(non_fds.contains(s(&[2]), 1));
        assert!(non_fds.contains(s(&[1]), 2));
    }

    #[test]
    fn matches_brute_force_on_exhaustive_small_covers() {
        // All positive covers generated from up to 3 random-ish minimal
        // FDs over 4 attributes, kept antichain via add_minimal.
        let arity = 4;
        let mut cases = 0;
        for seed in 0..200usize {
            let mut fds = FdTree::new();
            let mut x = seed;
            for _ in 0..3 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let rhs = (x >> 8) % arity;
                let mask = (x >> 16) % (1 << arity);
                let lhs: AttrSet = (0..arity)
                    .filter(|&a| mask >> a & 1 == 1 && a != rhs)
                    .collect();
                fds.add_minimal(lhs, rhs);
            }
            let got = invert_positive_cover(&fds, arity);
            let want = brute_force_invert(&fds, arity);
            assert_eq!(got, want, "cover {:?}", fds.all_fds());
            cases += 1;
        }
        assert_eq!(cases, 200);
    }

    #[test]
    fn inversion_output_is_an_antichain() {
        let fds = tree(&[(&[1], 0), (&[2, 3], 0), (&[0], 2), (&[3], 1)]);
        let non_fds = invert_positive_cover(&fds, 5);
        assert!(non_fds.is_antichain());
    }

    #[test]
    fn all_attributes_key_relation() {
        // Every single attribute is a key: {a} -> b for all a ≠ b (e.g. a
        // relation of pairwise-distinct rows in every column). The only
        // candidates not implied are the empty-LHS ones, so the negative
        // cover collapses to ∅ -> b per attribute — the bottom of the
        // lattice, the mirror image of the empty-cover case.
        for arity in 2..=5 {
            let fds: FdTree = (0..arity)
                .flat_map(|a| {
                    (0..arity)
                        .filter(move |&b| b != a)
                        .map(move |b| Fd::new(s(&[a]), b))
                })
                .collect();
            let non_fds = invert_positive_cover(&fds, arity);
            let expect: FdTree = (0..arity).map(|b| Fd::new(AttrSet::empty(), b)).collect();
            assert_eq!(non_fds, expect, "arity {arity}");
            assert_eq!(non_fds, brute_force_invert(&fds, arity), "arity {arity}");
        }
    }

    #[test]
    fn empty_cover_matches_brute_force_across_arities() {
        // With no valid FDs the negative cover must sit at the top of the
        // lattice: R \ {A} -> A for every attribute, at every arity.
        for arity in 1..=5 {
            let got = invert_positive_cover(&FdTree::new(), arity);
            assert_eq!(
                got,
                brute_force_invert(&FdTree::new(), arity),
                "arity {arity}"
            );
            assert_eq!(got.all_fds().len(), arity);
        }
    }

    #[test]
    fn edge_covers_round_trip_through_induction() {
        // Inversion and dependency induction are inverse bijections
        // between antichain covers — including at the degenerate corners
        // this module's edge tests pin down.
        use crate::induce_from_negative_cover;
        let arity = 4;
        let all_key: FdTree = (0..arity)
            .flat_map(|a| {
                (0..arity)
                    .filter(move |&b| b != a)
                    .map(move |b| Fd::new(s(&[a]), b))
            })
            .collect();
        let covers = [
            FdTree::new(),                                   // no FDs hold
            tree(&[(&[], 0), (&[], 1), (&[], 2), (&[], 3)]), // all constant
            all_key,                                         // every attribute a key
            tree(&[(&[0], 1), (&[0], 2), (&[0], 3)]),        // one key column
        ];
        for cover in covers {
            let inverted = invert_positive_cover(&cover, arity);
            let back = induce_from_negative_cover(&inverted, arity);
            assert_eq!(back, cover, "round trip broke for {:?}", cover.all_fds());
        }
    }

    #[test]
    fn single_attribute_relation() {
        // Arity 1: the initial non-FD for attribute 0 is ∅ -> 0.
        let non_fds = invert_positive_cover(&FdTree::new(), 1);
        assert_eq!(non_fds.all_fds(), vec![Fd::new(AttrSet::empty(), 0)]);
        // If ∅ -> 0 holds (constant column), nothing remains.
        let fds = tree(&[(&[], 0)]);
        assert!(invert_positive_cover(&fds, 1).is_empty());
    }
}
