//! Self-contained failure reproductions.
//!
//! When the fuzzer finds a discrepancy it shrinks the trace and writes a
//! `.repro.json` file holding everything needed to replay the failure
//! without the generator: the seed and profile it came from (for
//! provenance), the schema, the initial rows, the shrunk op script, the
//! batch size, and the expected/actual covers of the failed check. The
//! `replay_committed_repro_files` test in `crates/testkit/tests/`
//! replays every repro committed under `crates/testkit/repros/`, turning
//! each captured bug into a permanent regression test.

use crate::json::Json;
use crate::{Trace, TraceFailure, TraceOp};
use dynfd_common::Schema;

/// A self-contained, JSON-serializable failure reproduction.
#[derive(Clone, Debug, PartialEq)]
pub struct Repro {
    /// The (possibly shrunk) failing trace.
    pub trace: Trace,
    /// Identifier of the failed check (e.g. `oracle:tane`).
    pub check: String,
    /// Strategy label of the configuration that failed.
    pub config: String,
    /// Batch index at which the check failed, if any.
    pub batch: Option<usize>,
    /// Expected cover at the failure point, rendered FDs.
    pub expected: Vec<String>,
    /// Actual cover at the failure point, rendered FDs.
    pub actual: Vec<String>,
}

impl Repro {
    /// Packages a shrunk trace and its failure into a repro.
    pub fn new(trace: Trace, failure: &TraceFailure) -> Self {
        Repro {
            trace,
            check: failure.check.clone(),
            config: failure.config.clone(),
            batch: failure.batch,
            expected: failure.expected.clone(),
            actual: failure.actual.clone(),
        }
    }

    /// A stable, filesystem-safe file name for this repro.
    pub fn file_name(&self) -> String {
        let check: String = self
            .check
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        format!(
            "seed{}-{}-{}.repro.json",
            self.trace.seed, self.trace.profile, check
        )
    }

    /// Serializes the repro as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let t = &self.trace;
        let rows = |rows: &[Vec<String>]| {
            Json::Arr(
                rows.iter()
                    .map(|r| Json::Arr(r.iter().map(|v| Json::Str(v.clone())).collect()))
                    .collect(),
            )
        };
        let ops = Json::Arr(
            t.ops
                .iter()
                .map(|op| match op {
                    TraceOp::Insert(row) => Json::Arr(vec![
                        Json::Str("insert".into()),
                        Json::Arr(row.iter().map(|v| Json::Str(v.clone())).collect()),
                    ]),
                    TraceOp::DeleteNth(n) => {
                        Json::Arr(vec![Json::Str("delete".into()), Json::num(n)])
                    }
                    TraceOp::UpdateNth(n, row) => Json::Arr(vec![
                        Json::Str("update".into()),
                        Json::num(n),
                        Json::Arr(row.iter().map(|v| Json::Str(v.clone())).collect()),
                    ]),
                })
                .collect(),
        );
        let strs =
            |items: &[String]| Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect());
        Json::Obj(vec![
            ("format".into(), Json::Str("dynfd-repro-v1".into())),
            ("seed".into(), Json::num(t.seed)),
            ("profile".into(), Json::Str(t.profile.clone())),
            ("relation".into(), Json::Str(t.schema.name().into())),
            ("columns".into(), strs(t.schema.columns())),
            ("batch_size".into(), Json::num(t.batch_size)),
            ("initial_rows".into(), rows(&t.initial_rows)),
            ("ops".into(), ops),
            ("check".into(), Json::Str(self.check.clone())),
            ("config".into(), Json::Str(self.config.clone())),
            ("batch".into(), self.batch.map_or(Json::Null, Json::num)),
            ("expected_cover".into(), strs(&self.expected)),
            ("actual_cover".into(), strs(&self.actual)),
        ])
        .to_string_pretty()
    }

    /// Parses a repro back from its JSON form.
    pub fn from_json(text: &str) -> Result<Repro, String> {
        let doc = Json::parse(text)?;
        if doc.get("format").and_then(Json::as_str) != Some("dynfd-repro-v1") {
            return Err("not a dynfd-repro-v1 document".into());
        }
        let str_field = |key: &str| -> Result<String, String> {
            Ok(doc
                .get(key)
                .and_then(Json::as_str)
                .ok_or(format!("missing string field {key:?}"))?
                .to_string())
        };
        let str_arr = |value: &Json, what: &str| -> Result<Vec<String>, String> {
            value
                .as_arr()
                .ok_or(format!("{what} is not an array"))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or(format!("{what} holds a non-string"))
                })
                .collect()
        };
        let columns = str_arr(doc.get("columns").ok_or("missing columns")?, "columns")?;
        let schema = Schema::new(str_field("relation")?, columns);
        let initial_rows = doc
            .get("initial_rows")
            .and_then(Json::as_arr)
            .ok_or("missing initial_rows")?
            .iter()
            .map(|r| str_arr(r, "row"))
            .collect::<Result<Vec<_>, _>>()?;
        let ops = doc
            .get("ops")
            .and_then(Json::as_arr)
            .ok_or("missing ops")?
            .iter()
            .map(|op| {
                let parts = op.as_arr().ok_or("op is not an array")?;
                let kind = parts
                    .first()
                    .and_then(Json::as_str)
                    .ok_or("op without kind")?;
                match kind {
                    "insert" => Ok(TraceOp::Insert(str_arr(
                        parts.get(1).ok_or("insert without row")?,
                        "insert row",
                    )?)),
                    "delete" => Ok(TraceOp::DeleteNth(
                        parts
                            .get(1)
                            .and_then(Json::as_usize)
                            .ok_or("delete without index")?,
                    )),
                    "update" => Ok(TraceOp::UpdateNth(
                        parts
                            .get(1)
                            .and_then(Json::as_usize)
                            .ok_or("update without index")?,
                        str_arr(parts.get(2).ok_or("update without row")?, "update row")?,
                    )),
                    other => Err(format!("unknown op kind {other:?}")),
                }
            })
            .collect::<Result<Vec<_>, String>>()?;
        let trace = Trace {
            seed: doc
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("missing seed")?,
            profile: str_field("profile")?,
            schema,
            initial_rows,
            ops,
            batch_size: doc
                .get("batch_size")
                .and_then(Json::as_usize)
                .ok_or("missing batch_size")?
                .max(1),
        };
        Ok(Repro {
            trace,
            check: str_field("check")?,
            config: str_field("config")?,
            batch: doc.get("batch").and_then(Json::as_usize),
            expected: str_arr(
                doc.get("expected_cover").ok_or("missing expected_cover")?,
                "expected_cover",
            )?,
            actual: str_arr(
                doc.get("actual_cover").ok_or("missing actual_cover")?,
                "actual_cover",
            )?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceProfile;

    fn sample() -> Repro {
        let trace = Trace::generate(TraceProfile::NullHeavy, 13);
        Repro::new(
            trace,
            &TraceFailure {
                check: "oracle:tane".into(),
                config: "4.3+5.2".into(),
                batch: Some(2),
                expected: vec!["{0}->1".into()],
                actual: vec![],
            },
        )
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let repro = sample();
        let text = repro.to_json();
        let back = Repro::from_json(&text).unwrap();
        assert_eq!(back, repro);
        // Null placeholders (empty strings) must survive the format.
        assert_eq!(back.trace.initial_rows, repro.trace.initial_rows);
    }

    #[test]
    fn file_name_is_filesystem_safe() {
        let name = sample().file_name();
        assert!(name.ends_with(".repro.json"));
        assert!(name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.'));
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(Repro::from_json("{\"format\": \"something-else\"}").is_err());
        assert!(Repro::from_json("[]").is_err());
        assert!(Repro::from_json("not json").is_err());
    }

    #[test]
    fn parsed_repro_traces_replay() {
        let repro = sample();
        let back = Repro::from_json(&repro.to_json()).unwrap();
        let mut rel = back.trace.to_relation();
        for batch in back.trace.to_batches() {
            rel.apply_batch(&batch).expect("repro trace replays");
        }
    }
}
