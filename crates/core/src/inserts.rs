//! Insert handling — the lattice-based FD validation of Algorithm 2.
//!
//! Inserts can only *invalidate* FDs (Definition 1.1: violations are
//! introduced, never removed), so the positive cover is the right place
//! to look. The traversal starts at the most general minimal FDs and
//! descends: an invalidated FD moves to the negative cover and its
//! minimal specializations become the new candidates, automatically
//! validated on the next level. Two accelerations apply:
//!
//! * **cluster pruning** (§4.2): only PLI clusters containing at least
//!   one newly inserted record can hide a new violation — sound because
//!   every validated FD held over the pre-batch records;
//! * **violation search** (§4.3): when >10 % of a level invalidates,
//!   per-candidate validation is losing to the churn, and cheap record
//!   pair comparisons find the remaining violations faster.

use crate::errors::{DynFdError, DynFdResult};
use crate::failpoint::FailPhase;
use crate::{BatchMetrics, DynFd};
use dynfd_common::{AttrSet, Fd, RecordId};
use dynfd_relation::{agree_set, AppliedBatch, ValidationJob, ValidationOptions};
use std::collections::BTreeMap;

impl DynFd {
    /// Processes the batch's inserts (Algorithm 2).
    pub(crate) fn process_inserts(
        &mut self,
        applied: &AppliedBatch,
        metrics: &mut BatchMetrics,
    ) -> DynFdResult<()> {
        let first_new = applied.first_new_id.ok_or_else(|| {
            DynFdError::invariant(
                "insert-phase",
                "batch reports surviving inserts but no first_new_id watermark",
            )
        })?;
        let opts = if self.config.cluster_pruning {
            ValidationOptions::delta(first_new)
        } else {
            ValidationOptions::full()
        };

        let mut level = 0usize;
        while self.fds.max_level().is_some_and(|max| level <= max) {
            // Lines 2-5: validate the level, collecting invalid FDs. All
            // cover-dependent filtering happens here on the coordinating
            // thread; only the resulting pure validation jobs fan out.
            let snapshot = self.fds.get_level(level);
            let mut groups: BTreeMap<AttrSet, AttrSet> = BTreeMap::new();
            for fd in &snapshot {
                groups
                    .entry(fd.lhs)
                    .or_insert_with(AttrSet::empty)
                    .insert(fd.rhs);
            }
            let mut total = 0usize;
            let mut jobs: Vec<ValidationJob> = Vec::with_capacity(groups.len());
            for (lhs, rhs_set) in groups {
                // §8 extension, key-constraint pruning: a declared key in
                // the LHS makes the FD unfalsifiable — skip it outright.
                if !lhs.is_disjoint(&self.config.known_keys) {
                    metrics.skipped_by_key_constraint += rhs_set.len();
                    continue;
                }
                // A violation search triggered at an earlier level may
                // have evicted parts of this snapshot already.
                let mut live: AttrSet = rhs_set
                    .iter()
                    .filter(|&r| self.fds.contains(lhs, r))
                    .collect();
                // §8 extension, update pruning: in a pure-update batch,
                // candidates none of whose attributes changed in any
                // update cannot change status.
                if self.config.update_pruning
                    && applied.update_only
                    && lhs.is_disjoint(&applied.touched_attrs)
                {
                    let affected = live.intersect(&applied.touched_attrs);
                    metrics.skipped_by_update_pruning += live.len() - affected.len();
                    live = affected;
                }
                if live.is_empty() {
                    continue;
                }
                metrics.fd_validations += 1;
                total += live.len();
                jobs.push((lhs, live));
            }

            // The level's jobs are independent (the relation is frozen and
            // verdicts are applied only after all of them return), so they
            // shard across workers; results come back in job order, which
            // keeps the verdict application — and hence the covers —
            // bit-identical to the sequential traversal. Under sampling
            // ordering (`ordering.rs`), likely-invalid jobs run first and
            // jobs whose candidates the early witnesses certainly evict
            // are skipped (`None`) — such a job would have reported its
            // full RHS set as violated and contributed only `continue`d
            // fold entries, so it counts fully toward the inefficiency
            // threshold and feeds nothing into the witness application.
            let mut invalid: Vec<(Fd, (RecordId, RecordId))> = Vec::new();
            let mut skipped_invalid = 0usize;
            let results = if self.ordering_enabled(jobs.len()) {
                self.run_level_ordered(
                    &jobs,
                    &opts,
                    first_new,
                    &applied.inserted_slots,
                    level,
                    metrics,
                )?
            } else {
                self.run_level_validations(&jobs, &opts)
                    .into_iter()
                    .map(Some)
                    .collect()
            };
            for (&(lhs, live), result) in jobs.iter().zip(&results) {
                let Some(result) = result else {
                    skipped_invalid += live.len();
                    continue;
                };
                metrics.clusters_pruned += result.stats.clusters_pruned;
                metrics.clusters_visited += result.stats.clusters_visited;
                for (r, a, b) in result.violations() {
                    invalid.push((Fd::new(lhs, r), (a, b)));
                }
            }

            // Lines 6-15, strengthened to full dependency induction
            // (Algorithm 3): the violating pair refutes not just the
            // failed candidate but everything its agree set covers, so
            // induce from the agree set — evicting every cover FD the
            // pair refutes at once and specializing along *escape*
            // attributes only. Specializing along all attributes (the
            // literal lines 10-15) regenerates children the same pair
            // still violates; on wide relations those guaranteed-invalid
            // candidates snowball level over level into millions of
            // useless validations.
            let invalid_count = invalid.len() + skipped_invalid;
            for (fd, pair) in invalid {
                if !self.fds.contains(fd.lhs, fd.rhs) {
                    continue; // an earlier witness this wave evicted it
                }
                let agree = agree_set(&self.rel, pair.0, pair.1).ok_or_else(|| {
                    DynFdError::invariant(
                        "insert-phase",
                        format!(
                            "violating pair ({}, {}) references dead records",
                            pair.0, pair.1
                        ),
                    )
                })?;
                // `fd.lhs ⊆ agree` and `fd.rhs ∉ agree` by construction,
                // so the induction always evicts `fd` itself.
                self.apply_non_fd_witness(agree, pair);
            }

            // Fault-injection check point: after this level's witnesses
            // are applied (where a real corruption bug would bite).
            self.failpoint_check(FailPhase::InsertPhase, metrics);

            // Lines 16-17: progressive violation search when the lattice
            // traversal became inefficient.
            if total > 0 && invalid_count as f64 / total as f64 > self.config.inefficiency_threshold
            {
                self.violation_search(&applied.inserted, &applied.inserted_slots, metrics)?;
            }
            level += 1;
        }
        Ok(())
    }
}
