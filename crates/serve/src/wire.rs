//! The framed wire protocol of the multi-tenant serve engine.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! frame   := len:u32 LE | payload           (len counts payload bytes)
//! request := tag:u8 | request_id:u64 | ...  (tag 1 open, 2 apply,
//!                                            3 shutdown, 4 close,
//!                                            5 hello)
//! response:= 0x80  | request_id:u64 | tenant:str | code:u8 |
//!            seq:u64 | added:u32 | removed:u32 |
//!            retry_after_ms:u64 | detail:str
//! ```
//!
//! The payload encoding reuses the hand-rolled binary codec of
//! `dynfd-persist` (little-endian fixed-width integers, `u32`
//! length-prefixed strings, the WAL's batch encoding), so a batch on
//! the wire is byte-identical to a batch in the log.
//!
//! Damage tolerance is part of the contract (fuzzed by
//! `dynfd-testkit`): a frame whose *length prefix* is intact but whose
//! payload does not decode is answered with a typed parse-error
//! response and the stream stays in sync — later well-formed frames
//! are still served. A damaged length prefix (torn read, or a length
//! above [`MAX_FRAME`]) desynchronizes the stream by definition; the
//! server answers once with a typed framing error and stops reading.
//!
//! Response `code` 0 means success; every failure carries the
//! stable exit-code discipline of
//! [`DynFdError::exit_code`](dynfd_core::DynFdError::exit_code) (3–12)
//! extended with the serve-layer codes of
//! [`ServeError::wire_code`](crate::ServeError::wire_code) (13–21).
//! Governance rejections (codes 13, 17, 19) additionally carry a
//! non-zero `retry_after_ms` hint; it is 0 everywhere else.
//!
//! Session resume (tag 5 + the `session_seq` field on `Apply`) layers
//! exactly-once semantics on top: a `Hello` frame names a client
//! session, sessioned applies carry a per-tenant monotone sequence
//! number, and the server deduplicates re-sent frames against a bounded
//! ack-replay window (see `crate::resume`). `session_seq` 0 means the
//! apply is unsessioned (the legacy at-most-once-per-frame contract).

use dynfd_persist::codec::{self, Reader};
use dynfd_relation::Batch;
use std::io::{self, Read, Write};

/// Hard upper bound on a frame's payload length (16 MiB). A length
/// prefix above this is treated as framing damage, not as a request to
/// allocate gigabytes.
pub const MAX_FRAME: u32 = 1 << 24;

/// Request tag: open (or recover) a tenant.
pub const TAG_OPEN: u8 = 1;
/// Request tag: apply a batch to a tenant.
pub const TAG_APPLY: u8 = 2;
/// Request tag: drain every queue and shut the server down.
pub const TAG_SHUTDOWN: u8 = 3;
/// Request tag: close (evict) one tenant — drain, persist, release.
pub const TAG_CLOSE: u8 = 4;
/// Request tag: bind this connection to a (possibly resumed) client
/// session for exactly-once apply semantics.
pub const TAG_HELLO: u8 = 5;
/// Response tag.
pub const TAG_RESPONSE: u8 = 0x80;

/// Response code for success.
pub const CODE_OK: u8 = 0;
/// Response code for a frame that did not parse (the wire face of the
/// `DynFdError::Parse` family / exit code 4).
pub const CODE_PARSE: u8 = 4;

/// One decoded client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Open tenant `tenant` with the given column names and initial
    /// rows, or recover it from its WAL directory if one exists (the
    /// columns must then match the durable schema).
    Open {
        /// Client-chosen id echoed in the response.
        request_id: u64,
        /// Tenant name (`[A-Za-z0-9_.-]+`, checked server-side).
        tenant: String,
        /// Column names of the tenant's relation.
        columns: Vec<String>,
        /// Initial rows (often empty; ignored when the tenant recovers).
        rows: Vec<Vec<String>>,
    },
    /// Apply one batch to an open tenant.
    Apply {
        /// Client-chosen id echoed in the response.
        request_id: u64,
        /// Target tenant name.
        tenant: String,
        /// Queue-wait deadline in milliseconds; 0 means "use the
        /// server's configured default" (which may be none). A job past
        /// its deadline is rejected before apply (code 18).
        deadline_ms: u64,
        /// Per-tenant session sequence number; 0 = unsessioned. A
        /// sessioned apply (after a `Hello`) must carry `highest + 1`;
        /// re-sends of already-settled seqs replay the recorded
        /// response instead of re-applying (code 20 on gaps).
        session_seq: u64,
        /// The batch, in the WAL's encoding.
        batch: Batch,
    },
    /// Drain and stop the server. Answered once, then the stream ends.
    Shutdown {
        /// Client-chosen id echoed in the response.
        request_id: u64,
    },
    /// Close (evict) one tenant: drain its queue, snapshot + fsync its
    /// durable state, release it. A later `Open` of the same name
    /// recovers it.
    Close {
        /// Client-chosen id echoed in the response.
        request_id: u64,
        /// The tenant to release.
        tenant: String,
    },
    /// Bind this connection to client session `session_id`. The success
    /// response's `seq` field carries the session epoch (1 = new
    /// session, >1 = resumed); after a `Hello`, applies with a non-zero
    /// `session_seq` get exactly-once dedup/replay semantics.
    Hello {
        /// Client-chosen id echoed in the response.
        request_id: u64,
        /// Client-chosen session name (same charset rules as tenants).
        session_id: String,
    },
}

impl Request {
    /// The request's client-chosen id.
    pub fn request_id(&self) -> u64 {
        match self {
            Request::Open { request_id, .. }
            | Request::Apply { request_id, .. }
            | Request::Shutdown { request_id }
            | Request::Close { request_id, .. }
            | Request::Hello { request_id, .. } => *request_id,
        }
    }
}

/// One server response; `code` 0 is success, anything else is the typed
/// wire error code (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request's id (0 when the id itself did not decode).
    pub request_id: u64,
    /// Echo of the tenant name (empty when it did not decode).
    pub tenant: String,
    /// 0 = ok; else the typed wire error code.
    pub code: u8,
    /// The tenant's durable sequence number after the request (0 on
    /// failure or for non-tenant requests).
    pub seq: u64,
    /// Minimal FDs added by an applied batch.
    pub added: u32,
    /// Minimal FDs removed by an applied batch.
    pub removed: u32,
    /// Machine-readable backoff hint in milliseconds; non-zero only on
    /// governance rejections (codes 13, 17, 19).
    pub retry_after_ms: u64,
    /// Human-readable detail: the error message, or empty on success.
    pub detail: String,
}

impl Response {
    /// A success response carrying batch-application results.
    pub fn ok(request_id: u64, tenant: &str, seq: u64, added: u32, removed: u32) -> Response {
        Response {
            request_id,
            tenant: tenant.to_string(),
            code: CODE_OK,
            seq,
            added,
            removed,
            retry_after_ms: 0,
            detail: String::new(),
        }
    }

    /// An error response with a typed code and diagnostic detail.
    pub fn error(request_id: u64, tenant: &str, code: u8, detail: impl Into<String>) -> Response {
        Response {
            request_id,
            tenant: tenant.to_string(),
            code,
            seq: 0,
            added: 0,
            removed: 0,
            retry_after_ms: 0,
            detail: detail.into(),
        }
    }

    /// Attaches the governance backoff hint.
    pub fn with_retry_after(mut self, retry_after_ms: u64) -> Response {
        self.retry_after_ms = retry_after_ms;
        self
    }
}

fn put_rows(out: &mut Vec<u8>, rows: &[Vec<String>]) {
    codec::put_u32(out, rows.len() as u32);
    for row in rows {
        codec::put_u32(out, row.len() as u32);
        for value in row {
            codec::put_str(out, value);
        }
    }
}

fn read_rows(r: &mut Reader<'_>) -> Result<Vec<Vec<String>>, String> {
    let nrows = r.count(4)?;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let ncols = r.count(4)?;
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(r.str()?);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Serializes a request into a frame payload (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Open {
            request_id,
            tenant,
            columns,
            rows,
        } => {
            out.push(TAG_OPEN);
            codec::put_u64(&mut out, *request_id);
            codec::put_str(&mut out, tenant);
            codec::put_u32(&mut out, columns.len() as u32);
            for c in columns {
                codec::put_str(&mut out, c);
            }
            put_rows(&mut out, rows);
        }
        Request::Apply {
            request_id,
            tenant,
            deadline_ms,
            session_seq,
            batch,
        } => {
            out.push(TAG_APPLY);
            codec::put_u64(&mut out, *request_id);
            codec::put_str(&mut out, tenant);
            codec::put_u64(&mut out, *deadline_ms);
            codec::put_u64(&mut out, *session_seq);
            codec::encode_batch(&mut out, batch);
        }
        Request::Shutdown { request_id } => {
            out.push(TAG_SHUTDOWN);
            codec::put_u64(&mut out, *request_id);
        }
        Request::Close { request_id, tenant } => {
            out.push(TAG_CLOSE);
            codec::put_u64(&mut out, *request_id);
            codec::put_str(&mut out, tenant);
        }
        Request::Hello {
            request_id,
            session_id,
        } => {
            out.push(TAG_HELLO);
            codec::put_u64(&mut out, *request_id);
            codec::put_str(&mut out, session_id);
        }
    }
    out
}

/// Parses a frame payload into a [`Request`].
///
/// On failure the error carries the *best-effort* request id — the id
/// decodes before anything variable-length, so a damaged tenant name or
/// batch still produces an error response the client can correlate.
/// Only when the damage hits the tag or the id itself does the id fall
/// back to 0.
pub fn decode_request(payload: &[u8]) -> Result<Request, (u64, String)> {
    let mut r = Reader::new(payload);
    let tag = r.u8().map_err(|e| (0, e))?;
    let request_id = r.u64().map_err(|e| (0, e))?;
    let fail = |e: String| (request_id, e);
    let req = match tag {
        TAG_OPEN => {
            let tenant = r.str().map_err(fail)?;
            let ncols = r.count(4).map_err(fail)?;
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                columns.push(r.str().map_err(fail)?);
            }
            let rows = read_rows(&mut r).map_err(fail)?;
            Request::Open {
                request_id,
                tenant,
                columns,
                rows,
            }
        }
        TAG_APPLY => {
            let tenant = r.str().map_err(fail)?;
            let deadline_ms = r.u64().map_err(fail)?;
            let session_seq = r.u64().map_err(fail)?;
            let batch = codec::decode_batch(&mut r).map_err(fail)?;
            Request::Apply {
                request_id,
                tenant,
                deadline_ms,
                session_seq,
                batch,
            }
        }
        TAG_SHUTDOWN => Request::Shutdown { request_id },
        TAG_CLOSE => {
            let tenant = r.str().map_err(fail)?;
            Request::Close { request_id, tenant }
        }
        TAG_HELLO => {
            let session_id = r.str().map_err(fail)?;
            Request::Hello {
                request_id,
                session_id,
            }
        }
        other => return Err((request_id, format!("unknown request tag {other}"))),
    };
    if !r.is_exhausted() {
        return Err((
            request_id,
            format!("{} trailing bytes after request", r.remaining()),
        ));
    }
    Ok(req)
}

/// Serializes a response into a frame payload (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(TAG_RESPONSE);
    codec::put_u64(&mut out, resp.request_id);
    codec::put_str(&mut out, &resp.tenant);
    out.push(resp.code);
    codec::put_u64(&mut out, resp.seq);
    codec::put_u32(&mut out, resp.added);
    codec::put_u32(&mut out, resp.removed);
    codec::put_u64(&mut out, resp.retry_after_ms);
    codec::put_str(&mut out, &resp.detail);
    out
}

/// Parses a frame payload into a [`Response`].
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    if tag != TAG_RESPONSE {
        return Err(format!(
            "expected response tag {TAG_RESPONSE:#x}, got {tag}"
        ));
    }
    let resp = Response {
        request_id: r.u64()?,
        tenant: r.str()?,
        code: r.u8()?,
        seq: r.u64()?,
        added: r.u32()?,
        removed: r.u32()?,
        retry_after_ms: r.u64()?,
        detail: r.str()?,
    };
    if !r.is_exhausted() {
        return Err(format!("{} trailing bytes after response", r.remaining()));
    }
    Ok(resp)
}

/// Why a frame could not be read off the stream.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended inside a frame (mid-length-prefix or
    /// mid-payload) — a torn frame.
    Torn {
        /// Bytes of the frame that did arrive.
        got: usize,
        /// Bytes the frame claimed (0 while still in the prefix).
        want: usize,
    },
    /// The length prefix exceeds the reader's frame bound (or is zero)
    /// — framing damage; the stream cannot be resynchronized.
    Oversized {
        /// The impossible length the prefix claimed.
        len: u32,
        /// The bound in force ([`MAX_FRAME`] or a tighter configured
        /// limit).
        max: u32,
    },
    /// A real I/O error from the underlying stream.
    Io(io::Error),
}

impl FrameError {
    /// Whether the underlying I/O error is a read timeout — the shape
    /// transports with an armed read deadline poll on.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Torn { got, want } => {
                write!(f, "torn frame: stream ended after {got} of {want} bytes")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "impossible frame length {len} (max {max})")
            }
            FrameError::Io(e) => write!(f, "i/o error reading frame: {e}"),
        }
    }
}

/// The one length-prefix codec: every transport — stdin/stdout, socket,
/// the testkit fuzzers and proxy — reads and writes frames through this
/// type, so framing behavior (torn/oversized handling, the size bound,
/// partial-read restarts) cannot drift between paths.
#[derive(Debug)]
pub struct FrameIo<S> {
    stream: S,
    max_frame: u32,
    frames_read: u64,
    frames_written: u64,
    bytes_read: u64,
    state: ReadState,
}

/// Where an in-progress frame read stands. Timeout errors
/// (`WouldBlock`/`TimedOut`) from a deadline-armed stream park the
/// state here so the next [`FrameIo::read`] resumes mid-frame instead
/// of losing the bytes already consumed.
#[derive(Debug)]
enum ReadState {
    Boundary,
    Prefix { buf: [u8; 4], got: usize },
    Payload { payload: Vec<u8>, filled: usize },
}

impl<S> FrameIo<S> {
    /// Wraps `stream` with the protocol-wide [`MAX_FRAME`] bound.
    pub fn new(stream: S) -> FrameIo<S> {
        FrameIo::with_max_frame(stream, MAX_FRAME)
    }

    /// Wraps `stream` with a custom (usually tighter) payload bound.
    /// The bound is clamped to [`MAX_FRAME`] and to at least 1.
    pub fn with_max_frame(stream: S, max_frame: u32) -> FrameIo<S> {
        FrameIo {
            stream,
            max_frame: max_frame.clamp(1, MAX_FRAME),
            frames_read: 0,
            frames_written: 0,
            bytes_read: 0,
            state: ReadState::Boundary,
        }
    }

    /// The payload bound in force.
    pub fn max_frame(&self) -> u32 {
        self.max_frame
    }

    /// Frames successfully read so far.
    pub fn frames_read(&self) -> u64 {
        self.frames_read
    }

    /// Raw bytes consumed off the stream — progress detection for idle
    /// accounting (advances even while parked mid-frame on a timeout).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Whether a timeout parked the reader in the middle of a frame
    /// (some bytes consumed, the frame incomplete).
    pub fn mid_frame(&self) -> bool {
        !matches!(self.state, ReadState::Boundary)
    }

    /// Frames successfully written so far.
    pub fn frames_written(&self) -> u64 {
        self.frames_written
    }

    /// Borrows the underlying stream.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Mutably borrows the underlying stream.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Unwraps back to the stream.
    pub fn into_inner(self) -> S {
        self.stream
    }
}

impl<S: Read> FrameIo<S> {
    /// Reads one frame payload. `Ok(None)` is a clean end of stream
    /// (EOF at a frame boundary); torn or oversized frames are typed
    /// errors, never panics or huge allocations.
    ///
    /// Timeout errors (`WouldBlock`/`TimedOut`) from a deadline-armed
    /// stream are **resumable**: the partial frame is parked and the
    /// next call picks up where it left off, so transports can poll a
    /// stop flag or an idle budget between ticks without losing sync
    /// (see [`FrameError::is_timeout`], [`FrameIo::mid_frame`]).
    pub fn read(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        loop {
            match &mut self.state {
                ReadState::Boundary => {
                    self.state = ReadState::Prefix {
                        buf: [0u8; 4],
                        got: 0,
                    };
                }
                ReadState::Prefix { buf, got } => {
                    while *got < 4 {
                        match self.stream.read(&mut buf[*got..]) {
                            Ok(0) if *got == 0 => {
                                self.state = ReadState::Boundary;
                                return Ok(None);
                            }
                            Ok(0) => {
                                let got = *got;
                                self.state = ReadState::Boundary;
                                return Err(FrameError::Torn { got, want: 0 });
                            }
                            Ok(n) => {
                                *got += n;
                                self.bytes_read += n as u64;
                            }
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(e) => return Err(FrameError::Io(e)),
                        }
                    }
                    let len = u32::from_le_bytes(*buf);
                    if len == 0 || len > self.max_frame {
                        self.state = ReadState::Boundary;
                        return Err(FrameError::Oversized {
                            len,
                            max: self.max_frame,
                        });
                    }
                    self.state = ReadState::Payload {
                        payload: vec![0u8; len as usize],
                        filled: 0,
                    };
                }
                ReadState::Payload { payload, filled } => {
                    while *filled < payload.len() {
                        match self.stream.read(&mut payload[*filled..]) {
                            Ok(0) => {
                                let err = FrameError::Torn {
                                    got: 4 + *filled,
                                    want: 4 + payload.len(),
                                };
                                self.state = ReadState::Boundary;
                                return Err(err);
                            }
                            Ok(n) => {
                                *filled += n;
                                self.bytes_read += n as u64;
                            }
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(e) => return Err(FrameError::Io(e)),
                        }
                    }
                    let done = std::mem::take(payload);
                    self.state = ReadState::Boundary;
                    self.frames_read += 1;
                    return Ok(Some(done));
                }
            }
        }
    }
}

impl<S: Write> FrameIo<S> {
    /// Writes one frame (length prefix + payload) and flushes.
    pub fn write(&mut self, payload: &[u8]) -> io::Result<()> {
        self.stream
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.stream.write_all(payload)?;
        self.stream.flush()?;
        self.frames_written += 1;
        Ok(())
    }
}

/// Reads one frame payload with the default [`MAX_FRAME`] bound (see
/// [`FrameIo::read`]).
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    FrameIo::new(reader).read()
}

/// Writes one frame (length prefix + payload) and flushes (see
/// [`FrameIo::write`]).
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    FrameIo::new(writer).write(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfd_common::RecordId;

    fn sample_requests() -> Vec<Request> {
        let mut batch = Batch::new();
        batch
            .insert(vec!["x", "ünïcode", ""])
            .delete(RecordId(7))
            .update(RecordId(3), vec!["a", "b", "c"]);
        vec![
            Request::Open {
                request_id: 1,
                tenant: "t0".into(),
                columns: vec!["a".into(), "b".into(), "c".into()],
                rows: vec![
                    vec!["1".into(), "2".into(), "3".into()],
                    vec!["4".into(), "5".into(), "6".into()],
                ],
            },
            Request::Apply {
                request_id: 2,
                tenant: "t0".into(),
                deadline_ms: 250,
                session_seq: 11,
                batch,
            },
            Request::Shutdown { request_id: 3 },
            Request::Close {
                request_id: 4,
                tenant: "t0".into(),
            },
            Request::Hello {
                request_id: 5,
                session_id: "sess-a".into(),
            },
        ]
    }

    #[test]
    fn request_roundtrip() {
        for req in sample_requests() {
            let payload = encode_request(&req);
            assert_eq!(decode_request(&payload), Ok(req));
        }
    }

    #[test]
    fn response_roundtrip() {
        let responses = [
            Response::ok(9, "tenant-a", 42, 3, 1),
            Response::error(0, "", CODE_PARSE, "unknown request tag 77"),
            Response::error(5, "t1", 13, "queue full: 8 of 8 in flight").with_retry_after(40),
            Response::error(6, "t2", 19, "tenant is being evicted").with_retry_after(1280),
        ];
        for resp in responses {
            let payload = encode_response(&resp);
            assert_eq!(decode_response(&payload), Ok(resp));
        }
    }

    #[test]
    fn truncated_request_payload_reports_best_effort_id() {
        let payload = encode_request(&sample_requests()[1]);
        // Any cut after tag+id (9 bytes) must still recover the id.
        for cut in 9..payload.len() {
            let (rid, _) = decode_request(&payload[..cut]).expect_err("truncation must fail");
            assert_eq!(rid, 2, "cut at {cut}");
        }
        // A cut inside tag/id falls back to 0.
        for cut in 0..9 {
            let (rid, _) = decode_request(&payload[..cut]).expect_err("truncation must fail");
            assert_eq!(rid, 0, "cut at {cut}");
        }
    }

    #[test]
    fn frame_stream_roundtrip_and_clean_eof() {
        let mut stream = Vec::new();
        let payloads: Vec<Vec<u8>> = sample_requests().iter().map(encode_request).collect();
        for p in &payloads {
            write_frame(&mut stream, p).expect("vec write");
        }
        let mut cursor = std::io::Cursor::new(stream);
        for p in &payloads {
            let got = read_frame(&mut cursor).expect("frame").expect("not eof");
            assert_eq!(&got, p);
        }
        assert!(read_frame(&mut cursor).expect("clean eof").is_none());
    }

    #[test]
    fn torn_and_oversized_frames_are_typed_errors() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &encode_request(&sample_requests()[0])).expect("vec write");
        // Every strict prefix that is not a frame boundary is torn.
        for cut in 1..stream.len() {
            let mut cursor = std::io::Cursor::new(&stream[..cut]);
            match read_frame(&mut cursor) {
                Err(FrameError::Torn { .. }) => {}
                other => panic!("cut {cut}: expected torn frame, got {other:?}"),
            }
        }
        let mut oversized = (MAX_FRAME + 1).to_le_bytes().to_vec();
        oversized.extend_from_slice(&[0u8; 16]);
        match read_frame(&mut std::io::Cursor::new(oversized)) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!((len, max), (MAX_FRAME + 1, MAX_FRAME))
            }
            other => panic!("expected oversized error, got {other:?}"),
        }
        // Zero-length frames cannot carry a tag: also framing damage.
        match read_frame(&mut std::io::Cursor::new(0u32.to_le_bytes().to_vec())) {
            Err(FrameError::Oversized { len, .. }) => assert_eq!(len, 0),
            other => panic!("expected oversized error for len 0, got {other:?}"),
        }
    }

    /// Yields one byte per call, interleaved with timeout errors — the
    /// shape of a deadline-armed socket receiving a slow trickle.
    struct StutterReader {
        data: Vec<u8>,
        pos: usize,
        tick: bool,
    }

    impl std::io::Read for StutterReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.tick = !self.tick;
            if self.tick {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
            }
            if self.pos == self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn timeouts_park_and_resume_mid_frame() {
        let payload = encode_request(&sample_requests()[3]);
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload).expect("vec write");
        let total = stream.len();
        let mut io = FrameIo::new(StutterReader {
            data: stream,
            pos: 0,
            tick: false,
        });
        let mut timeouts = 0usize;
        let got = loop {
            match io.read() {
                Ok(Some(p)) => break p,
                Ok(None) => panic!("eof before frame completed"),
                Err(e) if e.is_timeout() => timeouts += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(got, payload, "frame survives arbitrary timeout parking");
        assert_eq!(timeouts, total, "one tick per byte");
        assert!(!io.mid_frame());
        assert_eq!(io.bytes_read(), total as u64);
    }

    #[test]
    fn frameio_enforces_custom_bound_and_counts() {
        let mut stream = Vec::new();
        let small = encode_request(&sample_requests()[3]); // Close: tiny
        let large = encode_request(&sample_requests()[0]); // Open: bigger
        write_frame(&mut stream, &small).expect("vec write");
        write_frame(&mut stream, &large).expect("vec write");
        let bound = small.len() as u32;
        let mut io = FrameIo::with_max_frame(std::io::Cursor::new(stream), bound);
        assert_eq!(io.read().expect("small fits").expect("not eof"), small);
        assert_eq!(io.frames_read(), 1);
        match io.read() {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!((len, max), (large.len() as u32, bound));
            }
            other => panic!("expected oversized under custom bound, got {other:?}"),
        }
        // A failed read does not advance the counter.
        assert_eq!(io.frames_read(), 1);
    }
}
