//! Change-stream synthesis.

use crate::{DatasetProfile, TableSpec};
use dynfd_common::{RecordId, Schema};
use dynfd_relation::{Batch, ChangeOp, DynamicRelation};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// A fully materialized synthetic dataset: initial rows plus the change
/// history that will be replayed against them.
///
/// Record ids inside [`ChangeOp::Delete`] / [`ChangeOp::Update`] follow
/// the deterministic id assignment of
/// [`DynamicRelation`](dynfd_relation::DynamicRelation): initial rows
/// get `0..n`, each subsequent insert (and each update's new version)
/// the next id — the generator mirrors that assignment while choosing
/// its victims.
#[derive(Clone, Debug)]
pub struct GeneratedDataset {
    /// The relation schema.
    pub schema: Schema,
    /// Initial tuples (ids `0..initial_rows.len()`).
    pub initial_rows: Vec<Vec<String>>,
    /// The flat change stream, in order.
    pub changes: Vec<ChangeOp>,
    /// The profile this dataset was generated from.
    pub profile: DatasetProfile,
}

impl GeneratedDataset {
    /// Generates the dataset for `profile` (deterministic in the
    /// profile's seed).
    pub fn generate(profile: &DatasetProfile) -> Self {
        let spec: TableSpec = profile.table_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(profile.seed);
        let mut key_counter = 0u64;

        let initial_rows: Vec<Vec<String>> = (0..profile.initial_rows)
            .map(|_| spec.generate_row(&mut rng, &mut key_counter))
            .collect();

        // Mirror of the live relation: id → row values.
        let mut live: Vec<RecordId> = (0..initial_rows.len() as u64).map(RecordId).collect();
        let mut rows: HashMap<RecordId, Vec<String>> = initial_rows
            .iter()
            .enumerate()
            .map(|(i, r)| (RecordId(i as u64), r.clone()))
            .collect();
        let mut next_id = initial_rows.len() as u64;

        // Dirty-burst schedule: `bursts` windows of `burst_len` ops,
        // evenly spread across the history (see DatasetProfile::bursts).
        let burst_starts: Vec<usize> = (0..profile.bursts)
            .map(|k| (k + 1) * profile.changes / (profile.bursts + 1))
            .collect();
        let in_burst = |pos: usize| {
            burst_starts
                .iter()
                .any(|&s| pos >= s && pos < s + profile.burst_len)
        };

        let mut changes = Vec::with_capacity(profile.changes);
        while changes.len() < profile.changes {
            let dirty = in_burst(changes.len());
            let roll = rng.gen::<f64>() * 100.0;
            let op = if roll < profile.insert_pct || live.is_empty() {
                let mut row = spec.generate_row(&mut rng, &mut key_counter);
                if dirty {
                    spec.scramble_correlated(&mut row, &mut rng);
                }
                let rid = RecordId(next_id);
                next_id += 1;
                live.push(rid);
                rows.insert(rid, row.clone());
                ChangeOp::Insert(row)
            } else if roll < profile.insert_pct + profile.delete_pct {
                let idx = rng.gen_range(0..live.len());
                let rid = live.swap_remove(idx);
                rows.remove(&rid);
                ChangeOp::Delete(rid)
            } else {
                // Update: regenerate a few attributes of a live row.
                let idx = rng.gen_range(0..live.len());
                let rid = live.swap_remove(idx);
                let mut row = rows.remove(&rid).expect("live row mirrored");
                let touch = rng.gen_range(1..=profile.update_columns.max(1));
                let mut cols: Vec<usize> =
                    (0..touch).map(|_| rng.gen_range(0..spec.arity())).collect();
                cols.sort_unstable();
                cols.dedup();
                // Rewrite dependents along with their sources so the
                // updated row stays internally consistent (see
                // TableSpec::update_closure for why).
                let cols = spec.update_closure(&cols);
                spec.regenerate_columns(&mut row, &cols, &mut rng, &mut key_counter);
                if dirty {
                    spec.scramble_correlated(&mut row, &mut rng);
                }
                let new_rid = RecordId(next_id);
                next_id += 1;
                live.push(new_rid);
                rows.insert(new_rid, row.clone());
                ChangeOp::Update(rid, row)
            };
            changes.push(op);
        }

        GeneratedDataset {
            schema: spec.schema(),
            initial_rows,
            changes,
            profile: profile.clone(),
        }
    }

    /// Builds the initial [`DynamicRelation`].
    pub fn to_relation(&self) -> DynamicRelation {
        DynamicRelation::from_rows(self.schema.clone(), &self.initial_rows)
            .expect("generated rows match the schema")
    }

    /// The change stream chunked into fixed-size batches, optionally
    /// truncated to the first `limit` changes (the paper caps most
    /// experiments at 10,000 changes).
    pub fn batches(&self, batch_size: usize, limit: Option<usize>) -> Vec<Batch> {
        let n = limit.unwrap_or(self.changes.len()).min(self.changes.len());
        Batch::chunk(self.changes[..n].to_vec(), batch_size)
    }

    /// Observed change mix in percent (inserts, deletes, updates).
    pub fn change_mix(&self) -> (f64, f64, f64) {
        let n = self.changes.len().max(1) as f64;
        let ins = self
            .changes
            .iter()
            .filter(|c| matches!(c, ChangeOp::Insert(_)))
            .count();
        let del = self
            .changes
            .iter()
            .filter(|c| matches!(c, ChangeOp::Delete(_)))
            .count();
        let upd = self
            .changes
            .iter()
            .filter(|c| matches!(c, ChangeOp::Update(..)))
            .count();
        (
            ins as f64 / n * 100.0,
            del as f64 / n * 100.0,
            upd as f64 / n * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_PROFILES;

    fn small_profile() -> DatasetProfile {
        DatasetProfile {
            name: "unit",
            columns: 5,
            initial_rows: 30,
            changes: 200,
            insert_pct: 40.0,
            delete_pct: 20.0,
            update_pct: 40.0,
            update_columns: 2,
            seed: 11,
            bursts: 0,
            burst_len: 0,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = small_profile();
        let a = GeneratedDataset::generate(&p);
        let b = GeneratedDataset::generate(&p);
        assert_eq!(a.initial_rows, b.initial_rows);
        assert_eq!(a.changes, b.changes);
    }

    #[test]
    fn change_stream_replays_cleanly() {
        // The acid test: every Delete/Update must reference a live id at
        // its position in the stream — replay the whole history.
        let data = GeneratedDataset::generate(&small_profile());
        let mut rel = data.to_relation();
        for batch in data.batches(17, None) {
            rel.apply_batch(&batch)
                .expect("generated stream must replay");
        }
    }

    #[test]
    fn change_mix_approximates_profile() {
        let data = GeneratedDataset::generate(&DatasetProfile {
            changes: 2_000,
            ..small_profile()
        });
        let (ins, del, upd) = data.change_mix();
        assert!((ins - 40.0).abs() < 5.0, "inserts {ins}");
        assert!((del - 20.0).abs() < 5.0, "deletes {del}");
        assert!((upd - 40.0).abs() < 5.0, "updates {upd}");
    }

    #[test]
    fn batches_respect_limit_and_size() {
        let data = GeneratedDataset::generate(&small_profile());
        let batches = data.batches(50, Some(120));
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 50);
        assert_eq!(batches[2].len(), 20);
    }

    #[test]
    fn paper_profiles_generate_and_replay_scaled_down() {
        // Smoke-test every preset at reduced size so CI stays fast.
        for p in PAPER_PROFILES {
            let mut small = p.clone();
            small.initial_rows = small.initial_rows.min(100);
            small.changes = small.changes.min(150);
            let data = GeneratedDataset::generate(&small);
            assert_eq!(data.schema.arity(), p.columns, "{}", p.name);
            let mut rel = data.to_relation();
            for batch in data.batches(25, None) {
                rel.apply_batch(&batch)
                    .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            }
        }
    }
}
