//! Overload governance from the client's side of the wire: the
//! retry-after hints a saturated server hands out must be **monotone**
//! under sustained pressure (each consecutive rejection backs the
//! client off at least as far as the last — no oscillation a client
//! could exploit or be confused by), and a **compliant client** — one
//! that honors the hints via `submit_with_retry` — must eventually get
//! its batch applied once the pressure clears: governance degrades
//! service, it never livelocks it.

use dynfd_relation::Batch;
use dynfd_serve::{
    submit_with_retry, AdmissionPolicy, RetryPolicy, ServeConfig, ServeEngine, ServeError,
    TenantQuota,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A one-row insert batch over the anonymous 2-column schema.
fn tiny_batch(k: u64) -> Batch {
    let mut batch = Batch::new();
    batch.insert(vec![format!("a{k}"), format!("b{}", k % 3)]);
    batch
}

/// A paused single-slot engine with one tenant open: the first
/// admitted job plugs the gate, and every further submission is
/// governed traffic.
fn plugged_engine() -> ServeEngine {
    let engine = ServeEngine::new(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        policy: AdmissionPolicy::Shed,
        root: None,
        quota: TenantQuota::default(),
        start_paused: true,
        ..ServeConfig::default()
    });
    engine
        .open_tenant("t", dynfd_common::Schema::anonymous("t", 2), &[])
        .expect("open tenant");
    engine
        .submit("t", 1, tiny_batch(0), |_| {})
        .expect("the first job must be admitted into the empty gate");
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sustained overload: every rejection's hint is at least the
    /// previous one, the hint actually escalates, and it is capped.
    #[test]
    fn retry_hints_monotone_under_sustained_overload(rejections in 3u64..24) {
        let engine = plugged_engine();
        let mut hints = Vec::new();
        for i in 0..rejections {
            match engine.submit("t", 2 + i, tiny_batch(i), |_| {}) {
                Err(ServeError::Overloaded { retry_after_ms, .. }) => hints.push(retry_after_ms),
                other => {
                    return Err(TestCaseError::fail(format!(
                        "paused full gate must shed, got {other:?}"
                    )))
                }
            }
        }
        prop_assert_eq!(hints.len() as u64, rejections);
        prop_assert!(
            hints.windows(2).all(|w| w[1] >= w[0]),
            "hints must be monotone: {:?}",
            hints
        );
        prop_assert!(
            hints.last() > hints.first(),
            "sustained pressure must escalate the hint: {:?}",
            hints
        );
        prop_assert!(
            hints.iter().all(|&h| h > 0 && h <= 1280),
            "hints must stay within the documented cap: {:?}",
            hints
        );
        engine.shutdown();
    }

    /// Pressure clears mid-retry: a compliant client backing off on the
    /// server's hints eventually succeeds — no livelock, no starvation.
    #[test]
    fn compliant_client_succeeds_once_pressure_clears(
        seed in 0u64..1_000_000,
        clear_after_ms in 5u64..40,
    ) {
        let engine = Arc::new(plugged_engine());
        // Burn a few rejections so the client starts against a standing
        // streak, not a fresh one.
        for i in 0..4u64 {
            let _ = engine.submit("t", 100 + i, tiny_batch(i), |_| {});
        }
        let unplug = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(clear_after_ms));
                engine.resume();
            })
        };
        let policy = RetryPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(100),
            max_attempts: 16,
            seed,
        };
        let report = submit_with_retry(&engine, "t", 500, &tiny_batch(99), None, &policy);
        unplug.join().expect("unplug thread");
        prop_assert!(
            report.succeeded(),
            "compliant client must succeed after pressure clears: {:?} ({} attempts, hints {:?})",
            report.outcome,
            report.attempts,
            report.hints_ms
        );
        prop_assert!(
            report.hints_ms.windows(2).all(|w| w[1] >= w[0]),
            "hints observed by one client must be monotone: {:?}",
            report.hints_ms
        );
        engine.quiesce();
        let engine = Arc::try_unwrap(engine)
            .map_err(|_| TestCaseError::fail("engine still shared"))?;
        engine.shutdown();
    }
}
