//! Plain-text cover serialization.
//!
//! Profiled metadata outlives processes: a nightly job discovers the
//! FDs, a monitoring service bootstraps DynFD from them
//! ([`DynFd::with_cover`](../dynfd_core/struct.DynFd.html#method.with_cover)
//! exists for exactly this). The format is the one FD papers print —
//! one dependency per line, column *names* joined by commas:
//!
//! ```text
//! zip -> city
//! firstname,city -> zip
//! [] -> country        # empty LHS (constant column)
//! ```
//!
//! Lines starting with `#` and blank lines are ignored. Column names
//! are resolved against a [`Schema`], so files survive column
//! reordering as long as names are stable.

use crate::FdTree;
use dynfd_common::{AttrSet, DynError, Result, Schema};
use std::fmt::Write as _;
use std::path::Path;

/// Marker used for an empty left-hand side.
const EMPTY_LHS: &str = "[]";

/// Serializes a cover, one `lhs -> rhs` line per FD, deterministic
/// order.
pub fn write_cover(fds: &FdTree, schema: &Schema) -> String {
    let mut out = String::new();
    for fd in fds.all_fds() {
        if fd.lhs.is_empty() {
            let _ = write!(out, "{EMPTY_LHS}");
        } else {
            for (i, a) in fd.lhs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", schema.column_name(a));
            }
        }
        let _ = writeln!(out, " -> {}", schema.column_name(fd.rhs));
    }
    out
}

/// Parses a cover serialized by [`write_cover`] (or written by hand).
///
/// # Errors
///
/// Fails on unknown column names, missing `->`, trivial FDs
/// (`rhs ∈ lhs`), and duplicate entries.
pub fn read_cover(text: &str, schema: &Schema) -> Result<FdTree> {
    let mut fds = FdTree::new();
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (lhs_text, rhs_text) = line
            .split_once("->")
            .ok_or_else(|| DynError::Parse(format!("line {}: missing '->'", line_no + 1)))?;
        let rhs_name = rhs_text.trim();
        let rhs = schema.column_index(rhs_name).ok_or_else(|| {
            DynError::Parse(format!("line {}: unknown column {rhs_name:?}", line_no + 1))
        })?;
        let lhs_text = lhs_text.trim();
        let mut lhs = AttrSet::empty();
        if lhs_text != EMPTY_LHS {
            for name in lhs_text.split(',') {
                let name = name.trim();
                let attr = schema.column_index(name).ok_or_else(|| {
                    DynError::Parse(format!("line {}: unknown column {name:?}", line_no + 1))
                })?;
                lhs.insert(attr);
            }
        }
        if lhs.contains(rhs) {
            return Err(DynError::Parse(format!(
                "line {}: trivial FD ({rhs_name:?} appears on both sides)",
                line_no + 1
            )));
        }
        if !fds.add(lhs, rhs) {
            return Err(DynError::Parse(format!(
                "line {}: duplicate FD",
                line_no + 1
            )));
        }
    }
    Ok(fds)
}

/// Reads and parses a cover file. File-system failures surface as the
/// typed [`DynError::Io`] (CLI exit code 3), parse failures as
/// [`DynError::Parse`] — never a panic, whatever the file holds.
pub fn read_cover_file(path: &Path, schema: &Schema) -> Result<FdTree> {
    let text = std::fs::read_to_string(path)?;
    read_cover(&text, schema)
}

/// Serializes a cover and writes it to `path`, surfacing file-system
/// failures as the typed [`DynError::Io`].
pub fn write_cover_file(path: &Path, fds: &FdTree, schema: &Schema) -> Result<()> {
    std::fs::write(path, write_cover(fds, schema))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfd_common::Fd;

    fn schema() -> Schema {
        Schema::of("people", &["firstname", "lastname", "zip", "city"])
    }

    fn s(attrs: &[usize]) -> AttrSet {
        attrs.iter().copied().collect()
    }

    #[test]
    fn roundtrip() {
        let fds: FdTree = [
            Fd::new(s(&[2]), 3),
            Fd::new(s(&[0, 3]), 2),
            Fd::new(AttrSet::empty(), 1),
        ]
        .into_iter()
        .collect();
        let text = write_cover(&fds, &schema());
        let back = read_cover(&text, &schema()).unwrap();
        assert_eq!(back, fds);
    }

    #[test]
    fn format_is_human_readable() {
        let fds: FdTree = [Fd::new(s(&[0, 3]), 2)].into_iter().collect();
        assert_eq!(write_cover(&fds, &schema()), "firstname,city -> zip\n");
    }

    #[test]
    fn comments_blanks_and_whitespace() {
        let text = "\n# a comment\n  zip ->   city  # trailing\n\n[] -> lastname\n";
        let fds = read_cover(text, &schema()).unwrap();
        assert!(fds.contains(s(&[2]), 3));
        assert!(fds.contains(AttrSet::empty(), 1));
        assert_eq!(fds.len(), 2);
    }

    #[test]
    fn unknown_column_rejected() {
        let err = read_cover("zip -> nope\n", &schema()).unwrap_err();
        assert!(err.to_string().contains("nope"));
        let err = read_cover("ghost -> city\n", &schema()).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(
            read_cover("zip city\n", &schema()).is_err(),
            "missing arrow"
        );
        assert!(read_cover("zip -> zip\n", &schema()).is_err(), "trivial");
        assert!(
            read_cover("zip -> city\nzip -> city\n", &schema()).is_err(),
            "duplicate"
        );
    }

    #[test]
    fn survives_column_reordering() {
        let original = schema();
        let fds: FdTree = [Fd::new(s(&[2]), 3)].into_iter().collect(); // zip -> city
        let text = write_cover(&fds, &original);
        // Same columns, different order.
        let reordered = Schema::of("people", &["city", "zip", "firstname", "lastname"]);
        let back = read_cover(&text, &reordered).unwrap();
        assert!(back.contains(AttrSet::single(1), 0)); // zip (1) -> city (0)
    }
}
