//! Steady-state cost of one lattice level of validations with the PLI
//! intersection cache on versus off — the headline measurement for the
//! memoized-cache PR.
//!
//! The sweep crosses LHS arity (1/2/3) with worker count (1/2) over the
//! uniform 5,000-row relation of the validator benches. The cache-off
//! arm is the engine's plain path (`validate_many` behind the adaptive
//! small-level fallback); the cache-on arm runs `validate_many_cached`
//! against a warmed cache, i.e. the cost of every level after the first
//! visit. Results land in `BENCH_pr4.json` at the workspace root with
//! numeric context values and `"oversubscribed": true` annotations on
//! thread counts wider than the machine. `DYNFD_BENCH_SAMPLES`
//! overrides the sample count for CI smoke runs.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use dynfd_common::{AttrSet, Schema};
use dynfd_relation::{
    adaptive_workers, validate_many, validate_many_cached, DynamicRelation, PliCache,
    ValidationJob, ValidationOptions,
};

/// Cache budget for the sweep: large enough that the 6-column job lists
/// never evict, so the cache-on arm measures pure hit-path cost.
const BUDGET: usize = 64 << 20;

/// Mirrors `DynFdConfig::default().parallel_min_jobs`: levels smaller
/// than this run sequentially regardless of the requested thread count.
const MIN_JOBS: usize = 16;

/// 5,000 rows, 6 columns, evenly sized clusters on every column — the
/// uniform shape of the validator parallel sweep.
fn build_relation() -> DynamicRelation {
    let rows: Vec<Vec<String>> = (0..5_000)
        .map(|i| {
            vec![
                format!("g{}", i % 50),
                format!("h{}", i % 97),
                format!("p{}", i % 11),
                format!("q{}", i % 7),
                format!("r{}", i % 13),
                format!("m{}", i % 49),
            ]
        })
        .collect();
    DynamicRelation::from_rows(Schema::anonymous("cache_bench", 6), &rows)
        .expect("static bench rows are well-formed")
}

/// All `lhs -> rhs` validation jobs of the given LHS arity over a
/// 6-attribute schema — the shape of one lattice level.
fn level_jobs(arity: usize) -> Vec<ValidationJob> {
    let n = 6usize;
    let mut jobs = Vec::new();
    let mut emit = |lhs: AttrSet| {
        let rhs: AttrSet = (0..n).filter(|r| !lhs.contains(*r)).collect();
        jobs.push((lhs, rhs));
    };
    match arity {
        1 => (0..n).for_each(|a| emit(AttrSet::single(a))),
        2 => {
            for a in 0..n {
                for b in (a + 1)..n {
                    emit([a, b].into_iter().collect());
                }
            }
        }
        _ => {
            for a in 0..n {
                for b in (a + 1)..n {
                    for c in (b + 1)..n {
                        emit([a, b, c].into_iter().collect());
                    }
                }
            }
        }
    }
    jobs
}

fn bench_cache_sweep(c: &mut Criterion) {
    c.sample_size(dynfd_bench::bench_samples(15));
    let rel = build_relation();
    let full = ValidationOptions::full();
    for arity in [1usize, 2, 3] {
        let jobs = level_jobs(arity);
        let mut group = c.benchmark_group(format!("cache_level/uniform/arity{arity}"));

        // Warm the cache once outside the timer: the steady state of
        // revisiting a level across batches is all hits.
        let mut cache = PliCache::new(BUDGET);
        let _ = validate_many_cached(&rel, &jobs, &full, 1, MIN_JOBS, &mut cache);

        for threads in [1usize, 2] {
            group.bench_with_input(
                BenchmarkId::new("nocache/threads", threads),
                &threads,
                |b, &threads| {
                    let workers = adaptive_workers(threads, jobs.len(), MIN_JOBS);
                    b.iter(|| {
                        validate_many(&rel, black_box(&jobs), &full, workers)
                            .iter()
                            .map(|r| r.outcomes.len())
                            .sum::<usize>()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("cache/threads", threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        validate_many_cached(
                            &rel,
                            black_box(&jobs),
                            &full,
                            threads,
                            MIN_JOBS,
                            &mut cache,
                        )
                        .iter()
                        .map(|r| r.outcomes.len())
                        .sum::<usize>()
                    })
                },
            );
        }
        group.finish();

        let stats = cache.stats();
        println!(
            "cache_level/uniform/arity{arity}: {} entries, {} bytes, {} hits / {} misses / {} evictions",
            cache.len(),
            cache.bytes(),
            stats.hits,
            stats.misses,
            stats.evictions,
        );
    }
}

criterion_group!(benches, bench_cache_sweep);

fn main() {
    // Core count is sampled once at runner start, before any benchmark
    // executes — the oversubscription annotations describe the machine
    // the samples ran on, not the one visible at report-write time.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    benches();
    criterion::write_json_report(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr4.json"),
        &[
            ("bench", "PLI-cache level sweep".into()),
            ("rows", 5_000usize.into()),
            ("cache_budget_bytes", BUDGET.into()),
            ("available_cores", cores.into()),
        ],
        &|r| match criterion::requested_threads(&r.id) {
            Some(n) if n > cores => vec![("oversubscribed".into(), true.into())],
            _ => Vec::new(),
        },
    )
    .expect("write BENCH_pr4.json");
}
