//! The pruning-strategy compositions of the §6.5 ablation (rows of
//! Figures 8 and 9, lines of Figures 10 and 11).

use dynfd_core::{DynFdConfig, SearchMode};

/// The eight strategy sets evaluated in the paper, in Figure 8's row
/// order: `-` (baseline), `4.3`, `5.3`, `4.2`, `5.2`, `4.3+5.3`,
/// `4.3+5.3+4.2`, `4.3+5.3+4.2+5.2`.
pub fn strategy_sets() -> Vec<(&'static str, DynFdConfig)> {
    let base = DynFdConfig::baseline();
    vec![
        ("-", base),
        (
            "4.3",
            DynFdConfig {
                violation_search: SearchMode::Progressive,
                ..base
            },
        ),
        (
            "5.3",
            DynFdConfig {
                depth_first_search: true,
                ..base
            },
        ),
        (
            "4.2",
            DynFdConfig {
                cluster_pruning: true,
                ..base
            },
        ),
        (
            "5.2",
            DynFdConfig {
                validation_pruning: true,
                ..base
            },
        ),
        (
            "4.3+5.3",
            DynFdConfig {
                violation_search: SearchMode::Progressive,
                depth_first_search: true,
                ..base
            },
        ),
        (
            "4.3+5.3+4.2",
            DynFdConfig {
                violation_search: SearchMode::Progressive,
                depth_first_search: true,
                cluster_pruning: true,
                ..base
            },
        ),
        ("4.3+5.3+4.2+5.2", DynFdConfig::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_sets_with_paper_labels() {
        let sets = strategy_sets();
        assert_eq!(sets.len(), 8);
        for (label, config) in &sets {
            assert_eq!(&config.strategy_label(), label, "label must match config");
        }
        assert_eq!(sets[0].0, "-");
        assert_eq!(sets[7].0, "4.3+5.3+4.2+5.2");
    }
}
