//! Load generator for the multi-tenant serve engine.
//!
//! Drives N concurrent tenant streams through a [`ServeEngine`] worker
//! pool and reports per-batch submit→completion latency percentiles and
//! aggregate throughput, as JSON, for a grid of tenant shapes:
//!
//! ```text
//! cargo run --release -p dynfd-bench --bin serve_load -- \
//!     [--out BENCH_serve.json] [--tenants 1,8,64] [--batches 200] \
//!     [--workers 0] [--width 5] [--rows 32] [--seed 7]
//! ```
//!
//! Each tenant replays its own deterministic synthetic trace (`--width`
//! columns, `--rows` initial rows, `--batches` single-op batches of
//! ~50 % inserts / 25 % deletes / 25 % updates, seeded per tenant), so
//! every shape runs the identical per-tenant workload and the shapes
//! differ only in how many streams contend for the pool. Submission is
//! open-loop under the blocking admission policy: the full interleaved
//! backlog is offered as fast as admission allows, so latency includes
//! queue wait — the saturated-server number, which is the one that
//! matters for capacity planning. Workers default to the machine's
//! available parallelism (`--workers 0`).
//!
//! After the tenant-count grid, an **overload shape** runs: one hog
//! inflating past a calibrated byte quota beside 63 well-behaved
//! tenants under the shed policy, with the hog evicted live at the
//! end. The JSON records the shed/quota-rejection/eviction counts and
//! the bystander latency tail — the number governance exists to
//! protect.
//!
//! Finally a **socket shape** runs the grid's 8-tenant workload through
//! the real unix-socket transport: a `serve_listener` accept loop and
//! one closed-loop [`SessionClient`] per tenant, so the reported
//! latency is the full client-observed round trip (framing, session
//! bookkeeping, the connection writer, and the pool). Comparing it
//! against the in-process 8-tenant shape prices the transport itself.

use dynfd_core::{DynFd, DynFdConfig};
use dynfd_relation::{Batch, DynamicRelation};
use dynfd_serve::{
    serve_listener, AdmissionPolicy, ListenAddr, RetryPolicy, ServeConfig, ServeEngine, ServeError,
    SessionClient, TenantQuota, TransportConfig,
};
use dynfd_testkit::{Trace, TraceOp};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "usage: serve_load [--out PATH] [--tenants 1,8,64] [--batches N] \
                     [--workers N] [--width N] [--rows N] [--seed N]";

struct Args {
    out: String,
    tenants: Vec<usize>,
    batches: usize,
    workers: usize,
    width: usize,
    rows: usize,
    seed: u64,
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_serve.json".into(),
        tenants: vec![1, 8, 64],
        batches: 200,
        workers: 0,
        width: 5,
        rows: 32,
        seed: 7,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--out" => args.out = value("--out"),
            "--tenants" => {
                args.tenants = value("--tenants")
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| die("--tenants: bad count")))
                    .collect();
                if args.tenants.is_empty() {
                    die("--tenants: need at least one shape");
                }
            }
            "--batches" => args.batches = value("--batches").parse().unwrap_or_else(|_| die(USAGE)),
            "--workers" => args.workers = value("--workers").parse().unwrap_or_else(|_| die(USAGE)),
            "--width" => args.width = value("--width").parse().unwrap_or_else(|_| die(USAGE)),
            "--rows" => args.rows = value("--rows").parse().unwrap_or_else(|_| die(USAGE)),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| die(USAGE)),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    if args.batches == 0 || args.width < 2 {
        die("--batches must be positive and --width at least 2");
    }
    args
}

fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A deterministic synthetic tenant workload: `batches` single-op
/// batches over a `width`-column relation with column domains that
/// shrink left to right (so real FDs appear and churn as rows come and
/// go). Hand-built rather than `Trace::for_case` so the batch count is
/// an exact knob instead of a draw.
fn synthetic_trace(seed: u64, width: usize, rows: usize, batches: usize) -> Trace {
    let row = |k: u64| -> Vec<String> {
        (0..width)
            .map(|c| {
                let domain = 2u64 << (width - c).min(12);
                format!("v{}", splitmix(k ^ (c as u64) << 40) % domain)
            })
            .collect()
    };
    let initial_rows: Vec<Vec<String>> = (0..rows as u64).map(|i| row(seed ^ i)).collect();
    let mut next_key = rows as u64;
    let ops: Vec<TraceOp> = (0..batches as u64)
        .map(|i| match splitmix(seed ^ 0xB00C ^ i) % 4 {
            0 | 1 => {
                next_key += 1;
                TraceOp::Insert(row(seed ^ next_key))
            }
            2 => TraceOp::DeleteNth(splitmix(seed ^ i) as usize),
            _ => {
                next_key += 1;
                TraceOp::UpdateNth(splitmix(seed ^ i) as usize, row(seed ^ next_key))
            }
        })
        .collect();
    Trace {
        seed,
        profile: "serve-load".into(),
        schema: dynfd_common::Schema::anonymous("load", width),
        initial_rows,
        ops,
        batch_size: 1,
    }
}

struct ShapeResult {
    tenants: usize,
    workers: usize,
    batches: u64,
    wall: Duration,
    latencies: Vec<Duration>,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn run_shape(args: &Args, tenants: usize) -> ShapeResult {
    let traces: Vec<(String, Trace)> = (0..tenants)
        .map(|t| {
            let name = format!("t{t}");
            let trace = synthetic_trace(
                args.seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15),
                args.width,
                args.rows,
                args.batches,
            );
            (name, trace)
        })
        .collect();
    let engine = Arc::new(ServeEngine::new(ServeConfig {
        workers: args.workers,
        queue_capacity: 256,
        policy: AdmissionPolicy::Block,
        root: None,
        ..ServeConfig::default()
    }));
    for (name, trace) in &traces {
        engine
            .open_tenant(name, trace.schema.clone(), &trace.initial_rows)
            .unwrap_or_else(|e| {
                eprintln!("open {name}: {e}");
                std::process::exit(1);
            });
    }

    let latencies: Arc<Mutex<Vec<Duration>>> = Arc::default();
    let failures = Arc::new(AtomicU64::new(0));
    let mut streams: Vec<(&str, std::vec::IntoIter<dynfd_relation::Batch>)> = traces
        .iter()
        .map(|(name, trace)| (name.as_str(), trace.to_batches().into_iter()))
        .collect();
    let start = Instant::now();
    let mut request_id = 0u64;
    loop {
        let mut any = false;
        for (name, stream) in &mut streams {
            let Some(batch) = stream.next() else { continue };
            any = true;
            request_id += 1;
            let sink = Arc::clone(&latencies);
            let failed = Arc::clone(&failures);
            engine
                .submit(name, request_id, batch, move |reply| {
                    if reply.outcome.is_err() {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                    sink.lock().unwrap().push(reply.latency);
                })
                .unwrap_or_else(|e| {
                    eprintln!("submit to {name}: {e}");
                    std::process::exit(1);
                });
        }
        if !any {
            break;
        }
    }
    engine.quiesce();
    let wall = start.elapsed();
    if failures.load(Ordering::Relaxed) != 0 {
        eprintln!(
            "{} batches failed — synthetic workloads must replay cleanly",
            failures.load(Ordering::Relaxed)
        );
        std::process::exit(1);
    }
    let workers = engine.worker_count();
    let mut latencies = std::mem::take(&mut *latencies.lock().unwrap());
    latencies.sort();
    ShapeResult {
        tenants,
        workers,
        batches: request_id,
        wall,
        latencies,
    }
}

/// Counters from the governed-overload shape.
struct OverloadResult {
    tenants: usize,
    workers: usize,
    hog_quota_bytes: u64,
    hog_submitted: u64,
    hog_admitted: u64,
    shed: u64,
    quota_rejected: u64,
    evictions: u64,
    apply_rejected: u64,
    bystander_batches: u64,
    wall: Duration,
    bystander_latencies: Vec<Duration>,
}

/// The hog's workload: insert-only batches of wide unique values, so
/// its dictionary and PLIs inflate monotonically — the memory shape a
/// byte quota exists to stop.
fn hog_stream(batches: usize) -> (dynfd_common::Schema, Vec<Batch>) {
    let schema = dynfd_common::Schema::anonymous("hog", 6);
    let mut counter = 0u64;
    let stream = (0..batches)
        .map(|_| {
            let mut batch = Batch::new();
            for _ in 0..32 {
                counter += 1;
                batch.insert((0..6).map(|c| format!("hog-{c}-{counter:012}")).collect());
            }
            batch
        })
        .collect();
    (schema, stream)
}

/// The governed-overload shape: one hog inflating past a byte quota
/// beside 63 well-behaved tenants, under the shed policy with a small
/// queue — the saturated-and-governed server. Reports the hog's
/// quota-rejection count, pool-wide sheds, and the *bystander* latency
/// tail (the number the quota exists to protect); the hog is evicted
/// live at the end of the run so the eviction path is on the record
/// too.
fn run_overload(args: &Args) -> OverloadResult {
    const BYSTANDERS: usize = 63;
    let (hog_schema, hog_batches) = hog_stream(args.batches);

    // Calibrate the quota from standalone replays: half the hog's final
    // footprint (the back half of its stream must be refused), floored
    // at twice a bystander's final footprint (no bystander trips it).
    let bystander_trace = synthetic_trace(args.seed, args.width, args.rows, args.batches);
    let mut oracle = DynFd::new(bystander_trace.to_relation(), DynFdConfig::default());
    for batch in bystander_trace.to_batches() {
        oracle.apply_batch(&batch).unwrap_or_else(|e| {
            eprintln!("overload calibration replay: {e}");
            std::process::exit(1);
        });
    }
    let bystander_peak = oracle.resident_bytes();
    let no_rows: &[Vec<String>] = &[];
    let hog_relation =
        DynamicRelation::from_rows(hog_schema.clone(), no_rows).unwrap_or_else(|e| {
            eprintln!("overload hog relation: {e}");
            std::process::exit(1);
        });
    let mut hog_oracle = DynFd::new(hog_relation, DynFdConfig::default());
    let mut footprints = Vec::with_capacity(hog_batches.len());
    for batch in &hog_batches {
        hog_oracle.apply_batch(batch).unwrap_or_else(|e| {
            eprintln!("overload hog replay: {e}");
            std::process::exit(1);
        });
        footprints.push(hog_oracle.resident_bytes());
    }
    let quota = footprints[footprints.len() / 2].max(bystander_peak * 2) as u64;

    let traces: Vec<(String, Trace)> = (0..BYSTANDERS)
        .map(|t| {
            let name = format!("t{t}");
            let trace = synthetic_trace(
                args.seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15),
                args.width,
                args.rows,
                args.batches,
            );
            (name, trace)
        })
        .collect();
    let engine = Arc::new(ServeEngine::new(ServeConfig {
        workers: args.workers,
        queue_capacity: 64,
        policy: AdmissionPolicy::Shed,
        root: None,
        quota: TenantQuota {
            max_resident_bytes: Some(quota),
            max_cpu: None,
        },
        ..ServeConfig::default()
    }));
    for (name, trace) in &traces {
        engine
            .open_tenant(name, trace.schema.clone(), &trace.initial_rows)
            .unwrap_or_else(|e| {
                eprintln!("open {name}: {e}");
                std::process::exit(1);
            });
    }
    engine
        .open_tenant("hog", hog_schema, no_rows)
        .unwrap_or_else(|e| {
            eprintln!("open hog: {e}");
            std::process::exit(1);
        });

    let bystander_latencies: Arc<Mutex<Vec<Duration>>> = Arc::default();
    // Shedding a stateful stream leaves gaps: a later delete/update can
    // land on a row a shed insert never created and draw a typed engine
    // rejection. Under the shed policy that is expected fallout, so it
    // is counted, not fatal.
    let apply_rejected = Arc::new(AtomicU64::new(0));
    let start = Instant::now();

    // The hog runs closed-loop on its own thread — it waits for each
    // ack, so its cached footprint is current at every admission and
    // the quota trips deterministically once the footprint crosses it
    // (an open-loop hog would outrun the post-apply accounting).
    let hog_thread = {
        let engine = Arc::clone(&engine);
        let rejected = Arc::clone(&apply_rejected);
        std::thread::spawn(move || {
            let mut submitted = 0u64;
            let mut admitted = 0u64;
            let mut quota = 0u64;
            let mut shed = 0u64;
            for batch in hog_batches {
                submitted += 1;
                let (tx, rx) = std::sync::mpsc::channel();
                let rejected = Arc::clone(&rejected);
                // Ids above 1e9 keep the hog's space disjoint from the
                // bystander pump on the main thread.
                let outcome = engine.submit("hog", 1_000_000_000 + submitted, batch, move |r| {
                    if r.outcome.is_err() {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    let _ = tx.send(());
                });
                match outcome {
                    Ok(()) => {
                        admitted += 1;
                        let _ = rx.recv();
                    }
                    Err(ServeError::Overloaded { .. }) => shed += 1,
                    Err(ServeError::QuotaExceeded { .. }) => quota += 1,
                    Err(e) => {
                        eprintln!("overload submit to hog: {e}");
                        std::process::exit(1);
                    }
                }
            }
            (submitted, admitted, quota, shed)
        })
    };

    let mut streams: Vec<(&str, std::vec::IntoIter<Batch>)> = traces
        .iter()
        .map(|(name, trace)| (name.as_str(), trace.to_batches().into_iter()))
        .collect();
    let mut shed = 0u64;
    let mut bystander_batches = 0u64;
    let mut request_id = 0u64;
    loop {
        let mut any = false;
        for (name, stream) in &mut streams {
            let Some(batch) = stream.next() else { continue };
            any = true;
            request_id += 1;
            bystander_batches += 1;
            let sink = Arc::clone(&bystander_latencies);
            let rejected = Arc::clone(&apply_rejected);
            let outcome = engine.submit(name, request_id, batch, move |reply| {
                if reply.outcome.is_err() {
                    rejected.fetch_add(1, Ordering::Relaxed);
                }
                sink.lock().unwrap().push(reply.latency);
            });
            match outcome {
                Ok(()) => {}
                Err(ServeError::Overloaded { .. }) => shed += 1,
                Err(e) => {
                    eprintln!("overload submit to {name}: {e}");
                    std::process::exit(1);
                }
            }
        }
        if !any {
            break;
        }
    }
    let (hog_submitted, hog_admitted, quota_rejected, hog_shed) =
        hog_thread.join().unwrap_or_else(|_| {
            eprintln!("overload hog thread panicked");
            std::process::exit(1);
        });
    shed += hog_shed;
    engine.quiesce();
    let wall = start.elapsed();
    // The hog pays for its behavior: a live eviction, on the record.
    engine.close_tenant("hog").unwrap_or_else(|e| {
        eprintln!("evict hog: {e}");
        std::process::exit(1);
    });
    let global = engine.global_metrics();
    let workers = engine.worker_count();
    let mut bystander_latencies = std::mem::take(&mut *bystander_latencies.lock().unwrap());
    bystander_latencies.sort();
    OverloadResult {
        tenants: BYSTANDERS + 1,
        workers,
        hog_quota_bytes: quota,
        hog_submitted,
        hog_admitted,
        // The aggregate counters are authoritative (they survive the
        // hog's eviction); the loop-local counts cross-check them.
        shed: global.totals.shed.max(shed),
        quota_rejected: global.totals.quota_rejected.max(quota_rejected),
        evictions: global.evictions,
        apply_rejected: apply_rejected.load(Ordering::Relaxed),
        bystander_batches,
        wall,
        bystander_latencies,
    }
}

/// Counters from the socket-transport shape.
struct SocketResult {
    tenants: usize,
    workers: usize,
    batches: u64,
    wall: Duration,
    /// Client-observed apply round trips (submit → ack), all tenants.
    round_trips: Vec<Duration>,
    connections: u64,
    sessions: u64,
    frames: u64,
}

/// The socket shape: the 8-tenant grid workload served over a real
/// unix socket, one session client per tenant on its own thread. Each
/// client is closed-loop (one in-flight apply), so the round trip it
/// measures is transport + queue wait + apply — the latency a remote
/// caller actually sees.
fn run_socket(args: &Args) -> SocketResult {
    const TENANTS: usize = 8;
    let traces: Vec<(String, Trace)> = (0..TENANTS)
        .map(|t| {
            let name = format!("t{t}");
            let trace = synthetic_trace(
                args.seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15),
                args.width,
                args.rows,
                args.batches,
            );
            (name, trace)
        })
        .collect();
    let engine = Arc::new(ServeEngine::new(ServeConfig {
        workers: args.workers,
        queue_capacity: 256,
        policy: AdmissionPolicy::Block,
        root: None,
        ..ServeConfig::default()
    }));
    let sock = std::env::temp_dir().join(format!("dynfd-bench-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let listener = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let addr = ListenAddr::Unix(sock.clone());
        std::thread::spawn(move || {
            serve_listener(&engine, &addr, TransportConfig::default(), || {
                stop.load(Ordering::SeqCst)
            })
        })
    };
    for _ in 0..400 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let start = Instant::now();
    let clients: Vec<_> = traces
        .into_iter()
        .map(|(name, trace)| {
            let addr = ListenAddr::Unix(sock.clone());
            std::thread::spawn(move || {
                let mut client =
                    SessionClient::new(addr, format!("bench-{name}"), RetryPolicy::default());
                client
                    .open(&name, trace.schema.columns(), &trace.initial_rows)
                    .unwrap_or_else(|e| {
                        eprintln!("socket open {name}: {e}");
                        std::process::exit(1);
                    });
                let mut round_trips = Vec::new();
                for batch in trace.to_batches() {
                    let sent = Instant::now();
                    let resp = client.apply(&name, &batch, 0).unwrap_or_else(|e| {
                        eprintln!("socket apply to {name}: {e}");
                        std::process::exit(1);
                    });
                    if resp.code != 0 {
                        eprintln!(
                            "socket apply to {name}: code {} ({})",
                            resp.code, resp.detail
                        );
                        std::process::exit(1);
                    }
                    round_trips.push(sent.elapsed());
                }
                round_trips
            })
        })
        .collect();
    let mut round_trips = Vec::new();
    for client in clients {
        round_trips.extend(client.join().unwrap_or_else(|_| {
            eprintln!("socket client thread panicked");
            std::process::exit(1);
        }));
    }
    let wall = start.elapsed();
    stop.store(true, Ordering::SeqCst);
    let report = listener
        .join()
        .unwrap_or_else(|_| {
            eprintln!("socket listener thread panicked");
            std::process::exit(1);
        })
        .unwrap_or_else(|e| {
            eprintln!("socket listener: {e}");
            std::process::exit(1);
        });
    let workers = engine.worker_count();
    let batches = round_trips.len() as u64;
    round_trips.sort();
    SocketResult {
        tenants: TENANTS,
        workers,
        batches,
        wall,
        round_trips,
        connections: report.connections,
        sessions: report.sessions,
        frames: report.frames,
    }
}

fn main() {
    let args = parse_args();
    let mut shapes = Vec::new();
    for &tenants in &args.tenants {
        let result = run_shape(&args, tenants);
        let throughput = result.batches as f64 / result.wall.as_secs_f64();
        eprintln!(
            "{:>3} tenants x {} batches on {} workers: {:>9.0} batches/s, \
             p50 {:?}, p99 {:?}",
            result.tenants,
            args.batches,
            result.workers,
            throughput,
            percentile(&result.latencies, 0.50),
            percentile(&result.latencies, 0.99),
        );
        shapes.push(result);
    }

    let overload = run_overload(&args);
    eprintln!(
        "overload 1 hog + {} tenants on {} workers: hog {}/{} admitted, \
         {} quota-rejected, {} shed, {} evicted, bystander p99 {:?}",
        overload.tenants - 1,
        overload.workers,
        overload.hog_admitted,
        overload.hog_submitted,
        overload.quota_rejected,
        overload.shed,
        overload.evictions,
        percentile(&overload.bystander_latencies, 0.99),
    );

    let socket = run_socket(&args);
    eprintln!(
        "socket {} tenants x {} batches on {} workers: {:>9.0} batches/s, \
         rtt p50 {:?}, p99 {:?} ({} conns, {} sessions, {} frames)",
        socket.tenants,
        args.batches,
        socket.workers,
        socket.batches as f64 / socket.wall.as_secs_f64(),
        percentile(&socket.round_trips, 0.50),
        percentile(&socket.round_trips, 0.99),
        socket.connections,
        socket.sessions,
        socket.frames,
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"multi-tenant serve load\",\n");
    json.push_str(&format!("  \"batches_per_tenant\": {},\n", args.batches));
    json.push_str(&format!("  \"width\": {},\n", args.width));
    json.push_str(&format!("  \"initial_rows\": {},\n", args.rows));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!(
        "  \"available_cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str("  \"shapes\": [\n");
    for (i, s) in shapes.iter().enumerate() {
        let sep = if i + 1 == shapes.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"tenants\": {}, \"workers\": {}, \"batches\": {}, \
             \"wall_ms\": {:.1}, \"throughput_batches_per_sec\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}}}{sep}\n",
            s.tenants,
            s.workers,
            s.batches,
            s.wall.as_secs_f64() * 1e3,
            s.batches as f64 / s.wall.as_secs_f64(),
            percentile(&s.latencies, 0.50).as_secs_f64() * 1e6,
            percentile(&s.latencies, 0.99).as_secs_f64() * 1e6,
            s.latencies
                .last()
                .copied()
                .unwrap_or_default()
                .as_secs_f64()
                * 1e6,
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"overload\": {{\"tenants\": {}, \"workers\": {}, \
         \"hog_quota_bytes\": {}, \"hog_submitted\": {}, \"hog_admitted\": {}, \
         \"shed\": {}, \"quota_rejected\": {}, \"evictions\": {}, \
         \"apply_rejected\": {}, \"bystander_batches\": {}, \"wall_ms\": {:.1}, \
         \"bystander_p50_us\": {:.1}, \"bystander_p99_us\": {:.1}}},\n",
        overload.tenants,
        overload.workers,
        overload.hog_quota_bytes,
        overload.hog_submitted,
        overload.hog_admitted,
        overload.shed,
        overload.quota_rejected,
        overload.evictions,
        overload.apply_rejected,
        overload.bystander_batches,
        overload.wall.as_secs_f64() * 1e3,
        percentile(&overload.bystander_latencies, 0.50).as_secs_f64() * 1e6,
        percentile(&overload.bystander_latencies, 0.99).as_secs_f64() * 1e6,
    ));
    json.push_str(&format!(
        "  \"socket\": {{\"tenants\": {}, \"workers\": {}, \"batches\": {}, \
         \"wall_ms\": {:.1}, \"throughput_batches_per_sec\": {:.1}, \
         \"rtt_p50_us\": {:.1}, \"rtt_p99_us\": {:.1}, \"connections\": {}, \
         \"sessions\": {}, \"frames\": {}}}\n",
        socket.tenants,
        socket.workers,
        socket.batches,
        socket.wall.as_secs_f64() * 1e3,
        socket.batches as f64 / socket.wall.as_secs_f64(),
        percentile(&socket.round_trips, 0.50).as_secs_f64() * 1e6,
        percentile(&socket.round_trips, 0.99).as_secs_f64() * 1e6,
        socket.connections,
        socket.sessions,
        socket.frames,
    ));
    json.push_str("}\n");

    let mut file = std::fs::File::create(&args.out).unwrap_or_else(|e| {
        eprintln!("create {}: {e}", args.out);
        std::process::exit(1);
    });
    file.write_all(json.as_bytes()).unwrap_or_else(|e| {
        eprintln!("write {}: {e}", args.out);
        std::process::exit(1);
    });
    println!("wrote {}", args.out);
}
