//! A tenant: one independent relation with its own engine and queue
//! accounting.
//!
//! Tenants come in two backends. **Durable** tenants own an
//! [`FdEngine`] rooted in their own WAL directory (`<root>/<name>/`) —
//! re-opening a tenant recovers and resumes, and a server crash loses
//! at most batches never acknowledged. **Memory** tenants wrap a plain
//! [`DynFd`] for pure-throughput workloads (the load generator's
//! in-memory mode); they track their own sequence number so replies
//! look the same either way.
//!
//! The backend sits behind a `Mutex`, but it is not contended in steady
//! state: a tenant maps to exactly one worker shard, so only that shard
//! ever applies batches to it. The lock's real job is *poisoning* — a
//! panic that escapes the engine's own transactional boundary poisons
//! this tenant's lock only, and every later batch for the tenant is
//! answered with a typed error while all other tenants keep serving
//! (the isolation property `tests/tenant_isolation.rs` pins).

use crate::metrics::TenantMetrics;
use crate::queue::Gate;
use crate::ServeError;
use dynfd_core::{BatchResult, DynFd, DynFdError, DynFdResult};
use dynfd_persist::FdEngine;
use dynfd_relation::Batch;
use std::sync::Mutex;

/// The engine behind a tenant (see module docs).
pub(crate) enum Backend {
    /// Durable: WAL + snapshots in the tenant's own directory.
    Durable(FdEngine),
    /// In-memory engine plus its applied-batch counter.
    Memory(DynFd, u64),
}

impl Backend {
    /// Applies one batch and advances the sequence number.
    pub fn apply(&mut self, batch: &Batch) -> DynFdResult<BatchResult> {
        match self {
            Backend::Durable(engine) => engine.apply_batch(batch),
            Backend::Memory(engine, seq) => {
                let result = engine.apply_batch(batch)?;
                *seq += 1;
                Ok(result)
            }
        }
    }

    /// The wrapped in-memory engine.
    pub fn dynfd(&self) -> &DynFd {
        match self {
            Backend::Durable(engine) => engine.dynfd(),
            Backend::Memory(engine, _) => engine,
        }
    }

    /// Mutable access to the wrapped engine (failpoint arming).
    pub fn dynfd_mut(&mut self) -> &mut DynFd {
        match self {
            Backend::Durable(engine) => engine.dynfd_mut(),
            Backend::Memory(engine, _) => engine,
        }
    }

    /// Sequence number of the last applied batch.
    pub fn seq(&self) -> u64 {
        match self {
            Backend::Durable(engine) => engine.seq(),
            Backend::Memory(_, seq) => *seq,
        }
    }

    /// Fsyncs the WAL tail (no-op for memory tenants).
    pub fn sync(&mut self) -> std::io::Result<()> {
        match self {
            Backend::Durable(engine) => engine.sync_all(),
            Backend::Memory(..) => Ok(()),
        }
    }
}

/// One registered tenant.
pub(crate) struct Tenant {
    /// The tenant's wire name.
    pub name: String,
    /// Index of the worker shard that owns this tenant.
    pub shard: usize,
    /// The engine, locked per batch by the owning shard.
    pub backend: Mutex<Backend>,
    /// Admission gate bounding in-flight batches.
    pub gate: Gate,
    /// Telemetry.
    pub metrics: TenantMetrics,
}

impl Tenant {
    pub fn new(name: String, shard: usize, backend: Backend) -> Tenant {
        Tenant {
            name,
            shard,
            backend: Mutex::new(backend),
            gate: Gate::new(),
            metrics: TenantMetrics::default(),
        }
    }

    /// Runs `f` on the tenant's engine, turning a poisoned lock (an
    /// earlier escaped panic) into the typed per-tenant error instead of
    /// propagating the poison.
    pub fn with_backend<R>(&self, f: impl FnOnce(&mut Backend) -> R) -> Result<R, ServeError> {
        match self.backend.lock() {
            Ok(mut backend) => Ok(f(&mut backend)),
            Err(_) => Err(ServeError::Engine(DynFdError::PhasePanicked {
                phase: "serve-worker",
                detail: format!("tenant {:?} is poisoned by an earlier panic", self.name),
            })),
        }
    }
}

/// Validates a tenant name for use as a directory component: non-empty,
/// at most 128 bytes, `[A-Za-z0-9_.-]` only, and not `.`/`..`. Keeps
/// wire-supplied names from escaping the durable root.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name != "."
        && name != ".."
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_names_cannot_traverse_paths() {
        for good in ["t0", "orders-2026", "a.b_c", "X"] {
            assert!(valid_tenant_name(good), "{good:?} should be valid");
        }
        for bad in ["", ".", "..", "a/b", "a\\b", "a b", "é", &"x".repeat(129)] {
            assert!(!valid_tenant_name(bad), "{bad:?} should be rejected");
        }
    }
}
