//! The incrementally maintained relation representation.

use crate::batch::{AppliedBatch, Batch, ChangeOp};
use crate::dictionary::{Dictionary, ValueId};
use crate::pli::Pli;
use dynfd_common::{DynError, RecordId, Result, Schema};
use std::collections::{HashMap, HashSet};

/// How the relation treats null values. Nulls are modelled as empty
/// strings and compare equal to each other, the convention of FD
/// discovery tooling (see `Dictionary`'s tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NullPolicy {
    /// Nulls are ordinary values that agree with each other. Default;
    /// matches the paper's setting and every existing dataset profile.
    #[default]
    AllowAll,
    /// Any batch carrying a null value is rejected with
    /// [`DynError::NullValue`] before anything is applied.
    RejectNulls,
}

/// One reversible mutation recorded while applying a batch.
#[derive(Clone, Debug)]
enum UndoOp {
    /// A record this batch inserted; undone by deleting it again.
    Inserted(RecordId),
    /// A record this batch deleted, with its compressed form; undone by
    /// restoring it into the hash index and every PLI.
    Removed(RecordId, Box<[ValueId]>),
}

/// Undo log for one batch application, produced by
/// [`DynamicRelation::apply_batch_logged`].
///
/// Replaying the log in reverse ([`DynamicRelation::rollback`]) returns
/// the relation to a state structurally identical to the pre-batch
/// snapshot: PLIs, dictionaries (including codes assigned during the
/// batch, which are truncated away), the record hash index, and the
/// surrogate-id counter.
#[derive(Clone, Debug)]
pub struct UndoLog {
    ops: Vec<UndoOp>,
    next_id_before: RecordId,
    dict_lens_before: Vec<usize>,
}

impl UndoLog {
    /// Number of reversible mutations recorded.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch performed no mutation.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A relation instance maintained under inserts, updates, and deletes.
///
/// This bundles every data structure of paper Section 3.1:
///
/// * per-column [`Dictionary`]s (value → code),
/// * per-column [`Pli`]s with their built-in inverted index
///   (code → cluster of record ids),
/// * the **hash index** of dictionary-compressed records
///   (record id → code array),
/// * the monotonically increasing surrogate-id counter.
///
/// All structures are updated *incrementally* per change — applying a
/// batch never re-reads previously ingested data, mirroring the paper's
/// requirement that DynFD must not perform reads against the database it
/// monitors.
#[derive(Clone, Debug, PartialEq)]
pub struct DynamicRelation {
    schema: Schema,
    dictionaries: Vec<Dictionary>,
    plis: Vec<Pli>,
    /// Hash index: record id → compressed record (array of value codes,
    /// one per column).
    records: HashMap<RecordId, Box<[ValueId]>>,
    next_id: RecordId,
    null_policy: NullPolicy,
}

impl DynamicRelation {
    /// Creates an empty relation for `schema`.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        DynamicRelation {
            schema,
            dictionaries: (0..arity).map(|_| Dictionary::new()).collect(),
            plis: (0..arity).map(|_| Pli::new()).collect(),
            records: HashMap::new(),
            next_id: RecordId(0),
            null_policy: NullPolicy::default(),
        }
    }

    /// The active null policy.
    pub fn null_policy(&self) -> NullPolicy {
        self.null_policy
    }

    /// Changes the null policy. Only future batches are checked; records
    /// already ingested are never retroactively rejected.
    pub fn set_null_policy(&mut self, policy: NullPolicy) {
        self.null_policy = policy;
    }

    /// Overrides the distinct-value budget of column `attr`'s dictionary
    /// (see [`Dictionary::set_capacity`]).
    pub fn set_dictionary_capacity(&mut self, attr: usize, capacity: usize) {
        self.dictionaries[attr].set_capacity(capacity);
    }

    /// Creates a relation and bulk-loads `rows` (the "initial tuples" of
    /// the paper's setting). Initial records receive ids `0..rows.len()`.
    pub fn from_rows<S: AsRef<str>>(schema: Schema, rows: &[Vec<S>]) -> Result<Self> {
        let mut rel = DynamicRelation::new(schema);
        for row in rows {
            rel.insert_row(row)?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the relation currently holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The next surrogate id that will be assigned. Exposed because the
    /// id assignment is part of the public contract: ids are handed out
    /// in arrival order starting from 0, which lets change-stream
    /// generators refer to future records deterministically.
    pub fn next_id(&self) -> RecordId {
        self.next_id
    }

    /// The PLI of column `attr`.
    pub fn pli(&self, attr: usize) -> &Pli {
        &self.plis[attr]
    }

    /// The dictionary of column `attr`.
    pub fn dictionary(&self, attr: usize) -> &Dictionary {
        &self.dictionaries[attr]
    }

    /// The compressed record for `rid`, if live.
    pub fn compressed(&self, rid: RecordId) -> Option<&[ValueId]> {
        self.records.get(&rid).map(|r| r.as_ref())
    }

    /// The packed two-attribute value signature of a live record: the
    /// value codes of `a` and `b` packed into one `u64` (`a`'s code in
    /// the high half). This is the cluster-signature scheme of the
    /// validator's packed group maps and the key scheme of the
    /// [`PliCache`](crate::PliCache): two records agree on `{a, b}` iff
    /// their signatures are equal (codes are exact, not hashed).
    pub fn packed_sig(&self, rid: RecordId, a: usize, b: usize) -> Option<u64> {
        let rec = self.compressed(rid)?;
        Some((rec[a] as u64) << 32 | rec[b] as u64)
    }

    /// Decodes a live record back into its string values.
    pub fn materialize(&self, rid: RecordId) -> Option<Vec<String>> {
        self.records.get(&rid).map(|codes| {
            codes
                .iter()
                .enumerate()
                .map(|(a, &c)| self.dictionaries[a].decode(c).to_string())
                .collect()
        })
    }

    /// Iterates the ids of all live records in unspecified order.
    pub fn record_ids(&self) -> impl Iterator<Item = RecordId> + '_ {
        self.records.keys().copied()
    }

    /// Iterates `(id, compressed record)` pairs in unspecified order.
    pub fn records(&self) -> impl Iterator<Item = (RecordId, &[ValueId])> {
        self.records.iter().map(|(&id, r)| (id, r.as_ref()))
    }

    /// Inserts one row, updating dictionaries, PLIs, and the record hash
    /// index, and returns the assigned surrogate id.
    pub fn insert_row<S: AsRef<str>>(&mut self, row: &[S]) -> Result<RecordId> {
        self.check_row(row)?;
        let rid = self.next_id;
        self.next_id = self.next_id.next();
        let mut codes = Vec::with_capacity(row.len());
        for (attr, value) in row.iter().enumerate() {
            let code = self.dictionaries[attr].encode(value.as_ref());
            self.plis[attr].insert(code, rid);
            codes.push(code);
        }
        self.records.insert(rid, codes.into_boxed_slice());
        Ok(rid)
    }

    /// Checks one row against the schema arity, the null policy, and the
    /// per-column dictionary capacities, all before any mutation — a row
    /// that passes cannot fail to insert.
    fn check_row<S: AsRef<str>>(&self, row: &[S]) -> Result<()> {
        if row.len() != self.arity() {
            return Err(DynError::ArityMismatch {
                expected: self.arity(),
                actual: row.len(),
            });
        }
        for (attr, value) in row.iter().enumerate() {
            let value = value.as_ref();
            if self.null_policy == NullPolicy::RejectNulls && value.is_empty() {
                return Err(DynError::NullValue { attr });
            }
            if self.dictionaries[attr].would_overflow(value) {
                return Err(DynError::DictionaryOverflow {
                    attr,
                    capacity: self.dictionaries[attr].capacity(),
                });
            }
        }
        Ok(())
    }

    /// Deletes the record `rid` from all structures.
    ///
    /// Follows the paper's look-up strategy: the compressed record is
    /// fetched from the hash index, its value codes locate the PLI
    /// clusters to shrink, and emptied clusters are dropped.
    pub fn delete_record(&mut self, rid: RecordId) -> Result<()> {
        let codes = self
            .records
            .remove(&rid)
            .ok_or(DynError::UnknownRecord(rid))?;
        for (attr, &code) in codes.iter().enumerate() {
            let removed = self.plis[attr].remove(code, rid);
            debug_assert!(removed, "record {rid} missing from PLI of column {attr}");
        }
        Ok(())
    }

    /// Whether `rid` is live.
    pub fn contains(&self, rid: RecordId) -> bool {
        self.records.contains_key(&rid)
    }

    /// Applies a batch of change operations (Step 1 of the paper's
    /// processing pipeline, Figure 1).
    ///
    /// Updates are normalized to delete + insert. Deletes of
    /// pre-existing records are applied *before* any insert, so that the
    /// old and new version of an updated tuple never coexist — the paper
    /// notes that such near-duplicates would transiently invalidate many
    /// (key-like) dependencies only to revalidate them moments later.
    /// Deletes that target records inserted by this same batch are
    /// applied at the end.
    ///
    /// On error (unknown record id, duplicate reference, arity mismatch,
    /// null-policy violation, dictionary overflow) the relation is left
    /// unchanged: the batch is validated before any mutation.
    pub fn apply_batch(&mut self, batch: &Batch) -> Result<AppliedBatch> {
        self.apply_batch_logged(batch).map(|(applied, _)| applied)
    }

    /// Like [`DynamicRelation::apply_batch`], but additionally returns
    /// the [`UndoLog`] of every mutation performed, enabling the caller
    /// to [`DynamicRelation::rollback`] the batch if *downstream*
    /// maintenance (cover updates, violation search) fails after the
    /// relation itself was updated successfully.
    pub fn apply_batch_logged(&mut self, batch: &Batch) -> Result<(AppliedBatch, UndoLog)> {
        self.validate_batch(batch)?;
        let mut undo = UndoLog {
            ops: Vec::new(),
            next_id_before: self.next_id,
            dict_lens_before: self.dictionaries.iter().map(Dictionary::len).collect(),
        };

        let mut deferred_deletes: Vec<RecordId> = Vec::new();
        let mut applied = AppliedBatch {
            update_only: !batch.is_empty()
                && batch
                    .ops()
                    .iter()
                    .all(|op| matches!(op, ChangeOp::Update(..))),
            ..AppliedBatch::default()
        };

        // Phase 1: deletes of pre-existing records (update-deletes
        // included). Updates additionally record which attributes their
        // new version actually changes — the input to update pruning.
        for op in batch.ops() {
            let rid = match op {
                ChangeOp::Delete(rid) | ChangeOp::Update(rid, _) => *rid,
                ChangeOp::Insert(_) => continue,
            };
            if self.contains(rid) {
                if let ChangeOp::Update(_, new_row) = op {
                    if applied.update_only {
                        // Invariant: guarded by `self.contains(rid)` above.
                        let old = self.materialize(rid).expect("live record");
                        for (attr, (o, n)) in old.iter().zip(new_row.iter()).enumerate() {
                            if o != n {
                                applied.touched_attrs.insert(attr);
                            }
                        }
                    }
                }
                let codes = self.records.get(&rid).cloned().expect("checked live above");
                self.delete_record(rid)?;
                undo.ops.push(UndoOp::Removed(rid, codes));
                applied.deleted.push(rid);
            } else {
                // References a record created later in this batch. Such
                // an update's old version is not a pre-batch record, so
                // the touched-attribute analysis does not cover it.
                applied.update_only = false;
                deferred_deletes.push(rid);
            }
        }

        // Phase 2: inserts (update-inserts included).
        for op in batch.ops() {
            let row = match op {
                ChangeOp::Insert(row) | ChangeOp::Update(_, row) => row,
                ChangeOp::Delete(_) => continue,
            };
            let rid = self.insert_row(row)?;
            undo.ops.push(UndoOp::Inserted(rid));
            applied.first_new_id.get_or_insert(rid);
            applied.inserted.push(rid);
        }

        // Phase 3: deletes that referenced same-batch inserts.
        for rid in deferred_deletes {
            let codes = self
                .records
                .get(&rid)
                .cloned()
                .expect("validated same-batch insert");
            self.delete_record(rid)?;
            undo.ops.push(UndoOp::Removed(rid, codes));
            applied.inserted.retain(|&r| r != rid);
        }

        Ok((applied, undo))
    }

    /// Reverse-replays the undo log of a batch, restoring the relation to
    /// a state structurally equal (`==`) to the pre-batch snapshot.
    ///
    /// Dictionary codes assigned while applying the batch are exactly the
    /// tail `values[len..]` of each dictionary (dictionaries are
    /// append-only), so truncating to the recorded lengths removes them;
    /// this is sound because every record referencing those codes was
    /// inserted by the same batch and is removed first.
    pub fn rollback(&mut self, undo: UndoLog) {
        for op in undo.ops.into_iter().rev() {
            match op {
                UndoOp::Inserted(rid) => {
                    let codes = self
                        .records
                        .remove(&rid)
                        .expect("undo log names a record this batch inserted");
                    for (attr, &code) in codes.iter().enumerate() {
                        let removed = self.plis[attr].remove(code, rid);
                        debug_assert!(removed, "rollback: {rid} missing from PLI {attr}");
                    }
                }
                UndoOp::Removed(rid, codes) => {
                    for (attr, &code) in codes.iter().enumerate() {
                        self.plis[attr].restore(code, rid);
                    }
                    self.records.insert(rid, codes);
                }
            }
        }
        for (dict, &len) in self.dictionaries.iter_mut().zip(&undo.dict_lens_before) {
            dict.truncate(len);
        }
        self.next_id = undo.next_id_before;
    }

    /// Checks a batch for structural problems without mutating anything.
    /// Everything [`check_row`](DynamicRelation::check_row) rejects is
    /// rejected here too, so a batch that validates cannot fail while it
    /// is being applied.
    fn validate_batch(&self, batch: &Batch) -> Result<()> {
        // Simulate id assignment to accept deletes of same-batch inserts.
        let mut pending_inserts = 0u64;
        let mut dead: Vec<RecordId> = Vec::new();
        for op in batch.ops() {
            match op {
                ChangeOp::Insert(row) => {
                    self.check_row(row)?;
                    pending_inserts += 1;
                }
                ChangeOp::Update(rid, row) => {
                    self.check_row(row)?;
                    self.check_live(*rid, pending_inserts, &dead)?;
                    dead.push(*rid);
                    pending_inserts += 1;
                }
                ChangeOp::Delete(rid) => {
                    self.check_live(*rid, pending_inserts, &dead)?;
                    dead.push(*rid);
                }
            }
        }
        self.check_dictionary_headroom(batch)
    }

    /// Rejects batches whose *distinct fresh values* would push a column
    /// dictionary past its capacity. `check_row` only catches a column
    /// that is already full; this pass also catches the batch that fills
    /// the remaining headroom mid-application. Fast path: when a column
    /// has more headroom than the batch has inserts, no counting is done.
    fn check_dictionary_headroom(&self, batch: &Batch) -> Result<()> {
        let rows: Vec<&[String]> = batch
            .ops()
            .iter()
            .filter_map(|op| match op {
                ChangeOp::Insert(row) | ChangeOp::Update(_, row) => Some(row.as_slice()),
                ChangeOp::Delete(_) => None,
            })
            .collect();
        for attr in 0..self.arity() {
            let dict = &self.dictionaries[attr];
            if dict.len() + rows.len() <= dict.capacity() {
                continue;
            }
            let mut fresh: HashSet<&str> = HashSet::new();
            for row in &rows {
                let value = row[attr].as_str();
                if dict.lookup(value).is_none() {
                    fresh.insert(value);
                }
                if dict.len() + fresh.len() > dict.capacity() {
                    return Err(DynError::DictionaryOverflow {
                        attr,
                        capacity: dict.capacity(),
                    });
                }
            }
        }
        Ok(())
    }

    fn check_live(&self, rid: RecordId, pending_inserts: u64, dead: &[RecordId]) -> Result<()> {
        if dead.contains(&rid) {
            // The record existed (or was created in this batch) but an
            // earlier op already consumed it: a duplicate reference, not
            // an unknown id.
            return Err(DynError::DuplicateRecord(rid));
        }
        let exists_now = self.contains(rid);
        let created_in_batch =
            rid >= self.next_id && rid.raw() < self.next_id.raw() + pending_inserts;
        if exists_now || created_in_batch {
            Ok(())
        } else {
            Err(DynError::UnknownRecord(rid))
        }
    }

    /// Reconstructs a relation from its persisted parts: schema, null
    /// policy, id counter, the full per-column dictionaries (dead codes
    /// included, so codes stay stable across a save/restore cycle), and
    /// the compressed records. PLIs are *not* persisted — they are fully
    /// determined by the live records and are rebuilt here by inserting
    /// codes in ascending record-id order, which reproduces the exact
    /// cluster vectors incremental maintenance would hold (sorted ids,
    /// emptied clusters absent). The result is structurally equal (`==`)
    /// to the relation the parts were read from.
    ///
    /// # Errors
    ///
    /// Returns [`DynError::Parse`] when the parts are inconsistent — a
    /// record of the wrong arity, a value code no dictionary entry
    /// covers, a record id at or past `next_id`, or a duplicate record
    /// id. (Checksums catch random corruption before decoding; this
    /// guards the semantic gaps checksums cannot see.)
    pub fn from_parts(
        schema: Schema,
        null_policy: NullPolicy,
        next_id: RecordId,
        dictionaries: Vec<Dictionary>,
        mut records: Vec<(RecordId, Box<[ValueId]>)>,
    ) -> Result<Self> {
        let arity = schema.arity();
        if dictionaries.len() != arity {
            return Err(DynError::Parse(format!(
                "snapshot has {} dictionaries for {arity} columns",
                dictionaries.len()
            )));
        }
        records.sort_unstable_by_key(|(rid, _)| *rid);
        let mut rel = DynamicRelation {
            schema,
            dictionaries,
            plis: (0..arity).map(|_| Pli::new()).collect(),
            records: HashMap::with_capacity(records.len()),
            next_id,
            null_policy,
        };
        for (rid, codes) in records {
            if codes.len() != arity {
                return Err(DynError::Parse(format!(
                    "record {rid} has {} codes for {arity} columns",
                    codes.len()
                )));
            }
            if rid >= next_id {
                return Err(DynError::Parse(format!(
                    "record {rid} is at or past the id counter {next_id}"
                )));
            }
            if rel.records.contains_key(&rid) {
                return Err(DynError::Parse(format!("duplicate record id {rid}")));
            }
            for (attr, &code) in codes.iter().enumerate() {
                if (code as usize) >= rel.dictionaries[attr].len() {
                    return Err(DynError::Parse(format!(
                        "record {rid} column {attr} references unassigned code {code}"
                    )));
                }
                rel.plis[attr].insert(code, rid);
            }
            rel.records.insert(rid, codes);
        }
        Ok(rel)
    }

    /// Rebuilds PLIs and dictionaries from the live records, for
    /// validating incremental maintenance in tests. O(n·m); never used on
    /// the hot path.
    pub fn rebuild_from_scratch(&self) -> DynamicRelation {
        let mut ids: Vec<RecordId> = self.records.keys().copied().collect();
        ids.sort_unstable();
        let mut fresh = DynamicRelation::new(self.schema.clone());
        for rid in ids {
            // Invariant: `ids` was collected from the live-record index.
            let row = self.materialize(rid).expect("live record");
            // Preserve original ids so the two relations are comparable.
            fresh.next_id = rid;
            fresh.insert_row(&row).expect("rebuild insert");
        }
        fresh.next_id = self.next_id;
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of the paper, Table 1 (initial tuples 1-4,
    /// re-indexed to ids 0-3).
    pub(crate) fn paper_relation() -> DynamicRelation {
        let schema = Schema::of("people", &["firstname", "lastname", "zip", "city"]);
        DynamicRelation::from_rows(
            schema,
            &[
                vec!["Max", "Jones", "14482", "Potsdam"],
                vec!["Max", "Miller", "14482", "Potsdam"],
                vec!["Max", "Jones", "10115", "Berlin"],
                vec!["Anna", "Scott", "13591", "Berlin"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn bulk_load_assigns_sequential_ids() {
        let rel = paper_relation();
        assert_eq!(rel.len(), 4);
        assert_eq!(rel.next_id(), RecordId(4));
        for i in 0..4 {
            assert!(rel.contains(RecordId(i)));
        }
    }

    #[test]
    fn compressed_records_match_table_2() {
        // Table 2 of the paper (our codes are first-seen dense codes, no
        // -1 sentinel; uniqueness shows as singleton clusters instead).
        let rel = paper_relation();
        assert_eq!(rel.compressed(RecordId(0)), Some(&[0u32, 0, 0, 0][..]));
        assert_eq!(rel.compressed(RecordId(1)), Some(&[0u32, 1, 0, 0][..]));
        assert_eq!(rel.compressed(RecordId(2)), Some(&[0u32, 0, 1, 1][..]));
        assert_eq!(rel.compressed(RecordId(3)), Some(&[1u32, 2, 2, 1][..]));
    }

    #[test]
    fn plis_match_paper_section_3_1() {
        let rel = paper_relation();
        let r = |i: u64| RecordId(i);
        // π_firstname = {{1,2,3},{4}} in 1-based papers ids = {{0,1,2},{3}} here.
        let pf: Vec<&[RecordId]> = rel.pli(0).iter().map(|(_, c)| c).collect();
        assert_eq!(pf, vec![&[r(0), r(1), r(2)][..], &[r(3)][..]]);
        let pl: Vec<&[RecordId]> = rel.pli(1).iter().map(|(_, c)| c).collect();
        assert_eq!(pl, vec![&[r(0), r(2)][..], &[r(1)][..], &[r(3)][..]]);
        let pz: Vec<&[RecordId]> = rel.pli(2).iter().map(|(_, c)| c).collect();
        assert_eq!(pz, vec![&[r(0), r(1)][..], &[r(2)][..], &[r(3)][..]]);
        let pc: Vec<&[RecordId]> = rel.pli(3).iter().map(|(_, c)| c).collect();
        assert_eq!(pc, vec![&[r(0), r(1)][..], &[r(2), r(3)][..]]);
    }

    #[test]
    fn paper_batch_delete_3_insert_5_6() {
        // The batch of Table 1: delete tuple 3 (id 2), insert tuples 5, 6.
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch
            .delete(RecordId(2))
            .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
            .insert(vec!["Marie", "Gray", "14469", "Potsdam"]);
        let applied = rel.apply_batch(&batch).unwrap();
        assert_eq!(applied.deleted, vec![RecordId(2)]);
        assert_eq!(applied.inserted, vec![RecordId(4), RecordId(5)]);
        assert_eq!(applied.first_new_id, Some(RecordId(4)));
        assert_eq!(rel.len(), 5);
        assert!(!rel.contains(RecordId(2)));
        assert_eq!(
            rel.materialize(RecordId(4)).unwrap(),
            vec!["Marie", "Scott", "14467", "Potsdam"]
        );
    }

    #[test]
    fn update_is_delete_plus_insert_with_fresh_id() {
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch.update(RecordId(1), vec!["Max", "Miller", "10115", "Berlin"]);
        let applied = rel.apply_batch(&batch).unwrap();
        assert_eq!(applied.deleted, vec![RecordId(1)]);
        assert_eq!(applied.inserted, vec![RecordId(4)]);
        assert!(!rel.contains(RecordId(1)));
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn delete_of_unknown_record_fails_atomically() {
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch.insert(vec!["A", "B", "C", "D"]).delete(RecordId(99));
        let err = rel.apply_batch(&batch).unwrap_err();
        assert_eq!(err, DynError::UnknownRecord(RecordId(99)));
        // Nothing applied.
        assert_eq!(rel.len(), 4);
        assert_eq!(rel.next_id(), RecordId(4));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut rel = paper_relation();
        let err = rel.insert_row(&["only", "three", "values"]).unwrap_err();
        assert_eq!(
            err,
            DynError::ArityMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn insert_then_delete_same_batch_nets_out() {
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        // The row inserted here will get id 4; delete it in the same batch.
        batch.insert(vec!["X", "Y", "Z", "W"]).delete(RecordId(4));
        let applied = rel.apply_batch(&batch).unwrap();
        assert!(applied.inserted.is_empty());
        assert!(applied.deleted.is_empty());
        assert_eq!(rel.len(), 4);
        assert!(!rel.contains(RecordId(4)));
        // The id is still consumed.
        assert_eq!(rel.next_id(), RecordId(5));
    }

    #[test]
    fn double_delete_in_one_batch_rejected() {
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch.delete(RecordId(0)).delete(RecordId(0));
        assert_eq!(
            rel.apply_batch(&batch).unwrap_err(),
            DynError::DuplicateRecord(RecordId(0))
        );
    }

    #[test]
    fn delete_after_update_of_same_record_is_duplicate() {
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch
            .update(RecordId(1), vec!["Max", "Miller", "10115", "Berlin"])
            .delete(RecordId(1));
        assert_eq!(
            rel.apply_batch(&batch).unwrap_err(),
            DynError::DuplicateRecord(RecordId(1))
        );
        assert_eq!(rel, paper_relation());
    }

    #[test]
    fn reject_nulls_policy_blocks_batch_atomically() {
        let mut rel = paper_relation();
        rel.set_null_policy(NullPolicy::RejectNulls);
        let mut snapshot = paper_relation();
        snapshot.set_null_policy(NullPolicy::RejectNulls);
        let mut batch = Batch::new();
        batch
            .delete(RecordId(0))
            .insert(vec!["Marie", "", "14467", "Potsdam"]);
        assert_eq!(
            rel.apply_batch(&batch).unwrap_err(),
            DynError::NullValue { attr: 1 }
        );
        assert_eq!(rel, snapshot);
        // The default policy accepts the same batch.
        rel.set_null_policy(NullPolicy::AllowAll);
        snapshot.set_null_policy(NullPolicy::AllowAll);
        rel.apply_batch(&batch).unwrap();
        assert_ne!(rel, snapshot);
    }

    #[test]
    fn dictionary_overflow_pre_checked() {
        let mut rel = paper_relation();
        rel.set_dictionary_capacity(2, rel.dictionary(2).len() + 1);
        let snapshot = rel.clone();
        // Two fresh zip codes but headroom for one: rejected up front,
        // even though each row passes `check_row` in isolation.
        let mut batch = Batch::new();
        batch
            .insert(vec!["A", "B", "99991", "Golm"])
            .insert(vec!["C", "D", "99992", "Golm"]);
        assert_eq!(
            rel.apply_batch(&batch).unwrap_err(),
            DynError::DictionaryOverflow {
                attr: 2,
                capacity: 4
            }
        );
        assert_eq!(rel, snapshot);
        // One fresh zip (used twice) fits exactly.
        let mut ok = Batch::new();
        ok.insert(vec!["A", "B", "99991", "Golm"])
            .insert(vec!["C", "D", "99991", "Golm"]);
        rel.apply_batch(&ok).unwrap();
        assert_eq!(rel.dictionary(2).len(), 4);
    }

    #[test]
    fn rollback_restores_pre_batch_state_exactly() {
        let mut rel = paper_relation();
        let snapshot = rel.clone();
        let mut batch = Batch::new();
        batch
            .delete(RecordId(2))
            .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
            .update(RecordId(0), vec!["Max", "Jones", "14482", "Golm"])
            .insert(vec!["X", "Y", "Z", "W"])
            .delete(RecordId(6)); // the "X Y Z W" insert: deferred delete
        let (applied, undo) = rel.apply_batch_logged(&batch).unwrap();
        assert!(applied.has_inserts() && applied.has_deletes());
        assert_ne!(rel, snapshot);
        rel.rollback(undo);
        assert_eq!(rel, snapshot);
        // The rolled-back relation is fully usable afterwards.
        let mut again = Batch::new();
        again.insert(vec!["P", "Q", "R", "S"]);
        let applied = rel.apply_batch(&again).unwrap();
        assert_eq!(applied.inserted, vec![RecordId(4)]);
    }

    #[test]
    fn rollback_of_empty_batch_is_noop() {
        let mut rel = paper_relation();
        let snapshot = rel.clone();
        let (_, undo) = rel.apply_batch_logged(&Batch::new()).unwrap();
        assert!(undo.is_empty());
        rel.rollback(undo);
        assert_eq!(rel, snapshot);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch.delete(RecordId(3));
        rel.apply_batch(&batch).unwrap();
        let rid = rel.insert_row(&["P", "Q", "R", "S"]).unwrap();
        assert_eq!(rid, RecordId(4));
    }

    #[test]
    fn incremental_equals_rebuilt() {
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch
            .delete(RecordId(2))
            .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
            .update(RecordId(0), vec!["Max", "Jones", "14482", "Golm"]);
        rel.apply_batch(&batch).unwrap();
        let rebuilt = rel.rebuild_from_scratch();
        assert_eq!(rel.len(), rebuilt.len());
        for attr in 0..rel.arity() {
            let a: Vec<_> = rel.pli(attr).iter().map(|(_, c)| c.to_vec()).collect();
            let mut b: Vec<_> = rebuilt.pli(attr).iter().map(|(_, c)| c.to_vec()).collect();
            // Dictionary codes may differ between incremental and rebuilt
            // relations (deleted values keep their codes); compare the
            // partitions as sets of clusters.
            let mut a = a;
            a.sort();
            b.sort();
            assert_eq!(a, b, "column {attr} partition diverged");
        }
    }

    #[test]
    fn from_parts_restores_bit_identical_state() {
        // Churn the paper relation so dictionaries hold dead codes and
        // PLIs have dropped clusters — the state a snapshot must restore
        // exactly.
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch
            .delete(RecordId(2))
            .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
            .update(RecordId(0), vec!["Max", "Jones", "14482", "Golm"]);
        rel.apply_batch(&batch).unwrap();

        let dicts: Vec<Dictionary> = (0..rel.arity())
            .map(|a| {
                Dictionary::from_parts(
                    rel.dictionary(a).values().to_vec(),
                    rel.dictionary(a).capacity(),
                )
            })
            .collect();
        let records: Vec<(RecordId, Box<[ValueId]>)> = rel
            .records()
            .map(|(rid, codes)| (rid, codes.to_vec().into_boxed_slice()))
            .collect();
        let restored = DynamicRelation::from_parts(
            rel.schema().clone(),
            rel.null_policy(),
            rel.next_id(),
            dicts,
            records,
        )
        .unwrap();
        assert_eq!(restored, rel, "restore must be structurally identical");
    }

    #[test]
    fn from_parts_rejects_inconsistent_parts() {
        let rel = paper_relation();
        let dicts = |r: &DynamicRelation| -> Vec<Dictionary> {
            (0..r.arity())
                .map(|a| {
                    Dictionary::from_parts(
                        r.dictionary(a).values().to_vec(),
                        r.dictionary(a).capacity(),
                    )
                })
                .collect()
        };
        let recs = |r: &DynamicRelation| -> Vec<(RecordId, Box<[ValueId]>)> {
            r.records()
                .map(|(rid, c)| (rid, c.to_vec().into_boxed_slice()))
                .collect()
        };
        // Record id at the counter.
        let mut bad = recs(&rel);
        bad[0].0 = rel.next_id();
        assert!(matches!(
            DynamicRelation::from_parts(
                rel.schema().clone(),
                rel.null_policy(),
                rel.next_id(),
                dicts(&rel),
                bad
            ),
            Err(DynError::Parse(_))
        ));
        // Unassigned value code.
        let mut bad = recs(&rel);
        bad[0].1[0] = 9999;
        assert!(matches!(
            DynamicRelation::from_parts(
                rel.schema().clone(),
                rel.null_policy(),
                rel.next_id(),
                dicts(&rel),
                bad
            ),
            Err(DynError::Parse(_))
        ));
        // Duplicate record id.
        let mut bad = recs(&rel);
        let clone = bad[0].clone();
        bad.push(clone);
        assert!(matches!(
            DynamicRelation::from_parts(
                rel.schema().clone(),
                rel.null_policy(),
                rel.next_id(),
                dicts(&rel),
                bad
            ),
            Err(DynError::Parse(_))
        ));
    }

    #[test]
    fn materialize_roundtrips() {
        let rel = paper_relation();
        assert_eq!(
            rel.materialize(RecordId(3)).unwrap(),
            vec!["Anna", "Scott", "13591", "Berlin"]
        );
        assert_eq!(rel.materialize(RecordId(9)), None);
    }

    #[test]
    fn empty_relation_behaviour() {
        let mut rel = DynamicRelation::new(Schema::of("t", &["a", "b"]));
        assert!(rel.is_empty());
        let applied = rel.apply_batch(&Batch::new()).unwrap();
        assert!(!applied.has_inserts() && !applied.has_deletes());
        let rid = rel.insert_row(&["x", "y"]).unwrap();
        assert_eq!(rid, RecordId(0));
        assert!(!rel.is_empty());
    }
}
