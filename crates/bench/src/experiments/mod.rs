//! One module per paper artifact (tables 3–4, figures 5–11).

pub mod ext;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod figs10_11;
pub mod figs8_9;
pub mod table3;
pub mod table4;

use dynfd_datagen::{DatasetProfile, GeneratedDataset, PAPER_PROFILES};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Shared harness context: scaling knobs and a dataset cache so each
/// profile is generated exactly once per run.
pub struct Ctx {
    /// Row/change scale factor applied to every profile (1.0 = the
    /// paper's shapes, with `artist` at its default 120k-row scaling).
    pub scale: f64,
    /// Use the full 1.1M-row `artist` instead of the scaled default.
    pub full_artist: bool,
    datasets: RefCell<HashMap<String, Rc<GeneratedDataset>>>,
}

impl Ctx {
    /// Creates a context.
    pub fn new(scale: f64, full_artist: bool) -> Self {
        Ctx {
            scale,
            full_artist,
            datasets: RefCell::new(HashMap::new()),
        }
    }

    /// The six evaluation profiles under the context's scaling.
    pub fn profiles(&self) -> Vec<DatasetProfile> {
        PAPER_PROFILES
            .iter()
            .map(|p| {
                let p = if p.name == "artist" && self.full_artist {
                    DatasetProfile::artist_full()
                } else {
                    p.clone()
                };
                if (self.scale - 1.0).abs() < f64::EPSILON {
                    p
                } else {
                    p.scaled(self.scale)
                }
            })
            .collect()
    }

    /// The generated dataset for `name`, cached.
    pub fn dataset(&self, name: &str) -> Rc<GeneratedDataset> {
        if let Some(d) = self.datasets.borrow().get(name) {
            return Rc::clone(d);
        }
        let profile = self
            .profiles()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("unknown dataset {name}"));
        eprintln!(
            "[gen] {name}: {} cols, {} rows, {} changes",
            profile.columns, profile.initial_rows, profile.changes
        );
        let data = Rc::new(GeneratedDataset::generate(&profile));
        self.datasets
            .borrow_mut()
            .insert(name.to_string(), Rc::clone(&data));
        data
    }

    /// Dataset names in the paper's order.
    pub fn names(&self) -> Vec<&'static str> {
        PAPER_PROFILES.iter().map(|p| p.name).collect()
    }
}

/// The paper caps most experiments at the first 10,000 changes.
pub const CHANGE_CAP: usize = 10_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_caches_datasets() {
        let ctx = Ctx::new(0.02, false);
        let a = ctx.dataset("cpu");
        let b = ctx.dataset("cpu");
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn scaling_applies() {
        let ctx = Ctx::new(0.1, false);
        let artist = ctx
            .profiles()
            .into_iter()
            .find(|p| p.name == "artist")
            .unwrap();
        assert_eq!(artist.initial_rows, 12_000);
    }

    #[test]
    fn full_artist_flag() {
        let ctx = Ctx::new(1.0, true);
        let artist = ctx
            .profiles()
            .into_iter()
            .find(|p| p.name == "artist")
            .unwrap();
        assert_eq!(artist.initial_rows, 1_122_887);
    }
}
