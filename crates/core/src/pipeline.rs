//! The DynFD maintenance pipeline (paper Figure 1).

use crate::diff::diff_covers;
use crate::{BatchMetrics, BatchResult, DynFdConfig, ViolationStore};
use dynfd_common::{Fd, Result};
use dynfd_lattice::{invert_positive_cover, FdTree};
use dynfd_relation::{validate_fd, Batch, DynamicRelation, ValidationOptions};
use std::time::Instant;

/// Maintains the minimal, non-trivial FDs of a relation under batches of
/// inserts, updates, and deletes.
///
/// Construction bootstraps the covers: the positive cover comes from a
/// static HyFD run over the initial tuples (paper Section 2); the
/// negative cover is derived from it by cover inversion (Algorithm 1).
/// From then on, [`DynFd::apply_batch`] *evolves* the covers instead of
/// recomputing them.
///
/// ```
/// use dynfd_core::{DynFd, DynFdConfig};
/// use dynfd_relation::{Batch, DynamicRelation};
/// use dynfd_common::{RecordId, Schema};
///
/// let schema = Schema::of("people", &["firstname", "lastname", "zip", "city"]);
/// let rel = DynamicRelation::from_rows(schema, &[
///     vec!["Max", "Jones", "14482", "Potsdam"],
///     vec!["Max", "Miller", "14482", "Potsdam"],
///     vec!["Max", "Jones", "10115", "Berlin"],
///     vec!["Anna", "Scott", "13591", "Berlin"],
/// ]).unwrap();
/// let mut dynfd = DynFd::new(rel, DynFdConfig::default());
/// assert_eq!(dynfd.minimal_fds().len(), 5); // Figure 2 of the paper
///
/// // The batch of Table 1: delete tuple 3, insert tuples 5 and 6.
/// let mut batch = Batch::new();
/// batch.delete(RecordId(2))
///      .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
///      .insert(vec!["Marie", "Gray", "14469", "Potsdam"]);
/// let result = dynfd.apply_batch(&batch).unwrap();
/// assert!(!result.is_unchanged());
/// ```
#[derive(Clone, Debug)]
pub struct DynFd {
    pub(crate) rel: DynamicRelation,
    /// Positive cover: all minimal, non-trivial FDs.
    pub(crate) fds: FdTree,
    /// Negative cover: all maximal non-FDs.
    pub(crate) non_fds: FdTree,
    /// §5.2 surrogate violations for the negative cover.
    pub(crate) violations: ViolationStore,
    pub(crate) config: DynFdConfig,
}

impl DynFd {
    /// Bootstraps DynFD over `rel`: runs HyFD for the positive cover and
    /// inverts it into the negative cover.
    pub fn new(rel: DynamicRelation, config: DynFdConfig) -> Self {
        let fds = dynfd_static::hyfd::discover(&rel);
        Self::with_cover(rel, fds, config)
    }

    /// Bootstraps DynFD from a pre-profiled positive cover (e.g. loaded
    /// from a metadata store). The cover must be the *exact* set of
    /// minimal, non-trivial FDs of `rel`; the negative cover is derived
    /// via cover inversion (Algorithm 1).
    pub fn with_cover(rel: DynamicRelation, fds: FdTree, config: DynFdConfig) -> Self {
        let non_fds = invert_positive_cover(&fds, rel.arity());
        DynFd {
            rel,
            fds,
            non_fds,
            violations: ViolationStore::new(),
            config,
        }
    }

    /// The maintained relation.
    pub fn relation(&self) -> &DynamicRelation {
        &self.rel
    }

    /// The current minimal, non-trivial FDs, sorted deterministically.
    pub fn minimal_fds(&self) -> Vec<Fd> {
        self.fds.all_fds()
    }

    /// The positive cover (all minimal FDs) as a prefix tree.
    pub fn positive_cover(&self) -> &FdTree {
        &self.fds
    }

    /// The negative cover (all maximal non-FDs) as a prefix tree.
    pub fn negative_cover(&self) -> &FdTree {
        &self.non_fds
    }

    /// The active configuration.
    pub fn config(&self) -> &DynFdConfig {
        &self.config
    }

    /// Number of §5.2 violation annotations currently cached.
    pub fn annotation_count(&self) -> usize {
        self.violations.len()
    }

    /// The §5.2 violation annotations, deterministically sorted (used by
    /// the parallel-determinism tests to compare runs).
    pub fn violation_annotations(
        &self,
    ) -> Vec<(Fd, (dynfd_common::RecordId, dynfd_common::RecordId))> {
        self.violations.sorted_annotations()
    }

    /// Processes one batch of change operations and returns the delta of
    /// the minimal FD set (paper Figure 1, steps 1–4).
    ///
    /// On error (unknown record, arity mismatch) neither the relation
    /// nor the covers are modified.
    pub fn apply_batch(&mut self, batch: &Batch) -> Result<BatchResult> {
        let start = Instant::now();
        let before = self.fds.all_fds();

        // Step 1: update the data structures.
        let applied = self.rel.apply_batch(batch)?;
        let mut metrics = BatchMetrics {
            inserts: applied.inserted.len(),
            deletes: applied.deleted.len(),
            ..BatchMetrics::default()
        };

        // Deleted records invalidate their §5.2 annotations; the affected
        // non-FDs will answer "needs validation" in the delete phase.
        self.violations.purge_records(&applied.deleted);

        // Step 2: deletes first (Section 2 explains the ordering), then
        // Step 3: inserts. Both phases fan their candidate validations
        // out over the configured worker budget.
        metrics.threads_used = self.config.effective_parallelism();
        if applied.has_deletes() {
            let phase = Instant::now();
            self.process_deletes(&applied, &mut metrics);
            metrics.delete_phase_time = phase.elapsed();
        }
        if applied.has_inserts() {
            let phase = Instant::now();
            self.process_inserts(&applied, &mut metrics);
            metrics.insert_phase_time = phase.elapsed();
        }

        // Step 4: signal the changed FDs.
        let after = self.fds.all_fds();
        let (added, removed) = diff_covers(&before, &after);
        metrics.added_fds = added.len();
        metrics.removed_fds = removed.len();
        metrics.wall_time = start.elapsed();
        Ok(BatchResult {
            added,
            removed,
            metrics,
        })
    }

    /// Exhaustively checks the internal invariants against the current
    /// relation state (test oracle; exponential in arity — never call on
    /// wide relations):
    ///
    /// * every positive-cover FD is valid and minimal;
    /// * every negative-cover non-FD is invalid and maximal;
    /// * the negative cover equals the inversion of the positive cover;
    /// * every cached violation annotation references two live records
    ///   that genuinely violate their non-FD.
    pub fn verify_consistency(&self) -> std::result::Result<(), String> {
        let full = ValidationOptions::full();
        if !self.fds.is_antichain() {
            return Err("positive cover is not an antichain".into());
        }
        if !self.non_fds.is_antichain() {
            return Err("negative cover is not an antichain".into());
        }
        for fd in self.fds.all_fds() {
            if !validate_fd(&self.rel, &fd, &full).is_valid() {
                return Err(format!("positive cover holds invalid FD {fd:?}"));
            }
            for gen in fd.direct_generalizations() {
                if validate_fd(&self.rel, &gen, &full).is_valid() {
                    return Err(format!("{fd:?} is not minimal: {gen:?} holds"));
                }
            }
        }
        for nf in self.non_fds.all_fds() {
            if validate_fd(&self.rel, &nf, &full).is_valid() {
                return Err(format!("negative cover holds valid FD {nf:?}"));
            }
            for spec in nf.direct_specializations(self.rel.arity()) {
                if !validate_fd(&self.rel, &spec, &full).is_valid() {
                    return Err(format!("{nf:?} is not maximal: {spec:?} is also invalid"));
                }
            }
        }
        let inverted = invert_positive_cover(&self.fds, self.rel.arity());
        if inverted != self.non_fds {
            return Err(format!(
                "negative cover diverged from inversion: have {:?}, want {:?}",
                self.non_fds.all_fds(),
                inverted.all_fds()
            ));
        }
        for nf in self.non_fds.all_fds() {
            if let Some((a, b)) = crate::ViolationStore::get(&self.violations, &nf) {
                let (Some(ra), Some(rb)) = (self.rel.compressed(a), self.rel.compressed(b)) else {
                    return Err(format!("annotation of {nf:?} references dead records"));
                };
                let agrees_on_lhs = nf.lhs.iter().all(|x| ra[x] == rb[x]);
                if !agrees_on_lhs || ra[nf.rhs] == rb[nf.rhs] {
                    return Err(format!("annotation of {nf:?} is not a violating pair"));
                }
            }
        }
        Ok(())
    }
}
