//! The sharded multi-tenant engine server.
//!
//! One [`ServeEngine`] owns a tenant registry and a pool of worker
//! threads. Every tenant is pinned to exactly one worker shard (FNV of
//! its name modulo the pool size), each shard consumes its own FIFO
//! queue, and admission happens against the tenant's bounded gate
//! before a job is ever enqueued. The combination yields the layer's
//! two load-bearing properties:
//!
//! * **determinism** — a tenant's batches are applied in submission
//!   order at any worker count, because only its one shard ever touches
//!   its engine and the shard queue is FIFO (pinned by
//!   `tests/serve_determinism.rs`);
//! * **isolation** — a tenant that floods, rejects, or panics affects
//!   only its own gate, metrics, and (on an escaped panic) its own
//!   poisoned engine lock; every other tenant's state and throughput
//!   are untouched (pinned by `tests/tenant_isolation.rs`).
//!
//! Shutdown is drain-then-sync: the intake closes (new submissions get
//! [`ServeError::ShuttingDown`]), every queued job still completes,
//! workers join, and each durable tenant's WAL tail is fsynced. The
//! `drain_kill_after` hook aborts the process mid-drain — the crash
//! harness uses it to prove recovery works from inside that window.

use crate::metrics::MetricsSnapshot;
use crate::queue::ShardQueue;
use crate::tenant::{valid_tenant_name, Backend, Tenant};
use crate::ServeError;
use dynfd_common::Schema;
use dynfd_core::{DynFd, DynFdConfig, DynFdError, FailPoint};
use dynfd_persist::{FdEngine, RecoveryReport};
use dynfd_relation::{Batch, DynamicRelation};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What happens when a tenant's queue is full at submit time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Reject immediately with [`ServeError::Overloaded`] (wire code
    /// 13) — the production load-shedding default.
    #[default]
    Shed,
    /// Block the submitter until a slot frees up — lossless
    /// backpressure, used by the deterministic replay harnesses and by
    /// clients that prefer latency over errors.
    Block,
}

/// Configuration of a [`ServeEngine`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads (= shards). `0` means one per available core.
    pub workers: usize,
    /// Per-tenant bound on in-flight batches (admission gate capacity).
    pub queue_capacity: usize,
    /// Full-queue behavior.
    pub policy: AdmissionPolicy,
    /// Durable root: each tenant gets `<root>/<name>/` as its WAL
    /// directory. `None` serves purely in-memory tenants.
    pub root: Option<PathBuf>,
    /// Engine configuration shared by every tenant.
    pub engine: DynFdConfig,
    /// Start with delivery paused: jobs queue but no worker runs them
    /// until [`ServeEngine::resume`] — the deterministic-burst test hook.
    pub start_paused: bool,
    /// Crash-harness hook: during shutdown's drain, abort the process
    /// after this many more jobs complete (`>= 1`; `None` disables).
    pub drain_kill_after: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 64,
            policy: AdmissionPolicy::Shed,
            root: None,
            engine: DynFdConfig::default(),
            start_paused: false,
            drain_kill_after: None,
        }
    }
}

/// The outcome of one applied (or failed) batch, delivered to the
/// submitter's completion callback.
#[derive(Debug)]
pub struct BatchReply {
    /// The tenant the batch targeted.
    pub tenant: String,
    /// The submitter's correlation id (wire request id).
    pub request_id: u64,
    /// Success summary, or the typed failure.
    pub outcome: Result<ApplySummary, ServeError>,
    /// Submit→completion latency.
    pub latency: Duration,
}

/// Success details of one applied batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApplySummary {
    /// The tenant's sequence number after this batch.
    pub seq: u64,
    /// Minimal FDs the batch added.
    pub added: u32,
    /// Minimal FDs the batch removed.
    pub removed: u32,
    /// Live rows after the batch.
    pub rows: u64,
}

/// What [`ServeEngine::shutdown`] drained and synced.
#[derive(Debug, Default)]
pub struct ShutdownReport {
    /// Registered tenants at shutdown.
    pub tenants: usize,
    /// Tenants whose WAL tail was fsynced cleanly.
    pub synced: usize,
    /// Tenants whose final sync failed, with the I/O error.
    pub sync_errors: Vec<(String, String)>,
    /// Tenants skipped because an earlier panic poisoned their engine.
    pub poisoned: Vec<String>,
}

/// Result of opening a tenant: its durable sequence number and, when
/// the tenant resumed from an existing WAL directory, the recovery
/// report.
#[derive(Debug)]
pub struct OpenReport {
    /// Sequence number the tenant starts serving from (0 when fresh).
    pub seq: u64,
    /// Present when the tenant recovered durable state.
    pub recovered: Option<RecoveryReport>,
}

type Completion = Box<dyn FnOnce(BatchReply) + Send>;

struct Job {
    tenant: Arc<Tenant>,
    batch: Batch,
    request_id: u64,
    submitted: Instant,
    done: Completion,
}

/// Mid-drain abort hook (see [`ServeConfig::drain_kill_after`]).
#[derive(Default)]
struct DrainKill {
    armed: AtomicBool,
    budget: AtomicU64,
}

/// The multi-tenant serve engine (see the module docs).
pub struct ServeEngine {
    shards: Vec<Arc<ShardQueue<Job>>>,
    workers: Vec<JoinHandle<()>>,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    config: ServeConfig,
    closed: AtomicBool,
    drain: Arc<DrainKill>,
}

/// FNV-1a, hand-rolled so the tenant→shard map is stable across
/// platforms and std versions (std's `DefaultHasher` promises nothing).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Renders a caught panic payload for the typed reply.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Applies one job to its tenant and fires the completion. Runs on a
/// worker thread; never unwinds (panics become typed replies).
fn run_job(job: Job) {
    let Job {
        tenant,
        batch,
        request_id,
        submitted,
        done,
    } = job;
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        tenant.with_backend(|backend| {
            backend.apply(&batch).map(|result| ApplySummary {
                seq: backend.seq(),
                added: result.added.len() as u32,
                removed: result.removed.len() as u32,
                rows: backend.dynfd().relation().len() as u64,
            })
        })
    }));
    let outcome: Result<ApplySummary, ServeError> = match caught {
        Ok(Ok(Ok(summary))) => Ok(summary),
        Ok(Ok(Err(engine_err))) => Err(ServeError::Engine(engine_err)),
        // Poisoned lock from an earlier escaped panic.
        Ok(Err(poisoned)) => Err(poisoned),
        // A panic that escaped the engine's own transactional boundary:
        // the unwind poisoned this tenant's lock on the way out, so the
        // damage is contained to this tenant (later batches get the
        // poisoned-tenant error above); the worker itself survives.
        Err(payload) => Err(ServeError::Engine(DynFdError::PhasePanicked {
            phase: "serve-worker",
            detail: panic_text(payload.as_ref()),
        })),
    };
    let latency = submitted.elapsed();
    let (applied, added, removed) = match &outcome {
        Ok(s) => (true, s.added as u64, s.removed as u64),
        Err(_) => (false, 0, 0),
    };
    tenant
        .metrics
        .note_completed(applied, added, removed, latency);
    // Completion fires *before* the gate slot is released: quiesce
    // (gate idle) must imply every reply has been delivered.
    done(BatchReply {
        tenant: tenant.name.clone(),
        request_id,
        outcome,
        latency,
    });
    tenant.gate.release();
}

fn worker_loop(queue: Arc<ShardQueue<Job>>, drain: Arc<DrainKill>) {
    while let Some(job) = queue.pop() {
        run_job(job);
        if drain.armed.load(Ordering::SeqCst) && drain.budget.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Simulated crash inside the queue-drain window: the job
            // just completed is durable, everything still queued is not.
            std::process::abort();
        }
    }
}

impl ServeEngine {
    /// Starts the worker pool (no tenants yet).
    pub fn new(config: ServeConfig) -> ServeEngine {
        let n = if config.workers == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            config.workers
        };
        let drain = Arc::new(DrainKill {
            armed: AtomicBool::new(false),
            budget: AtomicU64::new(config.drain_kill_after.unwrap_or(0)),
        });
        // Arm at shutdown only: workers check the flag per job, and the
        // engine flips it right before closing the queues.
        let shards: Vec<Arc<ShardQueue<Job>>> = (0..n)
            .map(|_| Arc::new(ShardQueue::new(config.start_paused)))
            .collect();
        let workers = shards
            .iter()
            .map(|shard| {
                let shard = Arc::clone(shard);
                let drain = Arc::clone(&drain);
                std::thread::spawn(move || worker_loop(shard, drain))
            })
            .collect();
        ServeEngine {
            shards,
            workers,
            tenants: Mutex::new(HashMap::new()),
            config,
            closed: AtomicBool::new(false),
            drain,
        }
    }

    /// The resolved worker/shard count.
    pub fn worker_count(&self) -> usize {
        self.shards.len()
    }

    /// The engine configuration tenants run with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The durable directory of `name`, when serving durably.
    pub fn tenant_dir(&self, name: &str) -> Option<PathBuf> {
        self.config.root.as_ref().map(|root| root.join(name))
    }

    fn lookup(&self, name: &str) -> Result<Arc<Tenant>, ServeError> {
        let tenants = self
            .tenants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        tenants
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))
    }

    fn tenant_arcs(&self) -> Vec<Arc<Tenant>> {
        let tenants = self
            .tenants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut arcs: Vec<Arc<Tenant>> = tenants.values().cloned().collect();
        arcs.sort_by(|a, b| a.name.cmp(&b.name));
        arcs
    }

    /// Opens tenant `name` with the given schema and initial rows, or
    /// recovers it from `<root>/<name>/` when durable state exists
    /// there (the rows are then ignored; the schema must match).
    pub fn open_tenant(
        &self,
        name: &str,
        schema: Schema,
        rows: &[Vec<String>],
    ) -> Result<OpenReport, ServeError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        if !valid_tenant_name(name) {
            return Err(ServeError::Malformed(format!(
                "invalid tenant name {name:?} (want [A-Za-z0-9_.-]{{1,128}})"
            )));
        }
        {
            let tenants = self
                .tenants
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if tenants.contains_key(name) {
                return Err(ServeError::TenantExists(name.to_string()));
            }
        }
        // Build the backend outside the registry lock: recovery can
        // replay an arbitrarily long WAL and must not stall the others.
        let rel = DynamicRelation::from_rows(schema.clone(), rows)
            .map_err(|e| ServeError::Engine(DynFdError::from(e)))?;
        let (backend, recovered) = match self.tenant_dir(name) {
            Some(dir) => {
                let (engine, report) = FdEngine::recover_or_create(&dir, rel, self.config.engine)
                    .map_err(ServeError::Engine)?;
                if let Some(report) = &report {
                    let durable = engine.dynfd().relation().schema();
                    if durable.columns() != schema.columns() {
                        return Err(ServeError::Engine(DynFdError::Parse(format!(
                            "tenant {name:?} durable state is for columns {:?}, the open asked for {:?}",
                            durable.columns(),
                            schema.columns()
                        ))));
                    }
                    let _ = report; // report returned to the caller below
                }
                (Backend::Durable(engine), report)
            }
            None => (
                Backend::Memory(DynFd::new(rel, self.config.engine), 0),
                None,
            ),
        };
        let shard = (fnv1a(name.as_bytes()) % self.shards.len() as u64) as usize;
        let tenant = Arc::new(Tenant::new(name.to_string(), shard, backend));
        let seq = tenant.with_backend(|b| b.seq()).unwrap_or_default();
        let mut tenants = self
            .tenants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Two concurrent opens of the same name: first insert wins.
        if tenants.contains_key(name) {
            return Err(ServeError::TenantExists(name.to_string()));
        }
        tenants.insert(name.to_string(), tenant);
        Ok(OpenReport { seq, recovered })
    }

    /// Submits one batch for `tenant`. On success the batch is queued
    /// and `done` fires exactly once from a worker thread; on error the
    /// batch was *not* queued (`done` never fires) and the caller owns
    /// the typed rejection — admission failures are synchronous by
    /// design so the wire layer can shed load without waiting.
    pub fn submit(
        &self,
        tenant: &str,
        request_id: u64,
        batch: Batch,
        done: impl FnOnce(BatchReply) + Send + 'static,
    ) -> Result<(), ServeError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let tenant = self.lookup(tenant)?;
        let capacity = self.config.queue_capacity.max(1);
        let depth = match self.config.policy {
            AdmissionPolicy::Shed => match tenant.gate.try_acquire(capacity) {
                Ok(depth) => depth,
                Err(depth) => {
                    tenant.metrics.note_submitted(depth);
                    tenant.metrics.note_shed();
                    return Err(ServeError::Overloaded {
                        tenant: tenant.name.clone(),
                        depth,
                        capacity,
                    });
                }
            },
            AdmissionPolicy::Block => tenant.gate.acquire_blocking(capacity),
        };
        tenant.metrics.note_submitted(depth);
        let shard = tenant.shard;
        let job = Job {
            tenant: Arc::clone(&tenant),
            batch,
            request_id,
            submitted: Instant::now(),
            done: Box::new(done),
        };
        match self.shards[shard].push(job) {
            Ok(()) => Ok(()),
            Err(_job) => {
                // Raced with shutdown: un-admit and report.
                tenant.gate.release();
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Blocks until every tenant's queue is idle (no batch in flight).
    /// Meaningful only once the submitters have stopped.
    pub fn quiesce(&self) {
        for tenant in self.tenant_arcs() {
            tenant.gate.wait_idle();
        }
    }

    /// Pauses delivery on every shard (queued jobs are retained).
    pub fn pause(&self) {
        for shard in &self.shards {
            shard.set_paused(true);
        }
    }

    /// Resumes delivery on every shard.
    pub fn resume(&self) {
        for shard in &self.shards {
            shard.set_paused(false);
        }
    }

    /// Runs `f` against a tenant's engine (read-only view). Waits for
    /// the engine lock, so call it quiesced unless racy reads are fine.
    pub fn with_tenant<R>(&self, name: &str, f: impl FnOnce(&DynFd) -> R) -> Result<R, ServeError> {
        let tenant = self.lookup(name)?;
        tenant.with_backend(|b| f(b.dynfd()))
    }

    /// Arms a deterministic failpoint on a tenant's engine (fault
    /// injection harnesses; see [`DynFd::arm_failpoint`]).
    pub fn arm_failpoint(&self, name: &str, fp: FailPoint) -> Result<(), ServeError> {
        let tenant = self.lookup(name)?;
        tenant.with_backend(|b| b.dynfd_mut().arm_failpoint(fp))
    }

    /// A tenant's durable sequence number.
    pub fn tenant_seq(&self, name: &str) -> Result<u64, ServeError> {
        let tenant = self.lookup(name)?;
        tenant.with_backend(|b| b.seq())
    }

    /// A tenant's metrics snapshot.
    pub fn metrics(&self, name: &str) -> Result<MetricsSnapshot, ServeError> {
        Ok(self.lookup(name)?.metrics.snapshot())
    }

    /// A tenant's current in-flight batch count.
    pub fn queue_depth(&self, name: &str) -> Result<usize, ServeError> {
        Ok(self.lookup(name)?.gate.depth())
    }

    /// All tenant names, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenant_arcs().iter().map(|t| t.name.clone()).collect()
    }

    /// Total jobs sitting in shard queues right now (diagnostics).
    pub fn queued_jobs(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether the intake has been closed by [`ServeEngine::shutdown`].
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Drains and stops the pool: closes the intake, lets every queued
    /// job complete (resuming paused shards), joins the workers, then
    /// fsyncs each durable tenant's WAL tail. With
    /// [`ServeConfig::drain_kill_after`] armed, the process aborts
    /// mid-drain instead — the crash-harness window.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.closed.store(true, Ordering::SeqCst);
        if self.config.drain_kill_after.is_some() {
            // Budget was pre-loaded at construction; arm the check only
            // now so that jobs completed *before* the drain window never
            // count against it.
            self.drain.armed.store(true, Ordering::SeqCst);
        }
        self.resume();
        for shard in &self.shards {
            shard.close();
        }
        for handle in std::mem::take(&mut self.workers) {
            let _ = handle.join();
        }
        let mut report = ShutdownReport::default();
        for tenant in self.tenant_arcs() {
            report.tenants += 1;
            match tenant.with_backend(|b| b.sync()) {
                Ok(Ok(())) => report.synced += 1,
                Ok(Err(e)) => report
                    .sync_errors
                    .push((tenant.name.clone(), e.to_string())),
                Err(_) => report.poisoned.push(tenant.name.clone()),
            }
        }
        report
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        // A dropped engine (shutdown not called, or called — both reach
        // here) must not leave workers blocked forever on open queues.
        self.closed.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            shard.close();
        }
        for handle in std::mem::take(&mut self.workers) {
            let _ = handle.join();
        }
    }
}
