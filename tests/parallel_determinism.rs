//! The parallel validation engine must be invisible in the results: for
//! any batch trace, running DynFD with `parallelism = 1` (the sequential
//! code path, i.e. the pre-parallelism behavior) and with `parallelism =
//! n > 1` must produce identical covers, identical per-batch FD deltas,
//! and identical §5.2 violation annotations. Only wall-clock time may
//! differ.

use dynfd::common::{Fd, RecordId, Schema};
use dynfd::core::{BatchResult, DynFd, DynFdConfig, SearchMode};
use dynfd::relation::{Batch, ChangeOp, DynamicRelation};
use proptest::prelude::*;

const COLS: usize = 4;

/// The §5.2 annotation dump: one violating record pair per non-FD.
type Annotations = Vec<(Fd, (RecordId, RecordId))>;

/// Everything observable about one replayed trace.
type Replay = (Vec<BatchResult>, Annotations, DynFd);

/// Replays `batches` over a fresh DynFD instance with the given config,
/// asserting internal consistency at the end, and returns the per-batch
/// deltas plus the final annotation dump.
fn replay(initial: &[Vec<String>], batches: &[Batch], config: DynFdConfig) -> Replay {
    let rel = DynamicRelation::from_rows(Schema::anonymous("p", COLS), initial).unwrap();
    let mut dynfd = DynFd::new(rel, config);
    let results = batches
        .iter()
        .map(|b| dynfd.apply_batch(b).unwrap())
        .collect();
    let annotations = dynfd.violation_annotations();
    (results, annotations, dynfd)
}

/// Asserts the observable outputs of two replays are identical.
fn assert_replays_match(seq: &Replay, par: &Replay, label: &str) {
    assert_eq!(seq.0.len(), par.0.len());
    for (i, (s, p)) in seq.0.iter().zip(&par.0).enumerate() {
        assert_eq!(s.added, p.added, "{label}: added FDs diverged at batch {i}");
        assert_eq!(
            s.removed, p.removed,
            "{label}: removed FDs diverged at batch {i}"
        );
    }
    assert_eq!(seq.1, par.1, "{label}: violation annotations diverged");
    assert_eq!(
        seq.2.positive_cover(),
        par.2.positive_cover(),
        "{label}: positive covers diverged"
    );
    assert_eq!(
        seq.2.negative_cover(),
        par.2.negative_cover(),
        "{label}: negative covers diverged"
    );
}

/// A hand-built trace with enough churn to trigger the violation search
/// and the depth-first search: a skewed relation, a delete wave, then an
/// insert wave re-introducing near-duplicates.
fn churny_trace() -> (Vec<Vec<String>>, Vec<Batch>) {
    let row = |a: u64, b: u64, c: u64, d: u64| {
        vec![
            format!("a{a}"),
            format!("b{b}"),
            format!("c{c}"),
            format!("d{d}"),
        ]
    };
    let initial: Vec<Vec<String>> = (0..40).map(|i| row(i % 7, i % 5, i % 3, i % 2)).collect();

    let mut batches = Vec::new();
    let mut b = Batch::new();
    for i in 0..12u64 {
        b.delete(RecordId(i * 3));
    }
    for i in 0..10u64 {
        b.insert(row(i % 2, i % 2, i % 2, i));
    }
    batches.push(b);

    let mut b = Batch::new();
    for i in 0..8u64 {
        b.insert(row(9, i, i % 3, i % 2));
    }
    for rid in [1u64, 2, 4, 5, 7, 8] {
        b.delete(RecordId(rid));
    }
    batches.push(b);

    let mut b = Batch::new();
    b.update(RecordId(40), row(0, 0, 0, 0));
    for i in 0..6u64 {
        b.insert(row(i, 0, 0, 0));
    }
    batches.push(b);

    (initial, batches)
}

#[test]
fn parallel_replay_is_bit_identical() {
    let (initial, batches) = churny_trace();
    let seq = replay(
        &initial,
        &batches,
        DynFdConfig {
            parallelism: 1,
            ..DynFdConfig::default()
        },
    );
    for threads in [2, 4, 8] {
        let par = replay(
            &initial,
            &batches,
            DynFdConfig {
                parallelism: threads,
                ..DynFdConfig::default()
            },
        );
        assert_replays_match(&seq, &par, &format!("{threads} threads"));
        assert_eq!(par.0.last().unwrap().metrics.threads_used, threads);
    }
    seq.2
        .verify_consistency()
        .expect("sequential run consistent");
}

#[test]
fn auto_parallelism_matches_sequential() {
    let (initial, batches) = churny_trace();
    let seq = replay(
        &initial,
        &batches,
        DynFdConfig {
            parallelism: 1,
            ..DynFdConfig::default()
        },
    );
    // parallelism = 0 resolves to the machine's core count.
    let auto = replay(&initial, &batches, DynFdConfig::default());
    assert_replays_match(&seq, &auto, "auto parallelism");
    assert!(auto.0.last().unwrap().metrics.threads_used >= 1);
    auto.2
        .verify_consistency()
        .expect("parallel run consistent");
}

#[test]
fn parallel_replay_matches_under_baseline_config() {
    // The baseline (naive search, no pruning) exercises different code
    // paths — they must be thread-count-invariant too.
    let (initial, batches) = churny_trace();
    let seq = replay(
        &initial,
        &batches,
        DynFdConfig {
            parallelism: 1,
            ..DynFdConfig::baseline()
        },
    );
    let par = replay(
        &initial,
        &batches,
        DynFdConfig {
            parallelism: 4,
            ..DynFdConfig::baseline()
        },
    );
    assert_replays_match(&seq, &par, "baseline config");
}

#[test]
fn testkit_traces_are_thread_count_invariant() {
    // Adversarial testkit traces (Zipf-skewed, all-duplicates,
    // null-heavy, ...) must replay bit-identically at every thread
    // count — and dispatch the *same validation jobs*: the per-batch
    // `BatchMetrics` job counts are part of the deterministic contract,
    // not just the covers.
    use dynfd_testkit::Trace;

    let replay_trace = |trace: &Trace, threads: usize| -> Replay {
        let config = DynFdConfig {
            parallelism: threads,
            ..DynFdConfig::default()
        };
        let mut dynfd = DynFd::new(trace.to_relation(), config);
        let results: Vec<BatchResult> = trace
            .to_batches()
            .iter()
            .map(|b| dynfd.apply_batch(b).unwrap())
            .collect();
        let annotations = dynfd.violation_annotations();
        (results, annotations, dynfd)
    };

    for case in 0..5 {
        let trace = Trace::for_case(11, case);
        let seq = replay_trace(&trace, 1);
        for threads in [2, 8] {
            let par = replay_trace(&trace, threads);
            let label = format!("case {case} ({}), {threads} threads", trace.profile);
            assert_replays_match(&seq, &par, &label);
            for (i, (s, p)) in seq.0.iter().zip(&par.0).enumerate() {
                assert_eq!(
                    s.metrics.validation_jobs(),
                    p.metrics.validation_jobs(),
                    "{label}: validation job count diverged at batch {i}"
                );
                assert_eq!(
                    s.metrics.fd_validations, p.metrics.fd_validations,
                    "{label}: FD validation count diverged at batch {i}"
                );
                assert_eq!(
                    s.metrics.non_fd_validations, p.metrics.non_fd_validations,
                    "{label}: non-FD validation count diverged at batch {i}"
                );
            }
        }
        seq.2.verify_consistency().expect("replay consistent");
    }
}

// ---------------------------------------------------------------------------
// Property-based variant: random traces, random strategy configurations.
// ---------------------------------------------------------------------------

fn arb_row() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec((0u8..3).prop_map(|v| format!("v{v}")), COLS)
}

#[derive(Clone, Debug)]
enum ScriptOp {
    Insert(Vec<String>),
    DeleteNth(usize),
    UpdateNth(usize, Vec<String>),
}

fn arb_script() -> impl Strategy<Value = Vec<ScriptOp>> {
    proptest::collection::vec(
        prop_oneof![
            2 => arb_row().prop_map(ScriptOp::Insert),
            1 => (0usize..32).prop_map(ScriptOp::DeleteNth),
            1 => ((0usize..32), arb_row()).prop_map(|(i, r)| ScriptOp::UpdateNth(i, r)),
        ],
        1..25,
    )
}

fn arb_config() -> impl Strategy<Value = DynFdConfig> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(cluster, progressive, validation, dfs)| DynFdConfig {
            cluster_pruning: cluster,
            violation_search: if progressive {
                SearchMode::Progressive
            } else {
                SearchMode::Naive
            },
            validation_pruning: validation,
            depth_first_search: dfs,
            ..DynFdConfig::default()
        },
    )
}

fn to_batches(script: &[ScriptOp], initial: usize, batch_size: usize) -> Vec<Batch> {
    let mut live: Vec<RecordId> = (0..initial as u64).map(RecordId).collect();
    let mut next_id = initial as u64;
    let mut ops = Vec::new();
    for op in script {
        match op {
            ScriptOp::Insert(row) => {
                ops.push(ChangeOp::Insert(row.clone()));
                live.push(RecordId(next_id));
                next_id += 1;
            }
            ScriptOp::DeleteNth(i) => {
                if live.is_empty() {
                    continue;
                }
                let rid = live.remove(i % live.len());
                ops.push(ChangeOp::Delete(rid));
            }
            ScriptOp::UpdateNth(i, row) => {
                if live.is_empty() {
                    continue;
                }
                let rid = live.remove(i % live.len());
                ops.push(ChangeOp::Update(rid, row.clone()));
                live.push(RecordId(next_id));
                next_id += 1;
            }
        }
    }
    Batch::chunk(ops, batch_size)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_traces_are_thread_count_invariant(
        initial in proptest::collection::vec(arb_row(), 0..10),
        script in arb_script(),
        batch_size in 1usize..7,
        config in arb_config(),
        threads in 2usize..6,
    ) {
        let batches = to_batches(&script, initial.len(), batch_size);
        let seq = replay(&initial, &batches, DynFdConfig { parallelism: 1, ..config });
        let par = replay(&initial, &batches, DynFdConfig { parallelism: threads, ..config });
        prop_assert_eq!(seq.0.len(), par.0.len());
        for (s, p) in seq.0.iter().zip(&par.0) {
            prop_assert_eq!(&s.added, &p.added);
            prop_assert_eq!(&s.removed, &p.removed);
        }
        prop_assert_eq!(&seq.1, &par.1, "annotations diverged ({} threads)", threads);
        prop_assert_eq!(seq.2.positive_cover(), par.2.positive_cover());
        prop_assert_eq!(seq.2.negative_cover(), par.2.negative_cover());
        if let Err(e) = par.2.verify_consistency() {
            return Err(TestCaseError::fail(format!("parallel run inconsistent: {e}")));
        }
    }
}
