//! Seeded differential fuzzer for DynFD.
//!
//! ```text
//! cargo run -p dynfd-testkit --bin fuzz -- --seed 2 --cases 25 --budget-secs 120
//! ```
//!
//! Each case generates a deterministic trace (`Trace::for_case(seed,
//! i)`), replays it under every pruning configuration, and checks the
//! maintained covers against the three static oracles plus the four
//! metamorphic invariants. Any failure is delta-debugged down to a
//! near-minimal trace and written as a self-contained
//! `*.repro.json` file (default directory: `repros/`).
//!
//! Exit code 0 = every completed case clean; 1 = at least one
//! discrepancy (repro files written); 2 = bad usage.
//!
//! `--budget-secs` bounds wall time: the fuzzer stops starting new cases
//! once the budget is spent (cases already running finish). `--fault`
//! injects a deliberate cover bug (`drop-first` or `add-bogus`) to
//! demonstrate the catch → shrink → repro pipeline end to end.
//!
//! `--inject` turns on engine fault injection: `poisoned-batches`
//! submits invalid batch variants that must be rejected atomically,
//! `mid-batch-panic` arms seeded panic failpoints whose failures must
//! roll back bit-identically and succeed on retry, and
//! `cover-corruption` plants silent cover drift the degraded-mode
//! rebuild must repair. Three further modes attack the *durable* engine
//! (`dynfd-persist`) instead: `crash-at-frame` crashes between the WAL
//! append and the apply, `torn-tail` truncates the log at a seeded
//! byte, and `bit-flip-wal` flips a seeded bit anywhere in the log —
//! recovery must truncate to the last valid frame (never panic) and
//! reconstruct a state bit-identical to a fresh replay of the
//! surviving prefix. `wal-all` cycles the three durable modes. Three
//! governance chaos modes attack the serve layer's resource governor
//! (`quota-storm`, `deadline-storm`, `evict-during-apply`; `chaos-all`
//! cycles them) at worker counts cycling 1/2/8. `all` cycles every
//! mode, case by case. The differential oracle and metamorphic checks
//! keep running for the in-memory modes.

use dynfd_testkit::{
    check_chaos, check_net, check_trace, check_trace_durable, check_wire, shrink_trace, ChaosFault,
    ChaosStats, CoverFault, CrashStats, EngineFault, NetFault, NetStats, Repro, RunnerOptions,
    Trace, TraceStats, WalFault, WireFault, WireStats,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Args {
    seed: u64,
    cases: u64,
    budget: Duration,
    out_dir: PathBuf,
    fault: Option<CoverFault>,
    inject: Option<InjectMode>,
}

/// The `--inject` argument: one fault mode (in-memory or durable), or
/// a family of modes cycled case by case.
#[derive(Clone, Copy)]
enum InjectMode {
    One(EngineFault),
    Wal(WalFault),
    Wire(WireFault),
    Chaos(ChaosFault),
    Net(NetFault),
    WalAll,
    WireAll,
    ChaosAll,
    NetAll,
    All,
}

/// The fault actually injected into one case.
#[derive(Clone, Copy)]
enum CaseFault {
    Engine(EngineFault),
    Wal(WalFault),
    Wire(WireFault),
    Chaos(ChaosFault),
    Net(NetFault),
}

impl CaseFault {
    fn name(self) -> &'static str {
        match self {
            CaseFault::Engine(mode) => mode.name(),
            CaseFault::Wal(mode) => mode.name(),
            CaseFault::Wire(mode) => mode.name(),
            CaseFault::Chaos(mode) => mode.name(),
            CaseFault::Net(mode) => mode.name(),
        }
    }
}

impl InjectMode {
    fn for_case(self, case: u64) -> CaseFault {
        match self {
            InjectMode::One(mode) => CaseFault::Engine(mode),
            InjectMode::Wal(mode) => CaseFault::Wal(mode),
            InjectMode::Wire(mode) => CaseFault::Wire(mode),
            InjectMode::WalAll => {
                CaseFault::Wal(WalFault::ALL[(case % WalFault::ALL.len() as u64) as usize])
            }
            InjectMode::WireAll => {
                CaseFault::Wire(WireFault::ALL[(case % WireFault::ALL.len() as u64) as usize])
            }
            InjectMode::Chaos(mode) => CaseFault::Chaos(mode),
            InjectMode::ChaosAll => {
                CaseFault::Chaos(ChaosFault::ALL[(case % ChaosFault::ALL.len() as u64) as usize])
            }
            InjectMode::Net(mode) => CaseFault::Net(mode),
            InjectMode::NetAll => {
                CaseFault::Net(NetFault::ALL[(case % NetFault::ALL.len() as u64) as usize])
            }
            InjectMode::All => {
                let n = (EngineFault::ALL.len()
                    + WalFault::ALL.len()
                    + WireFault::ALL.len()
                    + ChaosFault::ALL.len()
                    + NetFault::ALL.len()) as u64;
                let i = (case % n) as usize;
                if i < EngineFault::ALL.len() {
                    CaseFault::Engine(EngineFault::ALL[i])
                } else if i < EngineFault::ALL.len() + WalFault::ALL.len() {
                    CaseFault::Wal(WalFault::ALL[i - EngineFault::ALL.len()])
                } else if i < EngineFault::ALL.len() + WalFault::ALL.len() + WireFault::ALL.len() {
                    CaseFault::Wire(
                        WireFault::ALL[i - EngineFault::ALL.len() - WalFault::ALL.len()],
                    )
                } else if i < EngineFault::ALL.len()
                    + WalFault::ALL.len()
                    + WireFault::ALL.len()
                    + ChaosFault::ALL.len()
                {
                    CaseFault::Chaos(
                        ChaosFault::ALL[i
                            - EngineFault::ALL.len()
                            - WalFault::ALL.len()
                            - WireFault::ALL.len()],
                    )
                } else {
                    CaseFault::Net(
                        NetFault::ALL[i
                            - EngineFault::ALL.len()
                            - WalFault::ALL.len()
                            - WireFault::ALL.len()
                            - ChaosFault::ALL.len()],
                    )
                }
            }
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: fuzz [--seed N] [--cases N] [--budget-secs N] [--out DIR] \\\n       \
         [--fault drop-first|add-bogus] \\\n       \
         [--inject poisoned-batches|mid-batch-panic|cover-corruption|\\\n               \
         crash-at-frame|torn-tail|bit-flip-wal|wal-all|\\\n               \
         truncated-frame|garbage-frame|oversized-frame|wire-all|\\\n               \
         quota-storm|deadline-storm|evict-during-apply|chaos-all|\\\n               \
         net-delay|net-torn|net-dup|net-half-open|net-reconnect|net-all|all]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 0,
        cases: 25,
        budget: Duration::from_secs(300),
        out_dir: PathBuf::from("repros"),
        fault: None,
        inject: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--cases" => args.cases = value().parse().unwrap_or_else(|_| usage()),
            "--budget-secs" => {
                args.budget = Duration::from_secs(value().parse().unwrap_or_else(|_| usage()))
            }
            "--out" => args.out_dir = PathBuf::from(value()),
            "--fault" => {
                args.fault = Some(match value().as_str() {
                    "drop-first" => CoverFault::DropFirstFd,
                    "add-bogus" => CoverFault::AddBogusFd,
                    _ => usage(),
                })
            }
            "--inject" => {
                let v = value();
                args.inject = Some(match v.as_str() {
                    "all" => InjectMode::All,
                    "wal-all" => InjectMode::WalAll,
                    "wire-all" => InjectMode::WireAll,
                    "chaos-all" => InjectMode::ChaosAll,
                    "net-all" => InjectMode::NetAll,
                    name => EngineFault::by_name(name)
                        .map(InjectMode::One)
                        .or_else(|| WalFault::by_name(name).map(InjectMode::Wal))
                        .or_else(|| WireFault::by_name(name).map(InjectMode::Wire))
                        .or_else(|| ChaosFault::by_name(name).map(InjectMode::Chaos))
                        .or_else(|| NetFault::by_name(name).map(InjectMode::Net))
                        .unwrap_or_else(|| usage()),
                })
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let base_opts = RunnerOptions {
        fault: args.fault,
        ..RunnerOptions::default()
    };
    let start = Instant::now();
    let mut totals = TraceStats::default();
    let mut crash_totals = CrashStats::default();
    let mut wire_totals = WireStats::default();
    let mut chaos_totals = ChaosStats::default();
    let mut net_totals = NetStats::default();
    let mut completed = 0u64;
    let mut failures = 0u64;

    for case in 0..args.cases {
        if start.elapsed() > args.budget {
            println!(
                "budget exhausted after {} of {} cases ({:.1}s)",
                completed,
                args.cases,
                start.elapsed().as_secs_f64()
            );
            break;
        }
        let trace = Trace::for_case(args.seed, case);
        let case_fault = args.inject.map(|m| m.for_case(case));
        let label = format!(
            "case {case:>3} [{:<14}]{} {} cols, {} rows, {} ops, batch {}",
            trace.profile,
            case_fault.map_or(String::new(), |m| format!(" inject={}", m.name())),
            trace.arity(),
            trace.initial_rows.len(),
            trace.ops.len(),
            trace.batch_size
        );

        // Durable (WAL) faults run the crash-recovery checker instead of
        // the differential runner; failures shrink and repro the same way.
        if let Some(CaseFault::Wal(wal_fault)) = case_fault {
            match check_trace_durable(&trace, wal_fault) {
                Ok(stats) => {
                    crash_totals.absorb(&stats);
                    completed += 1;
                    println!(
                        "{label}: ok ({} before crash, {} replayed, {} truncations, {} resumed)",
                        stats.batches_before_crash,
                        stats.frames_replayed,
                        stats.truncations,
                        stats.batches_resumed
                    );
                }
                Err(failure) => {
                    failures += 1;
                    completed += 1;
                    println!("{label}: FAILED — {failure}");
                    println!("  shrinking ({} ops)...", trace.ops.len());
                    let shrunk =
                        shrink_trace(&trace, |t| check_trace_durable(t, wal_fault).is_err());
                    let final_failure = check_trace_durable(&shrunk, wal_fault)
                        .expect_err("shrunk trace still fails by construction");
                    println!(
                        "  shrunk to {} ops, {} rows",
                        shrunk.ops.len(),
                        shrunk.initial_rows.len()
                    );
                    write_repro(&args.out_dir, Repro::new(shrunk, &final_failure));
                }
            }
            continue;
        }

        // Wire faults run the framed-protocol oracle; the damage site is
        // seeded, so failures reproduce from the (seed, case, mode)
        // triple alone (traces shrink the same way when needed).
        if let Some(CaseFault::Wire(wire_fault)) = case_fault {
            match check_wire(&trace, wire_fault, args.seed ^ case) {
                Ok(stats) => {
                    wire_totals.absorb(&stats);
                    completed += 1;
                    println!(
                        "{label}: ok ({} well-formed frames, {} responses, {} sheds, {} typed errors)",
                        stats.wellformed, stats.responses, stats.sheds, stats.errors
                    );
                }
                Err(failure) => {
                    failures += 1;
                    completed += 1;
                    println!("{label}: FAILED — {failure}");
                    println!("  shrinking ({} ops)...", trace.ops.len());
                    let shrunk = shrink_trace(&trace, |t| {
                        check_wire(t, wire_fault, args.seed ^ case).is_err()
                    });
                    let final_failure = check_wire(&shrunk, wire_fault, args.seed ^ case)
                        .expect_err("shrunk trace still fails by construction");
                    println!(
                        "  shrunk to {} ops, {} rows",
                        shrunk.ops.len(),
                        shrunk.initial_rows.len()
                    );
                    write_repro(&args.out_dir, Repro::new(shrunk, &final_failure));
                }
            }
            continue;
        }

        // Chaos (governance) faults run their own multi-tenant storm —
        // the per-case trace only sets the label; the storm derives its
        // workloads from (seed ^ case). Worker counts cycle 1/2/8 so
        // every mode is exercised serial, narrow, and wide. A failing
        // case reproduces from the (seed, case, mode) triple alone.
        if let Some(CaseFault::Chaos(chaos_fault)) = case_fault {
            let workers = [1usize, 2, 8][(case % 3) as usize];
            let scratch = std::env::temp_dir().join(format!(
                "dynfd-chaos-{}-{case}-{}",
                args.seed,
                std::process::id()
            ));
            let result = check_chaos(chaos_fault, args.seed ^ case, workers, &scratch);
            let _ = std::fs::remove_dir_all(&scratch);
            match result {
                Ok(stats) => {
                    chaos_totals.absorb(&stats);
                    completed += 1;
                    println!(
                        "{label}: ok ({} workers, {} applied, {} quota / {} deadline / {} evict \
                         rejections, {} degrades, {} evictions)",
                        stats.workers,
                        stats.applied,
                        stats.quota_rejections,
                        stats.deadline_rejections,
                        stats.evict_rejections,
                        stats.degrades,
                        stats.evictions
                    );
                }
                Err(failure) => {
                    failures += 1;
                    completed += 1;
                    println!("{label}: FAILED — {failure}");
                    println!(
                        "  repro: fuzz --seed {} --cases {} --inject {} (case {case}, {workers} workers)",
                        args.seed,
                        case + 1,
                        chaos_fault.name()
                    );
                }
            }
            continue;
        }

        // Network faults storm a real socket transport behind the
        // deterministic proxy; the workload derives from (seed ^ case),
        // so a failing case reproduces from the triple alone.
        if let Some(CaseFault::Net(net_fault)) = case_fault {
            let workers = [1usize, 2, 8][(case % 3) as usize];
            let scratch = std::env::temp_dir().join(format!(
                "dynfd-net-{}-{case}-{}",
                args.seed,
                std::process::id()
            ));
            let result = check_net(net_fault, args.seed ^ case, workers, &scratch);
            let _ = std::fs::remove_dir_all(&scratch);
            match result {
                Ok(stats) => {
                    net_totals.absorb(&stats);
                    completed += 1;
                    println!(
                        "{label}: ok ({} workers, {} batches exactly-once, {} connects, \
                         {} reconnects, {} resends, {} replays, {} dedups, {} WALs bit-identical)",
                        stats.workers,
                        stats.batches,
                        stats.connects,
                        stats.reconnects,
                        stats.resends,
                        stats.replays,
                        stats.dedups,
                        stats.wals_compared
                    );
                }
                Err(failure) => {
                    failures += 1;
                    completed += 1;
                    println!("{label}: FAILED — {failure}");
                    println!(
                        "  repro: fuzz --seed {} --cases {} --inject {} (case {case}, {workers} workers)",
                        args.seed,
                        case + 1,
                        net_fault.name()
                    );
                }
            }
            continue;
        }

        let engine_fault = match case_fault {
            Some(CaseFault::Engine(mode)) => Some(mode),
            _ => None,
        };
        let opts = RunnerOptions {
            engine_fault,
            ..base_opts.clone()
        };
        match check_trace(&trace, &opts) {
            Ok(stats) => {
                totals.absorb(&stats);
                completed += 1;
                let fault_note = if stats.faults_injected > 0 {
                    format!(
                        ", {} faults injected, {} rollbacks verified, {} rebuilds",
                        stats.faults_injected, stats.rollbacks_verified, stats.cover_rebuilds
                    )
                } else {
                    String::new()
                };
                println!(
                    "{label}: ok ({} oracle checks, {} metamorphic checks{fault_note})",
                    stats.oracle_checks, stats.metamorphic_checks
                );
            }
            Err(failure) => {
                failures += 1;
                completed += 1;
                println!("{label}: FAILED — {failure}");
                // Shrink against a focused runner (every oracle and
                // invariant, but only the 16-config sweep's failing
                // configuration would be wasteful to re-run in full).
                let shrink_opts = opts.clone();
                println!("  shrinking ({} ops)...", trace.ops.len());
                let shrunk = shrink_trace(&trace, |t| check_trace(t, &shrink_opts).is_err());
                let final_failure = check_trace(&shrunk, &shrink_opts)
                    .expect_err("shrunk trace still fails by construction");
                println!(
                    "  shrunk to {} ops, {} rows",
                    shrunk.ops.len(),
                    shrunk.initial_rows.len()
                );
                write_repro(&args.out_dir, Repro::new(shrunk, &final_failure));
            }
        }
    }

    println!(
        "\n{completed} cases, {failures} failures; {} configs replayed, {} batches, \
         {} oracle checks, {} metamorphic checks, {} faults injected, \
         {} rollbacks verified, {} cover rebuilds in {:.1}s",
        totals.configs,
        totals.batches,
        totals.oracle_checks,
        totals.metamorphic_checks,
        totals.faults_injected,
        totals.rollbacks_verified,
        totals.cover_rebuilds,
        start.elapsed().as_secs_f64()
    );
    if crash_totals.crashes > 0 {
        println!(
            "{} simulated crashes: {} batches before crash, {} frames replayed, \
             {} truncations, {} batches resumed",
            crash_totals.crashes,
            crash_totals.batches_before_crash,
            crash_totals.frames_replayed,
            crash_totals.truncations,
            crash_totals.batches_resumed
        );
    }
    if wire_totals.damaged > 0 {
        println!(
            "{} damaged wire streams: {} well-formed frames answered, {} responses, \
             {} sheds, {} typed errors",
            wire_totals.damaged,
            wire_totals.wellformed,
            wire_totals.responses,
            wire_totals.sheds,
            wire_totals.errors
        );
    }
    if chaos_totals.tenants > 0 {
        println!(
            "governance chaos: {} tenants stormed, {} batches applied, \
             {} quota / {} deadline / {} evict rejections, {} degrades, {} evictions",
            chaos_totals.tenants,
            chaos_totals.applied,
            chaos_totals.quota_rejections,
            chaos_totals.deadline_rejections,
            chaos_totals.evict_rejections,
            chaos_totals.degrades,
            chaos_totals.evictions
        );
    }
    if net_totals.tenants > 0 {
        println!(
            "network chaos: {} tenants served, {} batches exactly-once, {} connects, \
             {} reconnects, {} resends, {} window replays, {} in-flight dedups, \
             {} states and {} WALs bit-identical",
            net_totals.tenants,
            net_totals.batches,
            net_totals.connects,
            net_totals.reconnects,
            net_totals.resends,
            net_totals.replays,
            net_totals.dedups,
            net_totals.states_compared,
            net_totals.wals_compared
        );
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

fn write_repro(out_dir: &PathBuf, repro: Repro) {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("  cannot create {}: {e}", out_dir.display());
        return;
    }
    let path = out_dir.join(repro.file_name());
    match std::fs::write(&path, repro.to_json()) {
        Ok(()) => println!("  repro written to {}", path.display()),
        Err(e) => eprintln!("  cannot write {}: {e}", path.display()),
    }
}
