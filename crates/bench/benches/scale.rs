//! Paper-scale layout benchmark: the six Table 3 dataset shapes pushed
//! to one million rows each, with the columnar arena measured against
//! the retained row-oriented reference store *in the same process on
//! the same generated rows* — the headline numbers for the
//! columnar-store PR.
//!
//! Three sweeps land in `BENCH_scale.json` at the workspace root:
//!
//! * `layout/<shape>/arity{2,3}/{columnar,rowstore}` — a fixed list of
//!   arity-2/arity-3 validation jobs over the busiest attributes of
//!   each shape, run through [`validate`] (dense PLIs, open-addressed
//!   group tables) and [`validate_rowstore`] (BTreeMap PLIs, HashMap
//!   group tables). The acceptance bar for the PR is a ≥2× columnar
//!   advantage on the medians.
//! * `batch_sweep/<shape>/size/{100,1000,10000}` — fig-5-style
//!   substrate cost per batch: apply one generated batch, run the
//!   delta-pruned arity-2 candidates, roll back. Rollback restores the
//!   arena bit-for-bit (including the id watermark), so every sample
//!   measures the identical transition.
//! * `pr4_shape/arity{1,2,3}/{nocache,cache}/threads/{1,2}` — the exact
//!   5,000-row shape of `BENCH_pr4.json` (PR 4's cache sweep), rerun on
//!   the columnar store for a direct before/after comparison.
//!
//! `DYNFD_SCALE_ROWS` overrides the per-shape row count (CI smoke runs
//! use 100,000); `DYNFD_BENCH_SAMPLES` overrides the sample count.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use dynfd_common::{AttrSet, Schema};
use dynfd_datagen::{GeneratedDataset, PAPER_PROFILES};
use dynfd_relation::{
    validate, validate_many, validate_many_cached, validate_rowstore, DynamicRelation, PliCache,
    RowStoreRelation, ValidationJob, ValidationOptions,
};

/// Change-stream prefix retained per shape: enough to carve the batch
/// sweep's largest batch with slack, without generating the profile's
/// full scaled history (tens of millions of ops for the update-heavy
/// shapes).
const MAX_CHANGES: usize = 40_000;

/// Fig-5-style batch sizes (the paper sweeps 1 to 10,000; the sub-100
/// points are dominated by fixed per-batch cost already visible at 100).
const BATCH_SIZES: [usize; 3] = [100, 1_000, 10_000];

/// Cache budget and sequential-fallback floor of the PR 4 sweep,
/// replicated verbatim so the before/after rows compare directly.
const BUDGET: usize = 64 << 20;
const MIN_JOBS: usize = 16;

fn scale_rows() -> usize {
    std::env::var("DYNFD_SCALE_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Attributes ranked by non-singleton cluster count, descending — the
/// attributes whose PLIs carry the validation work. Ties break toward
/// the lower attribute index, so the ranking (and with it the job list)
/// is deterministic for a given generated dataset.
fn busy_attrs(rel: &DynamicRelation) -> Vec<usize> {
    let mut ranked: Vec<(usize, usize)> = (0..rel.arity())
        .map(|a| (rel.pli(a).non_singleton_count(), a))
        .collect();
    ranked.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
    ranked.into_iter().map(|(_, a)| a).collect()
}

/// Up to three LHS sets of the given arity drawn from the busiest
/// attributes, each with the two busiest remaining attributes as RHS
/// (multi-RHS exercises the grouped agree-set tables the way the engine
/// does).
fn jobs_for(busy: &[usize], lhs_arity: usize) -> Vec<(AttrSet, AttrSet)> {
    let mut jobs = Vec::new();
    for start in 0..3usize {
        if start + lhs_arity > busy.len() {
            break;
        }
        let lhs: AttrSet = busy[start..start + lhs_arity].iter().copied().collect();
        let rhs: AttrSet = busy
            .iter()
            .copied()
            .filter(|a| !lhs.contains(*a))
            .take(2)
            .collect();
        if !rhs.is_empty() {
            jobs.push((lhs, rhs));
        }
    }
    jobs
}

fn bench_layout_scale(c: &mut Criterion) {
    c.sample_size(dynfd_bench::bench_samples(9));
    let rows = scale_rows();
    let full = ValidationOptions::full();

    for profile in PAPER_PROFILES {
        let mut p = profile.scaled_to_rows(rows);
        p.changes = p.changes.min(MAX_CHANGES);
        eprintln!(
            "[scale] generating {} at {} rows...",
            p.name, p.initial_rows
        );
        let data = GeneratedDataset::generate(&p);
        let mut columnar = data.to_relation();
        let reference = RowStoreRelation::from_rows(data.schema.clone(), &data.initial_rows)
            .expect("generated rows match the schema");
        let busy = busy_attrs(&columnar);

        for lhs_arity in [2usize, 3] {
            let jobs = jobs_for(&busy, lhs_arity);
            if jobs.is_empty() {
                continue;
            }
            let mut group = c.benchmark_group(format!("layout/{}/arity{lhs_arity}", p.name));
            group.bench_function("columnar", |b| {
                b.iter(|| {
                    jobs.iter()
                        .map(|&(lhs, rhs)| {
                            validate(&columnar, black_box(lhs), rhs, &full)
                                .outcomes
                                .len()
                        })
                        .sum::<usize>()
                })
            });
            group.bench_function("rowstore", |b| {
                b.iter(|| {
                    jobs.iter()
                        .map(|&(lhs, rhs)| {
                            validate_rowstore(&reference, black_box(lhs), rhs, &full)
                                .outcomes
                                .len()
                        })
                        .sum::<usize>()
                })
            });
            group.finish();
        }

        // Fig-5-style batch sweep: per-batch substrate cost (apply +
        // delta-pruned validations + rollback) across batch sizes. The
        // row store sits out — the sweep tracks how the *shipping*
        // layout's per-batch cost scales with batch size.
        let delta_jobs = jobs_for(&busy, 2);
        let mut group = c.benchmark_group(format!("batch_sweep/{}", p.name));
        for &size in &BATCH_SIZES {
            let Some(batch) = data.batches(size, Some(size)).into_iter().next() else {
                continue;
            };
            group.bench_with_input(BenchmarkId::new("size", size), &size, |b, _| {
                b.iter(|| {
                    let (applied, undo) = columnar
                        .apply_batch_logged(black_box(&batch))
                        .expect("generated stream replays");
                    let opts = applied
                        .first_new_id
                        .map(ValidationOptions::delta)
                        .unwrap_or_else(ValidationOptions::full);
                    let n: usize = delta_jobs
                        .iter()
                        .map(|&(lhs, rhs)| validate(&columnar, lhs, rhs, &opts).outcomes.len())
                        .sum();
                    columnar.rollback(undo);
                    n
                })
            });
        }
        group.finish();
    }
}

/// All `lhs -> rhs` jobs of one lattice level over the 6-attribute PR 4
/// shape (duplicated from `cache_sweep.rs` so the two reports stay
/// independently runnable).
fn level_jobs(arity: usize) -> Vec<ValidationJob> {
    let n = 6usize;
    let mut jobs = Vec::new();
    let mut emit = |lhs: AttrSet| {
        let rhs: AttrSet = (0..n).filter(|r| !lhs.contains(*r)).collect();
        jobs.push((lhs, rhs));
    };
    match arity {
        1 => (0..n).for_each(|a| emit(AttrSet::single(a))),
        2 => {
            for a in 0..n {
                for b in (a + 1)..n {
                    emit([a, b].into_iter().collect());
                }
            }
        }
        _ => {
            for a in 0..n {
                for b in (a + 1)..n {
                    for c in (b + 1)..n {
                        emit([a, b, c].into_iter().collect());
                    }
                }
            }
        }
    }
    jobs
}

fn bench_pr4_shape(c: &mut Criterion) {
    c.sample_size(dynfd_bench::bench_samples(9));
    // Identical rows, budget, and job lists to BENCH_pr4.json's sweep:
    // any delta between that report and these rows is the layout change.
    let rows: Vec<Vec<String>> = (0..5_000)
        .map(|i| {
            vec![
                format!("g{}", i % 50),
                format!("h{}", i % 97),
                format!("p{}", i % 11),
                format!("q{}", i % 7),
                format!("r{}", i % 13),
                format!("m{}", i % 49),
            ]
        })
        .collect();
    let rel = DynamicRelation::from_rows(Schema::anonymous("pr4_shape", 6), &rows)
        .expect("static bench rows are well-formed");
    let full = ValidationOptions::full();
    for arity in [1usize, 2, 3] {
        let jobs = level_jobs(arity);
        let mut cache = PliCache::new(BUDGET);
        let _ = validate_many_cached(&rel, &jobs, &full, 1, MIN_JOBS, &mut cache);
        let mut group = c.benchmark_group(format!("pr4_shape/arity{arity}"));
        for threads in [1usize, 2] {
            group.bench_with_input(
                BenchmarkId::new("nocache/threads", threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        validate_many(&rel, black_box(&jobs), &full, threads)
                            .iter()
                            .map(|r| r.outcomes.len())
                            .sum::<usize>()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("cache/threads", threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        validate_many_cached(
                            &rel,
                            black_box(&jobs),
                            &full,
                            threads,
                            MIN_JOBS,
                            &mut cache,
                        )
                        .iter()
                        .map(|r| r.outcomes.len())
                        .sum::<usize>()
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_layout_scale, bench_pr4_shape);

fn main() {
    // Core count is sampled once at runner start, before any benchmark
    // executes — the oversubscription annotations describe the machine
    // the samples ran on, not the one visible at report-write time.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rows = scale_rows();
    benches();
    let shapes = PAPER_PROFILES
        .iter()
        .map(|p| p.name)
        .collect::<Vec<_>>()
        .join(",");
    criterion::write_json_report(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json"),
        &[
            ("bench", "paper-scale layout sweep".into()),
            ("rows_per_shape", rows.into()),
            ("max_changes", MAX_CHANGES.into()),
            ("shapes", shapes.into()),
            ("available_cores", cores.into()),
        ],
        &|r| match criterion::requested_threads(&r.id) {
            Some(n) if n > cores => vec![("oversubscribed".into(), true.into())],
            _ => Vec::new(),
        },
    )
    .expect("write BENCH_scale.json");
}
