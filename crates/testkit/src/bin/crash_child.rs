//! Child process for the crash-recovery harness.
//!
//! `tests/crash_harness.rs` spawns this binary with a deterministic
//! [`CrashPlan`] and expects it to die mid-write (`abort()`, a
//! userspace power cut) at exactly the planned byte/frame. The parent
//! then recovers the directory in-process and checks the recovered
//! state against a fresh replay oracle.
//!
//! ```text
//! crash_child <dir> <seed> <case> <snapshot_every> [<mode> <value>]
//! ```
//!
//! `mode` is one of:
//! - `wal-byte N` — abort once the WAL would grow past absolute byte N
//!   (torn frame on disk);
//! - `frames N` — abort after the Nth frame append + fsync, before the
//!   in-memory apply (the log-but-not-applied window);
//! - `snapshot-byte N` — abort once N bytes of `snapshot.tmp` are
//!   written (partial temp file, no rename);
//! - `serve-drain N` — run a **multi-tenant serve engine** instead
//!   (tenants `t0..t2` from `dynfd_testkit::tenant_traces(seed, 3)`,
//!   each durable under `<dir>/<name>/`), queue every batch with
//!   delivery paused, then shut down and abort after N jobs complete
//!   inside the drain window — the queue-drain kill point. The parent
//!   recovers every tenant directory and compares each against a fresh
//!   replay of its acknowledged prefix.
//!
//! Without a mode the run completes cleanly (exit 0) — the baseline
//! the harness uses for uninterrupted comparisons. If a plan is given
//! but never fires, the run also completes and exits 0; the parent
//! treats that as "scenario vacuous for this trace" and skips it.

use dynfd_core::DynFdConfig;
use dynfd_persist::{CrashPlan, FdEngine};
use dynfd_serve::{AdmissionPolicy, ServeConfig, ServeEngine};
use dynfd_testkit::{tenant_traces, Trace};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: crash_child <dir> <seed> <case> <snapshot_every> \
         [wal-byte|frames|snapshot-byte|serve-drain N]"
    );
    std::process::exit(2);
}

/// The `serve-drain` mode: queue every tenant's batches with delivery
/// paused, then shut down with the drain-kill budget armed. The abort
/// fires on a worker thread after `kill_after` jobs of the drain window
/// complete; if the budget exceeds the queued work the run completes
/// cleanly (exit 0) and the parent treats the scenario as vacuous.
fn run_serve_drain(dir: &std::path::Path, seed: u64, snapshot_every: usize, kill_after: u64) -> ! {
    let traces = tenant_traces(seed, 3);
    let total: usize = traces.iter().map(|(_, t)| t.to_batches().len()).sum();
    let engine = ServeEngine::new(ServeConfig {
        workers: 2,
        queue_capacity: total.max(1),
        policy: AdmissionPolicy::Block,
        root: Some(dir.to_path_buf()),
        engine: DynFdConfig {
            snapshot_every,
            ..DynFdConfig::default()
        },
        start_paused: true,
        drain_kill_after: Some(kill_after),
    });
    for (name, trace) in &traces {
        if let Err(e) = engine.open_tenant(name, trace.schema.clone(), &trace.initial_rows) {
            eprintln!("crash_child: open {name}: {e}");
            std::process::exit(1);
        }
    }
    // Round-robin interleave, same order as check_concurrent_serve, so
    // the drain window holds a mixed multi-tenant backlog.
    let mut streams: Vec<(&str, std::vec::IntoIter<dynfd_relation::Batch>)> = traces
        .iter()
        .map(|(name, trace)| (name.as_str(), trace.to_batches().into_iter()))
        .collect();
    let mut request_id = 0u64;
    loop {
        let mut any = false;
        for (name, stream) in &mut streams {
            let Some(batch) = stream.next() else { continue };
            any = true;
            request_id += 1;
            if let Err(e) = engine.submit(name, request_id, batch, |_| {}) {
                eprintln!("crash_child: submit to {name}: {e}");
                std::process::exit(1);
            }
        }
        if !any {
            break;
        }
    }
    // Everything is queued, nothing has run. Shutdown resumes delivery
    // with the kill budget armed: the abort lands mid-drain, between a
    // completed (durable) job and the still-queued remainder.
    let report = engine.shutdown();
    let _ = report;
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 4 && args.len() != 6 {
        usage();
    }
    let dir = PathBuf::from(&args[0]);
    let seed: u64 = args[1].parse().unwrap_or_else(|_| usage());
    let case: u64 = args[2].parse().unwrap_or_else(|_| usage());
    let snapshot_every: usize = args[3].parse().unwrap_or_else(|_| usage());
    let plan = if args.len() == 6 {
        let value: u64 = args[5].parse().unwrap_or_else(|_| usage());
        match args[4].as_str() {
            "serve-drain" => run_serve_drain(&dir, seed, snapshot_every, value),
            "wal-byte" => CrashPlan {
                wal_kill_at_byte: Some(value),
                ..CrashPlan::default()
            },
            "frames" => CrashPlan {
                kill_after_frames: Some(value),
                ..CrashPlan::default()
            },
            "snapshot-byte" => CrashPlan {
                snapshot_kill_at_byte: Some(value),
                ..CrashPlan::default()
            },
            _ => usage(),
        }
    } else {
        CrashPlan::default()
    };

    let trace = Trace::for_case(seed, case);
    let config = DynFdConfig {
        snapshot_every,
        ..DynFdConfig::default()
    };
    let mut engine = match FdEngine::create(&dir, trace.to_relation(), config) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("crash_child: engine creation failed: {e}");
            std::process::exit(1);
        }
    };
    engine.set_crash_plan(plan);
    for batch in trace.to_batches() {
        // A planned crash aborts inside this call; a real rejection in a
        // generated trace would be a bug worth failing loudly on.
        if let Err(e) = engine.apply_batch(&batch) {
            eprintln!("crash_child: batch rejected: {e}");
            std::process::exit(1);
        }
    }
    // Plan never fired (or no plan): clean completion.
    std::process::exit(0);
}
