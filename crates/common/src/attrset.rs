//! Fixed-width attribute bitsets.
//!
//! FD discovery reasons about subsets of a relation's attributes
//! constantly: every lattice node is an attribute set, every
//! generalization/specialization check is a subset test, and every
//! record-pair comparison produces an *agree set*. A small, `Copy`,
//! allocation-free bitset keeps all of these operations at a handful of
//! word instructions.
//!
//! The widest dataset in the paper's evaluation (`actor`) has 83 columns;
//! we size the set at 256 bits, which comfortably covers every dataset
//! the original Metanome-based tooling handles.

use std::fmt;

/// Number of 64-bit words backing an [`AttrSet`].
const WORDS: usize = 4;

/// Maximum number of attributes (columns) an [`AttrSet`] can address.
pub const MAX_ATTRS: usize = WORDS * 64;

/// A set of attribute indices, represented as a 256-bit bitset.
///
/// `AttrSet` is `Copy` and totally ordered (lexicographically by words,
/// lowest attribute index in the least significant bit), so it can be
/// used directly as a map key or sorted deterministically.
///
/// # Examples
///
/// ```
/// use dynfd_common::AttrSet;
///
/// let zip_city = AttrSet::from_iter([2usize, 3]);
/// assert!(zip_city.contains(2));
/// assert_eq!(zip_city.len(), 2);
/// assert!(AttrSet::single(2).is_subset_of(&zip_city));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet {
    words: [u64; WORDS],
}

impl AttrSet {
    /// The empty attribute set.
    #[inline]
    pub const fn empty() -> Self {
        AttrSet { words: [0; WORDS] }
    }

    /// The set `{0, 1, ..., n-1}`, i.e. all attributes of an `n`-ary
    /// relation.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_ATTRS`.
    pub fn full(n: usize) -> Self {
        assert!(
            n <= MAX_ATTRS,
            "relation arity {n} exceeds MAX_ATTRS ({MAX_ATTRS})"
        );
        let mut s = AttrSet::empty();
        for w in 0..WORDS {
            let lo = w * 64;
            if n >= lo + 64 {
                s.words[w] = u64::MAX;
            } else if n > lo {
                s.words[w] = (1u64 << (n - lo)) - 1;
            }
        }
        s
    }

    /// The singleton set `{attr}`.
    ///
    /// # Panics
    ///
    /// Panics if `attr >= MAX_ATTRS`.
    #[inline]
    pub fn single(attr: usize) -> Self {
        let mut s = AttrSet::empty();
        s.insert(attr);
        s
    }

    /// Whether the set contains `attr`.
    #[inline]
    pub fn contains(&self, attr: usize) -> bool {
        debug_assert!(attr < MAX_ATTRS);
        (self.words[attr / 64] >> (attr % 64)) & 1 == 1
    }

    /// Inserts `attr` into the set (in place).
    ///
    /// # Panics
    ///
    /// Panics if `attr >= MAX_ATTRS`.
    #[inline]
    pub fn insert(&mut self, attr: usize) {
        assert!(attr < MAX_ATTRS, "attribute index {attr} exceeds MAX_ATTRS");
        self.words[attr / 64] |= 1 << (attr % 64);
    }

    /// Removes `attr` from the set (in place). Removing an absent
    /// attribute is a no-op.
    #[inline]
    pub fn remove(&mut self, attr: usize) {
        debug_assert!(attr < MAX_ATTRS);
        self.words[attr / 64] &= !(1 << (attr % 64));
    }

    /// Returns a copy of the set with `attr` added.
    #[inline]
    pub fn with(&self, attr: usize) -> Self {
        let mut s = *self;
        s.insert(attr);
        s
    }

    /// Returns a copy of the set with `attr` removed.
    #[inline]
    pub fn without(&self, attr: usize) -> Self {
        let mut s = *self;
        s.remove(attr);
        s
    }

    /// Set union.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        let mut s = *self;
        for w in 0..WORDS {
            s.words[w] |= other.words[w];
        }
        s
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(&self, other: &Self) -> Self {
        let mut s = *self;
        for w in 0..WORDS {
            s.words[w] &= other.words[w];
        }
        s
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn difference(&self, other: &Self) -> Self {
        let mut s = *self;
        for w in 0..WORDS {
            s.words[w] &= !other.words[w];
        }
        s
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        (0..WORDS).all(|w| self.words[w] & !other.words[w] == 0)
    }

    /// Whether `self ⊂ other` (proper subset).
    #[inline]
    pub fn is_proper_subset_of(&self, other: &Self) -> bool {
        self != other && self.is_subset_of(other)
    }

    /// Whether `self ⊇ other`.
    #[inline]
    pub fn is_superset_of(&self, other: &Self) -> bool {
        other.is_subset_of(self)
    }

    /// Whether the two sets share no attribute.
    #[inline]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        (0..WORDS).all(|w| self.words[w] & other.words[w] == 0)
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of attributes in the set (population count).
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Smallest attribute index in the set, or `None` if empty.
    #[inline]
    pub fn first(&self) -> Option<usize> {
        for (w, &word) in self.words.iter().enumerate() {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Largest attribute index in the set, or `None` if empty.
    #[inline]
    pub fn last(&self) -> Option<usize> {
        for w in (0..WORDS).rev() {
            if self.words[w] != 0 {
                return Some(w * 64 + 63 - self.words[w].leading_zeros() as usize);
            }
        }
        None
    }

    /// Iterates attribute indices in ascending order.
    #[inline]
    pub fn iter(&self) -> AttrSetIter {
        AttrSetIter {
            set: *self,
            word: 0,
        }
    }

    /// Collects the attribute indices into a `Vec`, ascending.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl FromIterator<usize> for AttrSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = AttrSet::empty();
        for a in iter {
            s.insert(a);
        }
        s
    }
}

impl IntoIterator for AttrSet {
    type Item = usize;
    type IntoIter = AttrSetIter;

    fn into_iter(self) -> AttrSetIter {
        self.iter()
    }
}

impl IntoIterator for &AttrSet {
    type Item = usize;
    type IntoIter = AttrSetIter;

    fn into_iter(self) -> AttrSetIter {
        self.iter()
    }
}

/// Ascending iterator over the attribute indices of an [`AttrSet`].
#[derive(Clone, Debug)]
pub struct AttrSetIter {
    set: AttrSet,
    word: usize,
}

impl Iterator for AttrSetIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.word < WORDS {
            let w = self.set.words[self.word];
            if w != 0 {
                let bit = w.trailing_zeros() as usize;
                self.set.words[self.word] &= w - 1; // clear lowest set bit
                return Some(self.word * 64 + bit);
            }
            self.word += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.set.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrSetIter {}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = AttrSet::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.first(), None);
        assert_eq!(s.last(), None);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn single_and_contains() {
        let s = AttrSet::single(7);
        assert!(s.contains(7));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 1);
        assert_eq!(s.first(), Some(7));
        assert_eq!(s.last(), Some(7));
    }

    #[test]
    fn full_covers_word_boundaries() {
        for n in [0, 1, 63, 64, 65, 127, 128, 200, 256] {
            let s = AttrSet::full(n);
            assert_eq!(s.len(), n, "full({n})");
            for a in 0..n {
                assert!(s.contains(a), "full({n}) missing {a}");
            }
            if n < MAX_ATTRS {
                assert!(!s.contains(n));
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_ATTRS")]
    fn full_beyond_capacity_panics() {
        let _ = AttrSet::full(MAX_ATTRS + 1);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_ATTRS")]
    fn insert_beyond_capacity_panics() {
        let mut s = AttrSet::empty();
        s.insert(MAX_ATTRS);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = AttrSet::empty();
        s.insert(3);
        s.insert(70);
        s.insert(255);
        assert_eq!(s.to_vec(), vec![3, 70, 255]);
        s.remove(70);
        assert_eq!(s.to_vec(), vec![3, 255]);
        s.remove(70); // no-op
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn with_without_do_not_mutate() {
        let s = AttrSet::from_iter([1usize, 2]);
        let t = s.with(5);
        let u = s.without(2);
        assert_eq!(s.to_vec(), vec![1, 2]);
        assert_eq!(t.to_vec(), vec![1, 2, 5]);
        assert_eq!(u.to_vec(), vec![1]);
    }

    #[test]
    fn algebra() {
        let a = AttrSet::from_iter([0usize, 1, 64, 130]);
        let b = AttrSet::from_iter([1usize, 64, 200]);
        assert_eq!(a.union(&b).to_vec(), vec![0, 1, 64, 130, 200]);
        assert_eq!(a.intersect(&b).to_vec(), vec![1, 64]);
        assert_eq!(a.difference(&b).to_vec(), vec![0, 130]);
    }

    #[test]
    fn subset_relations() {
        let a = AttrSet::from_iter([1usize, 2]);
        let b = AttrSet::from_iter([1usize, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(a.is_proper_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(b.is_superset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(!a.is_proper_subset_of(&a));
        assert!(AttrSet::empty().is_subset_of(&a));
    }

    #[test]
    fn disjointness() {
        let a = AttrSet::from_iter([0usize, 100]);
        let b = AttrSet::from_iter([1usize, 101]);
        assert!(a.is_disjoint(&b));
        assert!(!a.is_disjoint(&a.with(1)));
        assert!(AttrSet::empty().is_disjoint(&a));
    }

    #[test]
    fn iteration_order_is_ascending_across_words() {
        let v = vec![0usize, 5, 63, 64, 65, 127, 128, 191, 192, 255];
        let s: AttrSet = v.iter().copied().collect();
        assert_eq!(s.to_vec(), v);
        assert_eq!(s.iter().len(), v.len());
    }

    #[test]
    fn ordering_is_total_and_consistent_with_eq() {
        let a = AttrSet::single(0);
        let b = AttrSet::single(1);
        assert!(a < b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn debug_format() {
        let s = AttrSet::from_iter([2usize, 4]);
        assert_eq!(format!("{s:?}"), "{2,4}");
        assert_eq!(format!("{}", AttrSet::empty()), "{}");
    }
}
