//! Reference row-oriented record store and validator.
//!
//! This module preserves the pre-columnar layout of the engine — records
//! as `HashMap<RecordId, Box<[ValueId]>>`, PLIs as
//! `BTreeMap<ValueId, Vec<RecordId>>`, validation through `HashMap`
//! group tables — as an executable specification. It exists for two
//! consumers:
//!
//! * `tests/layout_equivalence.rs` replays change traces through this
//!   store and the columnar [`DynamicRelation`](crate::DynamicRelation)
//!   side by side, asserting bit-identical verdicts *and witnesses*;
//! * the scale benches measure the columnar hot path against this
//!   baseline in the same process (`BENCH_scale.json`'s
//!   `layout/{columnar,rowstore}` rows).
//!
//! It is deliberately a faithful copy of the old semantics, not a
//! maintained engine: no undo log, no cache integration, no parallel
//! fan-out. Do not grow features here — fidelity is the point.

use crate::batch::{Batch, ChangeOp};
use crate::dictionary::{Dictionary, ValueId};
use crate::validate::{RhsOutcome, ValidationOptions, ValidationResult, ValidationStats};
use dynfd_common::{AttrId, AttrSet, DynError, RecordId, Result, Schema};
use std::collections::{BTreeMap, HashMap};

/// The row-oriented reference relation: one boxed code slice per record,
/// rid-keyed PLI clusters, value-ordered `BTreeMap` cluster maps.
#[derive(Clone, Debug)]
pub struct RowStoreRelation {
    schema: Schema,
    dictionaries: Vec<Dictionary>,
    plis: Vec<BTreeMap<ValueId, Vec<RecordId>>>,
    records: HashMap<RecordId, Box<[ValueId]>>,
    next_id: RecordId,
}

impl RowStoreRelation {
    /// Creates an empty reference relation for `schema`.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        RowStoreRelation {
            schema,
            dictionaries: (0..arity).map(|_| Dictionary::new()).collect(),
            plis: (0..arity).map(|_| BTreeMap::new()).collect(),
            records: HashMap::new(),
            next_id: RecordId(0),
        }
    }

    /// Creates and bulk-loads a reference relation.
    pub fn from_rows<S: AsRef<str>>(schema: Schema, rows: &[Vec<S>]) -> Result<Self> {
        let mut rel = RowStoreRelation::new(schema);
        for row in rows {
            rel.insert_row(row)?;
        }
        Ok(rel)
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the relation holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The next surrogate id to be assigned.
    pub fn next_id(&self) -> RecordId {
        self.next_id
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// The compressed record for `rid`, if live.
    pub fn compressed(&self, rid: RecordId) -> Option<&[ValueId]> {
        self.records.get(&rid).map(|r| &**r)
    }

    /// Inserts one row, returning the assigned id (old-layout insert
    /// path: encode per column, push to rid-sorted clusters, box the
    /// code row).
    pub fn insert_row<S: AsRef<str>>(&mut self, row: &[S]) -> Result<RecordId> {
        if row.len() != self.arity() {
            return Err(DynError::ArityMismatch {
                expected: self.arity(),
                actual: row.len(),
            });
        }
        let rid = self.next_id;
        self.next_id = self.next_id.next();
        let codes: Box<[ValueId]> = row
            .iter()
            .enumerate()
            .map(|(attr, value)| {
                let code = self.dictionaries[attr].encode(value.as_ref());
                self.plis[attr].entry(code).or_default().push(rid);
                code
            })
            .collect();
        self.records.insert(rid, codes);
        Ok(rid)
    }

    /// Deletes a record from the map and every PLI cluster.
    pub fn delete_record(&mut self, rid: RecordId) -> Result<()> {
        let codes = self
            .records
            .remove(&rid)
            .ok_or(DynError::UnknownRecord(rid))?;
        for (attr, &code) in codes.iter().enumerate() {
            let cluster = self.plis[attr]
                .get_mut(&code)
                .expect("record's value has a cluster");
            if let Ok(pos) = cluster.binary_search(&rid) {
                cluster.remove(pos);
            }
            if cluster.is_empty() {
                self.plis[attr].remove(&code);
            }
        }
        Ok(())
    }

    /// Applies a batch with the engine's phase ordering (pre-existing
    /// deletes, then inserts, then deletes of same-batch inserts) and
    /// returns `(inserted, deleted, first_new_id)`.
    pub fn apply_batch(
        &mut self,
        batch: &Batch,
    ) -> Result<(Vec<RecordId>, Vec<RecordId>, Option<RecordId>)> {
        let mut deferred: Vec<RecordId> = Vec::new();
        let mut inserted = Vec::new();
        let mut deleted = Vec::new();
        let mut first_new = None;
        for op in batch.ops() {
            let rid = match op {
                ChangeOp::Delete(rid) | ChangeOp::Update(rid, _) => *rid,
                ChangeOp::Insert(_) => continue,
            };
            if self.records.contains_key(&rid) {
                self.delete_record(rid)?;
                deleted.push(rid);
            } else {
                deferred.push(rid);
            }
        }
        for op in batch.ops() {
            let row = match op {
                ChangeOp::Insert(row) | ChangeOp::Update(_, row) => row,
                ChangeOp::Delete(_) => continue,
            };
            let rid = self.insert_row(row)?;
            first_new.get_or_insert(rid);
            inserted.push(rid);
        }
        for rid in deferred {
            self.delete_record(rid)?;
            inserted.retain(|&r| r != rid);
        }
        Ok((inserted, deleted, first_new))
    }
}

/// Validates `lhs -> r` for every `r ∈ rhs_set` with the old
/// row-oriented algorithm: pivot on the PLI with the smallest maximal
/// cluster, group each cluster through `HashMap` tables keyed by the
/// remaining-LHS codes, compare members against their group
/// representative record (member-major), terminate each RHS at its first
/// violation.
///
/// Outcome order, verdicts, and witness pairs are the layout-equivalence
/// contract: the columnar validator must reproduce them bit for bit.
pub fn validate_rowstore(
    rel: &RowStoreRelation,
    lhs: AttrSet,
    rhs_set: AttrSet,
    opts: &ValidationOptions,
) -> ValidationResult {
    assert!(!rhs_set.is_empty(), "validate called with no RHS");
    assert!(lhs.is_disjoint(&rhs_set), "trivial candidate: rhs ∈ lhs");
    let mut stats = ValidationStats::default();
    let mut outcomes: Vec<(AttrId, RhsOutcome)> =
        rhs_set.iter().map(|r| (r, RhsOutcome::Valid)).collect();
    let mut active = rhs_set;

    if lhs.is_empty() {
        for (r, outcome) in outcomes.iter_mut() {
            let pli = &rel.plis[*r];
            if pli.len() > 1 {
                let mut it = pli.values();
                let c1 = it.next().expect("first cluster");
                let c2 = it.next().expect("second cluster");
                *outcome = RhsOutcome::Violated(c1[0], c2[0]);
            }
        }
        return ValidationResult {
            lhs,
            outcomes,
            stats,
        };
    }

    let pivot = lhs
        .iter()
        .min_by_key(|&a| (rel.plis[a].values().map(Vec::len).max().unwrap_or(0), a))
        .expect("non-empty lhs");
    let rest: Vec<AttrId> = lhs.iter().filter(|&a| a != pivot).collect();
    let rhs_attrs: Vec<AttrId> = active.to_vec();
    let slot_of_attr: HashMap<AttrId, usize> = outcomes
        .iter()
        .enumerate()
        .map(|(i, &(r, _))| (r, i))
        .collect();

    let mut groups: HashMap<Vec<ValueId>, RecordId> = HashMap::new();
    'clusters: for cluster in rel.plis[pivot].values() {
        if cluster.len() < 2 {
            stats.singletons_skipped += 1;
            continue;
        }
        if let Some(min_new) = opts.min_new_id {
            if *cluster.last().expect("non-empty cluster") < min_new {
                stats.clusters_pruned += 1;
                continue;
            }
        }
        stats.clusters_visited += 1;
        groups.clear();
        for &rid in cluster {
            let rec = rel.compressed(rid).expect("PLI references live record");
            let key: Vec<ValueId> = rest.iter().map(|&a| rec[a]).collect();
            if let Some(&rep) = groups.get(&key) {
                let rep_rec = rel.compressed(rep).expect("live representative");
                stats.comparisons += 1;
                for &r in &rhs_attrs {
                    if active.contains(r) && rep_rec[r] != rec[r] {
                        active.remove(r);
                        outcomes[slot_of_attr[&r]].1 = RhsOutcome::Violated(rep, rid);
                        if active.is_empty() {
                            break 'clusters;
                        }
                    }
                }
            } else {
                groups.insert(key, rid);
            }
        }
    }

    ValidationResult {
        lhs,
        outcomes,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::DynamicRelation;
    use crate::validate::{validate, validate_fd};
    use dynfd_common::Fd;

    fn rows() -> Vec<Vec<String>> {
        vec![
            vec!["Max", "Jones", "14482", "Potsdam"],
            vec!["Max", "Miller", "14482", "Potsdam"],
            vec!["Max", "Jones", "10115", "Berlin"],
            vec!["Anna", "Scott", "13591", "Berlin"],
        ]
        .into_iter()
        .map(|r| r.into_iter().map(String::from).collect())
        .collect()
    }

    #[test]
    fn rowstore_matches_columnar_verdicts_and_witnesses() {
        let schema = Schema::anonymous("t", 4);
        let reference = RowStoreRelation::from_rows(schema.clone(), &rows()).unwrap();
        let columnar = DynamicRelation::from_rows(schema, &rows()).unwrap();
        let full = ValidationOptions::full();
        for a in 0..4usize {
            for b in 0..4usize {
                if a == b {
                    continue;
                }
                for extra in 0..4usize {
                    let lhs: AttrSet = if extra == a || extra == b {
                        AttrSet::single(a)
                    } else {
                        [a, extra].into_iter().collect()
                    };
                    if lhs.contains(b) {
                        continue;
                    }
                    let old = validate_rowstore(&reference, lhs, AttrSet::single(b), &full);
                    let new = validate(&columnar, lhs, AttrSet::single(b), &full);
                    assert_eq!(
                        old.outcomes, new.outcomes,
                        "layouts diverged on {lhs:?} -> {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn rowstore_batch_application_matches() {
        let schema = Schema::anonymous("t", 4);
        let mut reference = RowStoreRelation::from_rows(schema.clone(), &rows()).unwrap();
        let mut columnar = DynamicRelation::from_rows(schema, &rows()).unwrap();
        let mut batch = Batch::new();
        batch
            .delete(RecordId(2))
            .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
            .update(RecordId(0), vec!["Max", "Jones", "14482", "Golm"]);
        let (ins, del, first) = reference.apply_batch(&batch).unwrap();
        let applied = columnar.apply_batch(&batch).unwrap();
        assert_eq!(ins, applied.inserted);
        assert_eq!(del, applied.deleted);
        assert_eq!(first, applied.first_new_id);
        assert_eq!(reference.len(), columnar.len());
        for (&rid, codes) in &reference.records {
            assert_eq!(
                columnar.compressed(rid).map(|r| r.to_vec()),
                Some(codes.to_vec()),
                "record {rid} diverged"
            );
        }
        // Post-batch validation still agrees, including delta pruning.
        let delta = ValidationOptions::delta(first.unwrap());
        for (lhs, rhs) in [(AttrSet::single(0), 3), (AttrSet::single(2), 0)] {
            let old = validate_rowstore(&reference, lhs, AttrSet::single(rhs), &delta);
            let new = validate(&columnar, lhs, AttrSet::single(rhs), &delta);
            assert_eq!(old.outcomes, new.outcomes);
        }
        let _ = validate_fd(
            &columnar,
            &Fd::new(AttrSet::single(0), 3),
            &ValidationOptions::full(),
        );
    }
}
