//! Record surrogate keys.

use std::fmt;

/// Surrogate key identifying a record in a dynamic relation.
///
/// Row positions are not stable when a table grows and shrinks, so DynFD
/// assigns each record a *monotonically increasing* id that is never
/// reused (paper, Section 3.1). Monotonicity is load-bearing: the
/// *cluster pruning* optimization (Section 4.2) decides whether a PLI
/// cluster can contain a freshly inserted record by comparing the
/// cluster's largest id against the first id assigned in the current
/// batch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u64);

impl RecordId {
    /// The raw id value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The id following this one.
    #[inline]
    pub fn next(self) -> RecordId {
        RecordId(self.0 + 1)
    }
}

impl fmt::Debug for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u64> for RecordId {
    fn from(v: u64) -> Self {
        RecordId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_raw_value() {
        assert!(RecordId(1) < RecordId(2));
        assert_eq!(RecordId(3).next(), RecordId(4));
        assert_eq!(RecordId::from(7).raw(), 7);
    }

    #[test]
    fn display() {
        assert_eq!(RecordId(42).to_string(), "r42");
        assert_eq!(format!("{:?}", RecordId(0)), "r0");
    }
}
