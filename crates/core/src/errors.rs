//! The engine-level error taxonomy.
//!
//! [`DynFdError`] is what [`DynFd::apply_batch`](crate::DynFd::apply_batch)
//! returns: the batch-validation failures of the relation substrate
//! (mirrored flat from [`DynError`] so callers can match without
//! unwrapping a nested enum) plus the two engine-level failures that can
//! only arise *inside* the maintenance pipeline — a panic caught at the
//! transactional boundary and an internal invariant breach. Every error
//! is returned only after the engine has rolled itself back to the
//! pre-batch state, so callers may retry or skip the offending batch.

use dynfd_common::{DynError, RecordId};
use std::fmt;

/// Convenience alias for results with [`DynFdError`].
pub type DynFdResult<T> = std::result::Result<T, DynFdError>;

/// Errors surfaced by [`DynFd::apply_batch`](crate::DynFd::apply_batch)
/// and the CLI built on top of it.
///
/// The first seven variants mirror [`DynError`] (batch validation and
/// input handling); the last two are engine-internal failures. All of
/// them leave the engine in its pre-batch state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynFdError {
    /// A change operation referenced a record id that is not (or no
    /// longer) present in the relation.
    UnknownRecord(RecordId),
    /// A batch referenced the same record id twice in a way that cannot
    /// be satisfied (e.g. two deletes of one record).
    DuplicateRecord(RecordId),
    /// A row's value count does not match the schema arity.
    ArityMismatch {
        /// Number of columns the schema defines.
        expected: usize,
        /// Number of values the offending row carried.
        actual: usize,
    },
    /// Encoding a batch's values would push a column dictionary past its
    /// configured capacity.
    DictionaryOverflow {
        /// The column whose dictionary would overflow.
        attr: usize,
        /// The configured distinct-value capacity.
        capacity: usize,
    },
    /// A row carried a null (empty-string) value in a relation whose
    /// null policy rejects them.
    NullValue {
        /// The column holding the offending null.
        attr: usize,
    },
    /// Input data could not be parsed (CSV reader, change-log reader).
    Parse(String),
    /// An I/O error, stringified (keeps the error type `Clone + Eq`).
    Io(String),
    /// A maintenance phase panicked; the panic was caught at the
    /// transactional boundary and the batch was rolled back.
    PhasePanicked {
        /// The pipeline phase that panicked ("delete-phase",
        /// "insert-phase", ...).
        phase: &'static str,
        /// The panic payload, stringified when it was a string payload.
        detail: String,
    },
    /// An internal invariant did not hold; the batch was rolled back.
    InvariantBreach {
        /// The pipeline phase that detected the breach.
        phase: &'static str,
        /// What was expected and what was found.
        detail: String,
    },
    /// The write-ahead batch log held a torn or corrupt frame — a bad
    /// length, a CRC mismatch, a short read, or a sequence-number gap.
    /// Recovery truncates the log at the last valid frame and reports
    /// this instead of panicking; the state before the bad frame is
    /// intact.
    WalCorrupt {
        /// The batch sequence number the bad frame was expected to
        /// carry (one past the last valid frame).
        seq: u64,
        /// Byte offset of the bad frame within the log file.
        offset: u64,
    },
    /// A snapshot file failed validation (bad magic, length mismatch,
    /// CRC mismatch, or undecodable payload). Recovery falls back to an
    /// older snapshot when one exists.
    SnapshotCorrupt {
        /// What failed to validate.
        detail: String,
    },
}

impl DynFdError {
    /// Builds an [`DynFdError::InvariantBreach`].
    pub(crate) fn invariant(phase: &'static str, detail: impl Into<String>) -> Self {
        DynFdError::InvariantBreach {
            phase,
            detail: detail.into(),
        }
    }

    /// A stable process exit code per variant, for scripting against the
    /// CLI: `3` I/O, `4` parse, `5` unknown record, `6` duplicate record,
    /// `7` arity mismatch, `8` dictionary overflow, `9` null value, `10`
    /// internal failure (panic or invariant breach), `11` corrupt
    /// write-ahead log, `12` corrupt snapshot. Code `2` is reserved for
    /// CLI usage errors and `1` for generic failures.
    pub fn exit_code(&self) -> u8 {
        match self {
            DynFdError::Io(_) => 3,
            DynFdError::Parse(_) => 4,
            DynFdError::UnknownRecord(_) => 5,
            DynFdError::DuplicateRecord(_) => 6,
            DynFdError::ArityMismatch { .. } => 7,
            DynFdError::DictionaryOverflow { .. } => 8,
            DynFdError::NullValue { .. } => 9,
            DynFdError::PhasePanicked { .. } | DynFdError::InvariantBreach { .. } => 10,
            DynFdError::WalCorrupt { .. } => 11,
            DynFdError::SnapshotCorrupt { .. } => 12,
        }
    }

    /// Whether the error is a batch-validation rejection (the batch was
    /// never applied) as opposed to an internal failure that was rolled
    /// back mid-application or a durability-layer fault found during
    /// recovery.
    pub fn is_rejection(&self) -> bool {
        !matches!(
            self,
            DynFdError::PhasePanicked { .. }
                | DynFdError::InvariantBreach { .. }
                | DynFdError::WalCorrupt { .. }
                | DynFdError::SnapshotCorrupt { .. }
        )
    }
}

impl fmt::Display for DynFdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynFdError::UnknownRecord(id) => {
                write!(f, "record {id} does not exist in the relation")
            }
            DynFdError::DuplicateRecord(id) => {
                write!(f, "record {id} is referenced twice in one batch")
            }
            DynFdError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "row has {actual} values but the schema has {expected} columns"
                )
            }
            DynFdError::DictionaryOverflow { attr, capacity } => {
                write!(
                    f,
                    "column {attr} dictionary would exceed its capacity of {capacity} distinct values"
                )
            }
            DynFdError::NullValue { attr } => {
                write!(
                    f,
                    "column {attr} holds a null value but the null policy rejects nulls"
                )
            }
            DynFdError::Parse(msg) => write!(f, "parse error: {msg}"),
            DynFdError::Io(msg) => write!(f, "i/o error: {msg}"),
            DynFdError::PhasePanicked { phase, detail } => {
                write!(f, "{phase} panicked (batch rolled back): {detail}")
            }
            DynFdError::InvariantBreach { phase, detail } => {
                write!(f, "{phase} invariant breach (batch rolled back): {detail}")
            }
            DynFdError::WalCorrupt { seq, offset } => {
                write!(
                    f,
                    "write-ahead log corrupt at byte {offset} (expected frame seq {seq}); \
                     truncated to the last valid frame"
                )
            }
            DynFdError::SnapshotCorrupt { detail } => {
                write!(f, "snapshot corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for DynFdError {}

impl From<DynError> for DynFdError {
    fn from(e: DynError) -> Self {
        match e {
            DynError::UnknownRecord(id) => DynFdError::UnknownRecord(id),
            DynError::DuplicateRecord(id) => DynFdError::DuplicateRecord(id),
            DynError::ArityMismatch { expected, actual } => {
                DynFdError::ArityMismatch { expected, actual }
            }
            DynError::DictionaryOverflow { attr, capacity } => {
                DynFdError::DictionaryOverflow { attr, capacity }
            }
            DynError::NullValue { attr } => DynFdError::NullValue { attr },
            DynError::Parse(msg) => DynFdError::Parse(msg),
            DynError::Io(msg) => DynFdError::Io(msg),
        }
    }
}

/// Renders a `catch_unwind` payload: string payloads (the overwhelmingly
/// common case — `panic!("...")`) are passed through, everything else is
/// summarized by type.
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_family() {
        let errors = [
            DynFdError::Io("x".into()),
            DynFdError::Parse("x".into()),
            DynFdError::UnknownRecord(RecordId(1)),
            DynFdError::DuplicateRecord(RecordId(1)),
            DynFdError::ArityMismatch {
                expected: 2,
                actual: 3,
            },
            DynFdError::DictionaryOverflow {
                attr: 0,
                capacity: 4,
            },
            DynFdError::NullValue { attr: 0 },
            DynFdError::PhasePanicked {
                phase: "insert-phase",
                detail: "x".into(),
            },
            DynFdError::WalCorrupt { seq: 3, offset: 96 },
            DynFdError::SnapshotCorrupt { detail: "x".into() },
        ];
        let codes: std::collections::BTreeSet<u8> =
            errors.iter().map(DynFdError::exit_code).collect();
        assert_eq!(codes.len(), errors.len(), "codes collide: {errors:?}");
        // Codes 0 (success), 1 (generic), and 2 (usage) stay reserved.
        assert!(codes.iter().all(|&c| c >= 3));
    }

    #[test]
    fn relation_errors_map_flat() {
        let e: DynFdError = DynError::DuplicateRecord(RecordId(7)).into();
        assert_eq!(e, DynFdError::DuplicateRecord(RecordId(7)));
        assert!(e.is_rejection());
        let internal = DynFdError::invariant("delete-phase", "oops");
        assert!(!internal.is_rejection());
        assert_eq!(internal.exit_code(), 10);
    }

    #[test]
    fn durability_errors_are_not_rejections() {
        let wal = DynFdError::WalCorrupt {
            seq: 7,
            offset: 128,
        };
        assert!(!wal.is_rejection());
        assert_eq!(wal.exit_code(), 11);
        assert!(wal.to_string().contains("byte 128"));
        assert!(wal.to_string().contains("seq 7"));
        let snap = DynFdError::SnapshotCorrupt {
            detail: "crc mismatch".into(),
        };
        assert!(!snap.is_rejection());
        assert_eq!(snap.exit_code(), 12);
    }

    #[test]
    fn panic_detail_extracts_strings() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_detail(s.as_ref()), "boom");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned boom"));
        assert_eq!(panic_detail(s.as_ref()), "owned boom");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_detail(s.as_ref()), "non-string panic payload");
    }
}
